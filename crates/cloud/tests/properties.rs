//! Property-based tests of the cloud models.

use mashup_cloud::{
    run_task_on_faas, ClusterConfig, ClusterTaskSpec, CostMeter, FaasConfig, FaasPlatform,
    FaasTaskSpec, InstanceType, ObjectStore, StorageConfig, VmCluster,
};
use mashup_sim::shared;
use mashup_sim::{SeedSource, Simulation};
use proptest::prelude::*;

fn run_cluster_task(nodes: usize, spec: ClusterTaskSpec) -> f64 {
    let mut sim = Simulation::new();
    let cluster = VmCluster::new(
        ClusterConfig::new(InstanceType::r5_large(), nodes),
        CostMeter::new(),
        &SeedSource::new(1),
    );
    let out = shared(None);
    let o2 = out.clone();
    let c2 = cluster.clone();
    sim.schedule_now(move |sim| {
        c2.run_task(sim, None, spec, move |_, stats| {
            *o2.borrow_mut() = Some(stats.makespan().as_secs());
        });
    });
    sim.run();
    let v = out.borrow_mut().take().expect("completed");
    v
}

fn run_faas_task(spec: FaasTaskSpec) -> mashup_cloud::FaasRunStats {
    let mut sim = Simulation::new();
    let meter = CostMeter::new();
    let seeds = SeedSource::new(2);
    let mut cfg = FaasConfig::aws_like();
    cfg.cold_start_secs = (1.0, 1.0);
    let faas = FaasPlatform::new(cfg, meter.clone(), &seeds);
    let store = ObjectStore::new(StorageConfig::s3_like(), meter, &seeds);
    let out = shared(None);
    let o2 = out.clone();
    sim.schedule_now(move |sim| {
        run_task_on_faas(sim, &faas, &store, spec, &seeds, move |_, stats| {
            *o2.borrow_mut() = Some(stats);
        });
    });
    sim.run();
    let v = out.borrow_mut().take().expect("completed");
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More nodes never make a pure-compute task slower.
    #[test]
    fn cluster_makespan_is_monotone_in_nodes(
        comps in 1usize..128,
        compute in 1u32..60,
    ) {
        let small = run_cluster_task(2, ClusterTaskSpec::new("t", comps, compute as f64));
        let large = run_cluster_task(16, ClusterTaskSpec::new("t", comps, compute as f64));
        prop_assert!(large <= small + 1e-6, "{large} > {small}");
    }

    /// The cluster can never beat the work-conserving bound.
    #[test]
    fn cluster_respects_work_conservation(
        nodes in 1usize..32,
        comps in 1usize..128,
        compute in 1u32..60,
    ) {
        let compute = compute as f64;
        let makespan = run_cluster_task(nodes, ClusterTaskSpec::new("t", comps, compute));
        let bound = comps as f64 * compute / (nodes as f64 * 2.0); // 2 cores
        prop_assert!(makespan >= bound - 1e-6, "{makespan} < bound {bound}");
        // And memory-free timesharing is exactly work-conserving per node.
        let per_node = comps.div_ceil(nodes) as f64;
        let expect = compute * (per_node / 2.0).max(1.0);
        prop_assert!((makespan - expect).abs() < 1e-6, "{makespan} vs {expect}");
    }

    /// Thrash never decreases the makespan and never exceeds the cap.
    #[test]
    fn thrash_bounds(
        comps in 4usize..64,
        mem10 in 0u32..40, // memory in tenths of GiB
        coeff10 in 0u32..50,
    ) {
        let mem = mem10 as f64 / 10.0;
        let coeff = coeff10 as f64 / 10.0;
        let mut base = ClusterTaskSpec::new("t", comps, 10.0);
        base.memory_gb = 0.0;
        let mut thrashy = ClusterTaskSpec::new("t", comps, 10.0);
        thrashy.memory_gb = mem;
        thrashy.contention_coeff = coeff;
        let t0 = run_cluster_task(1, base);
        let t1 = run_cluster_task(1, thrashy);
        prop_assert!(t1 >= t0 - 1e-9);
        prop_assert!(t1 <= t0 * VmCluster::MAX_THRASH + 1e-6);
    }

    /// FaaS makespan and scaling time are monotone in component count, and
    /// compute work is preserved exactly.
    #[test]
    fn faas_scaling_monotone_and_work_preserving(
        comps in 1usize..256,
        compute in 1u32..30,
    ) {
        let compute = compute as f64;
        let stats = run_faas_task(FaasTaskSpec::new("t", comps, compute));
        prop_assert!((stats.compute_secs - comps as f64 * compute).abs() < 1e-6);
        let bigger = run_faas_task(FaasTaskSpec::new("t", comps + 64, compute));
        prop_assert!(bigger.scaling_secs() >= stats.scaling_secs() - 1e-6);
        prop_assert!(bigger.makespan() >= stats.makespan());
    }

    /// Checkpoint chains preserve total compute and never trip the
    /// platform's kill watchdog.
    #[test]
    fn checkpoint_chains_preserve_work(compute in 100u32..4000) {
        let compute = compute as f64;
        let mut spec = FaasTaskSpec::new("long", 1, compute);
        spec.checkpoint_bytes = 1.0e8;
        spec.checkpoint_margin_secs = 30.0;
        let stats = run_faas_task(spec);
        prop_assert!((stats.compute_secs - compute).abs() < 1e-6);
        // Each segment computes for at most (timeout - margin) seconds and
        // resume segments additionally spend ~2 s re-reading the checkpoint,
        // so the chain length brackets the ideal count.
        let usable = 900.0 - 30.0;
        let ideal = (compute / usable).ceil() as u64;
        let chains = stats.checkpoints + 1;
        prop_assert!(
            chains >= ideal.max(1) && chains <= ideal.max(1) + 1,
            "chains {chains} vs ideal {ideal}"
        );
    }

    /// Expense accounting is additive: running two tasks costs the sum of
    /// running each alone (FaaS side, no shared-cluster billing).
    #[test]
    fn faas_cost_is_additive(a in 1usize..32, b in 1usize..32) {
        let cost = |comps: usize| {
            let mut sim = Simulation::new();
            let meter = CostMeter::new();
            let seeds = SeedSource::new(3);
            let mut cfg = FaasConfig::aws_like();
            cfg.cold_start_secs = (1.0, 1.0);
            let faas = FaasPlatform::new(cfg, meter.clone(), &seeds);
            let store = ObjectStore::new(StorageConfig::s3_like(), meter.clone(), &seeds);
            let f2 = faas.clone();
            let s2 = store.clone();
            sim.schedule_now(move |sim| {
                run_task_on_faas(sim, &f2, &s2, FaasTaskSpec::new("t", comps, 5.0), &seeds, |_, _| {});
            });
            sim.run();
            meter.expense(0.0).faas_dollars
        };
        let together = cost(a + b);
        let separate = cost(a) + cost(b);
        // Warm reuse can only make the joint run cheaper or equal.
        prop_assert!(together <= separate + 1e-9, "{together} > {separate}");
    }
}
