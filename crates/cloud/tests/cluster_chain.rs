//! Integration test: chained cluster tasks exchanging data through the
//! master NIC (regression test for an event-loop livelock).

use mashup_cloud::{ClusterConfig, ClusterTaskSpec, CostMeter, InstanceType, VmCluster};
use mashup_sim::shared;
use mashup_sim::{SeedSource, Simulation};

#[test]
fn wide_task_feeding_merge_through_master_terminates() {
    let mut sim = Simulation::new().with_event_limit(5_000_000);
    let meter = CostMeter::new();
    let cluster = VmCluster::new(
        ClusterConfig::new(InstanceType::r5_large(), 8),
        meter,
        &SeedSource::new(42),
    );
    let done = shared(None);

    let mut wide = ClusterTaskSpec::new("wide", 64, 5.0);
    wide.output_bytes = 1.0e7;
    let mut merge = ClusterTaskSpec::new("merge", 1, 10.0);
    merge.input_bytes = 6.4e8;
    merge.output_bytes = 1.0e7;

    let c2 = cluster.clone();
    let d2 = done.clone();
    let c3 = cluster.clone();
    sim.schedule_now(move |sim| {
        c2.run_task(sim, None, wide, move |sim, _| {
            let d3 = d2.clone();
            c3.run_task(sim, None, merge, move |sim, stats| {
                *d3.borrow_mut() = Some((sim.now().as_secs(), stats));
            });
        });
    });
    sim.run();
    let (end, _) = done.borrow_mut().take().expect("chain completed");
    assert!(end > 0.0);
}
