//! Seeded chaos schedules: spot preemption and storage/network faults.
//!
//! A [`FaultPlan`] is a *fully deterministic* schedule of provider
//! misbehaviour, generated from a seed and replayed as ordinary simulation
//! events. Chaos runs are therefore bit-reproducible: the same plan against
//! the same workflow produces the same trace, which is what lets golden
//! chaos fixtures and the trace-invariant oracle treat adaptive runs like
//! any other execution.
//!
//! Faults come in two families:
//!
//! * **Spot preemption** — the provider reclaims VM nodes at scheduled
//!   instants ([`Fault::Preempt`]); the cluster bills reclaimed nodes only
//!   up to their reclaim time, against a piecewise spot price trace.
//! * **Storage/network windows** — transient GET error windows, request
//!   latency spikes, and data-plane link degradation
//!   ([`Fault::StorageError`], [`Fault::StorageLatency`],
//!   [`Fault::LinkDegrade`]), applied to the object store while active.
//!
//! Liveness is guaranteed structurally: neither [`FaultPlan::generate`] nor
//! the cluster's reclaim path ever takes a sub-cluster's last surviving
//! node, so every chaos run can complete (possibly slowly) rather than
//! wedging.

use crate::cluster::VmCluster;
use crate::storage::ObjectStore;
use mashup_sim::{SeedSource, SimTime, Simulation};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A storage/network fault as applied to the store during its window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoreFault {
    /// Each GET in the window fails with this probability and is retried
    /// from a replica (billed again, like the platform's native retry).
    Error {
        /// Per-operation failure probability.
        prob: f64,
    },
    /// Every request in the window pays extra per-request latency.
    Latency {
        /// Additional seconds per operation.
        extra_secs: f64,
    },
    /// Data-plane flows are capped to this fraction of their normal
    /// bandwidth while the window is active.
    Degrade {
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
}

impl StoreFault {
    /// Stable kind label used in `FaultInjected` trace records.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreFault::Error { .. } => "storage-error",
            StoreFault::Latency { .. } => "storage-latency",
            StoreFault::Degrade { .. } => "link-degrade",
        }
    }

    /// Kind-specific magnitude recorded in `FaultInjected`.
    pub fn magnitude(&self) -> f64 {
        match self {
            StoreFault::Error { prob } => *prob,
            StoreFault::Latency { extra_secs } => *extra_secs,
            StoreFault::Degrade { factor } => *factor,
        }
    }
}

// The vendored serde derive only covers unit-variant enums, so the two
// fault enums serialize by hand as `{"kind": ..., <fields>}` objects.
impl Serialize for StoreFault {
    fn to_value(&self) -> serde::Value {
        let (field, mag) = match *self {
            StoreFault::Error { prob } => ("prob", prob),
            StoreFault::Latency { extra_secs } => ("extra_secs", extra_secs),
            StoreFault::Degrade { factor } => ("factor", factor),
        };
        serde::Value::Object(vec![
            ("kind".to_owned(), self.kind().to_value()),
            (field.to_owned(), mag.to_value()),
        ])
    }
}

impl Deserialize for StoreFault {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let kind = v["kind"]
            .as_str()
            .ok_or_else(|| serde::Error::missing_field("kind"))?;
        let num = |key: &str| {
            v[key]
                .as_f64()
                .ok_or_else(|| serde::Error::missing_field(key))
        };
        match kind {
            "storage-error" => Ok(StoreFault::Error { prob: num("prob")? }),
            "storage-latency" => Ok(StoreFault::Latency {
                extra_secs: num("extra_secs")?,
            }),
            "link-degrade" => Ok(StoreFault::Degrade {
                factor: num("factor")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown StoreFault kind `{other}`"
            ))),
        }
    }
}

/// One scheduled fault. Ids are positional: a fault's id is its index in
/// [`FaultPlan::faults`], and every retry/migration record chains back to
/// that id (checked by the oracle's T-FAULT-ATTRIB rule).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The provider reclaims a spot VM node at `at_secs`. `node` is a flat
    /// cluster-wide index; the cluster maps it onto its actual
    /// (sub-cluster, node) topology at reclaim time.
    Preempt {
        /// Reclaim instant, seconds.
        at_secs: f64,
        /// Flat node index in `0..nodes`.
        node: usize,
    },
    /// Transient GET errors: reads in the window fail with `prob` and are
    /// retried from a replica.
    StorageError {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Per-operation failure probability.
        prob: f64,
    },
    /// A storage latency spike: every request in the window pays extra.
    StorageLatency {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Additional seconds per operation.
        extra_secs: f64,
    },
    /// Store/WAN link degradation: data-plane flows in the window are
    /// capped to `factor` of their normal bandwidth.
    LinkDegrade {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
}

impl Fault {
    fn store_window(&self) -> Option<(f64, f64, StoreFault)> {
        match *self {
            Fault::Preempt { .. } => None,
            Fault::StorageError {
                from_secs,
                until_secs,
                prob,
            } => Some((from_secs, until_secs, StoreFault::Error { prob })),
            Fault::StorageLatency {
                from_secs,
                until_secs,
                extra_secs,
            } => Some((from_secs, until_secs, StoreFault::Latency { extra_secs })),
            Fault::LinkDegrade {
                from_secs,
                until_secs,
                factor,
            } => Some((from_secs, until_secs, StoreFault::Degrade { factor })),
        }
    }
}

impl Serialize for Fault {
    fn to_value(&self) -> serde::Value {
        let mut obj: Vec<(String, serde::Value)> = Vec::new();
        let mut put = |k: &str, v: serde::Value| obj.push((k.to_owned(), v));
        match *self {
            Fault::Preempt { at_secs, node } => {
                put("kind", "preempt".to_value());
                put("at_secs", at_secs.to_value());
                put("node", node.to_value());
            }
            Fault::StorageError {
                from_secs,
                until_secs,
                prob,
            } => {
                put("kind", "storage-error".to_value());
                put("from_secs", from_secs.to_value());
                put("until_secs", until_secs.to_value());
                put("prob", prob.to_value());
            }
            Fault::StorageLatency {
                from_secs,
                until_secs,
                extra_secs,
            } => {
                put("kind", "storage-latency".to_value());
                put("from_secs", from_secs.to_value());
                put("until_secs", until_secs.to_value());
                put("extra_secs", extra_secs.to_value());
            }
            Fault::LinkDegrade {
                from_secs,
                until_secs,
                factor,
            } => {
                put("kind", "link-degrade".to_value());
                put("from_secs", from_secs.to_value());
                put("until_secs", until_secs.to_value());
                put("factor", factor.to_value());
            }
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for Fault {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let kind = v["kind"]
            .as_str()
            .ok_or_else(|| serde::Error::missing_field("kind"))?;
        let num = |key: &str| {
            v[key]
                .as_f64()
                .ok_or_else(|| serde::Error::missing_field(key))
        };
        match kind {
            "preempt" => Ok(Fault::Preempt {
                at_secs: num("at_secs")?,
                node: v["node"]
                    .as_u64()
                    .ok_or_else(|| serde::Error::missing_field("node"))?
                    as usize,
            }),
            "storage-error" => Ok(Fault::StorageError {
                from_secs: num("from_secs")?,
                until_secs: num("until_secs")?,
                prob: num("prob")?,
            }),
            "storage-latency" => Ok(Fault::StorageLatency {
                from_secs: num("from_secs")?,
                until_secs: num("until_secs")?,
                extra_secs: num("extra_secs")?,
            }),
            "link-degrade" => Ok(Fault::LinkDegrade {
                from_secs: num("from_secs")?,
                until_secs: num("until_secs")?,
                factor: num("factor")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown Fault kind `{other}`"
            ))),
        }
    }
}

/// Shape parameters for [`FaultPlan::generate`]: how much of each fault
/// family a generated plan contains, scaled to a time horizon (usually a
/// fraction of the workflow's fault-free makespan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Fraction of cluster nodes to reclaim (capped so at least one node
    /// survives overall).
    pub preempt_frac: f64,
    /// Time window faults are drawn within, seconds.
    pub horizon_secs: f64,
    /// Number of transient GET-error windows.
    pub storage_error_windows: usize,
    /// Per-operation failure probability inside an error window.
    pub storage_error_prob: f64,
    /// Number of latency-spike windows.
    pub latency_windows: usize,
    /// Extra per-request seconds inside a latency window.
    pub latency_extra_secs: f64,
    /// Number of link-degradation windows.
    pub degrade_windows: usize,
    /// Bandwidth multiplier inside a degradation window.
    pub degrade_factor: f64,
}

impl FaultProfile {
    /// Spot-preemption-only chaos: half the nodes reclaimed inside the
    /// horizon, discounted piecewise spot pricing.
    pub fn preemption(horizon_secs: f64) -> Self {
        FaultProfile {
            preempt_frac: 0.5,
            horizon_secs,
            storage_error_windows: 0,
            storage_error_prob: 0.0,
            latency_windows: 0,
            latency_extra_secs: 0.0,
            degrade_windows: 0,
            degrade_factor: 1.0,
        }
    }

    /// Storage/network chaos only: error, latency, and degradation windows
    /// with no preemption.
    pub fn storage(horizon_secs: f64) -> Self {
        FaultProfile {
            preempt_frac: 0.0,
            horizon_secs,
            storage_error_windows: 2,
            storage_error_prob: 0.3,
            latency_windows: 2,
            latency_extra_secs: 0.2,
            degrade_windows: 1,
            degrade_factor: 0.4,
        }
    }

    /// Both families at once.
    pub fn mixed(horizon_secs: f64) -> Self {
        FaultProfile {
            preempt_frac: 0.5,
            ..Self::storage(horizon_secs)
        }
    }
}

/// A deterministic schedule of faults plus an optional piecewise spot
/// price trace. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from; also seeds the store's chaos RNG
    /// (per-operation error draws), so a plan replays bit-identically.
    pub seed: u64,
    /// Scheduled faults; a fault's id is its index here.
    pub faults: Vec<Fault>,
    /// Piecewise spot price: `(from_secs, price_per_hour)` breakpoints in
    /// ascending order, the last persisting forever. Empty means the flat
    /// on-demand price (spot billing still applies if nodes are reclaimed).
    pub spot_price_trace: Vec<(f64, f64)>,
}

impl FaultPlan {
    /// A plan with no faults and no price trace: installing it changes
    /// nothing about the run.
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
            spot_price_trace: Vec::new(),
        }
    }

    /// True when installing the plan would have no effect.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.spot_price_trace.is_empty()
    }

    /// True when the plan reclaims any node.
    pub fn has_preemptions(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Preempt { .. }))
    }

    fn has_storage_faults(&self) -> bool {
        self.faults.iter().any(|f| f.store_window().is_some())
    }

    /// Draws a plan from `seed` and `profile` for a cluster of `nodes`
    /// nodes priced at `base_price_per_hour` on demand. Deterministic: the
    /// same arguments always yield the same plan. Reclaims distinct nodes
    /// and never all of them.
    pub fn generate(
        seed: u64,
        profile: &FaultProfile,
        nodes: usize,
        base_price_per_hour: f64,
    ) -> Self {
        let mut rng = SeedSource::new(seed).stream("fault-plan");
        let h = profile.horizon_secs.max(1.0);
        let mut faults = Vec::new();

        let max_victims = nodes.saturating_sub(1);
        let wanted = (profile.preempt_frac.clamp(0.0, 1.0) * nodes as f64).floor() as usize;
        let k = wanted.min(max_victims);
        let mut pool: Vec<usize> = (0..nodes).collect();
        for _ in 0..k {
            let i = rng.gen_range(0..pool.len());
            let node = pool.swap_remove(i);
            // Early-to-mid horizon, so the controller has phases left to
            // replan after the reclaim.
            let at_secs = (0.05 + 0.55 * rng.gen::<f64>()) * h;
            faults.push(Fault::Preempt { at_secs, node });
        }

        for _ in 0..profile.storage_error_windows {
            let from_secs = rng.gen::<f64>() * 0.7 * h;
            let dur = (0.05 + 0.2 * rng.gen::<f64>()) * h;
            faults.push(Fault::StorageError {
                from_secs,
                until_secs: from_secs + dur,
                prob: profile.storage_error_prob,
            });
        }
        for _ in 0..profile.latency_windows {
            let from_secs = rng.gen::<f64>() * 0.7 * h;
            let dur = (0.05 + 0.2 * rng.gen::<f64>()) * h;
            faults.push(Fault::StorageLatency {
                from_secs,
                until_secs: from_secs + dur,
                extra_secs: profile.latency_extra_secs,
            });
        }
        for _ in 0..profile.degrade_windows {
            let from_secs = rng.gen::<f64>() * 0.7 * h;
            let dur = (0.1 + 0.3 * rng.gen::<f64>()) * h;
            faults.push(Fault::LinkDegrade {
                from_secs,
                until_secs: from_secs + dur,
                factor: profile.degrade_factor,
            });
        }

        // Spot markets discount against on-demand; reclaim-carrying plans
        // get a piecewise trace so billing exercises segment integration.
        let mut spot_price_trace = Vec::new();
        if k > 0 {
            const SEGS: usize = 4;
            for i in 0..SEGS {
                let discount = 0.3 + 0.6 * rng.gen::<f64>();
                spot_price_trace.push((i as f64 * h / SEGS as f64, base_price_per_hour * discount));
            }
        }

        FaultPlan {
            seed,
            faults,
            spot_price_trace,
        }
    }

    /// Installs the schedule into a built simulation: switches the cluster
    /// to spot billing when the plan carries reclaims or a price trace,
    /// arms the store's chaos RNG when it carries storage windows, and
    /// schedules every fault as an ordinary simulation event. Installing an
    /// empty plan is a no-op.
    pub fn install(&self, sim: &mut Simulation, cluster: &VmCluster, store: &ObjectStore) {
        if self.has_preemptions() || !self.spot_price_trace.is_empty() {
            cluster.enable_spot(self.spot_price_trace.clone());
        }
        if self.has_storage_faults() {
            store.enable_chaos(self.seed);
        }
        for (id, fault) in self.faults.iter().enumerate() {
            let id = id as u64;
            match *fault {
                Fault::Preempt { at_secs, node } => {
                    let cluster = cluster.clone();
                    sim.schedule_at(SimTime::from_secs(at_secs), move |sim| {
                        cluster.preempt_flat(sim.now(), node, id);
                    });
                }
                _ => {
                    let (from, until, f) = fault.store_window().expect("non-preempt fault");
                    let s = store.clone();
                    sim.schedule_at(SimTime::from_secs(from), move |sim| {
                        s.apply_fault(sim.now(), id, f, until);
                    });
                    let s = store.clone();
                    sim.schedule_at(SimTime::from_secs(until), move |sim| {
                        s.clear_fault(sim.now(), id);
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = FaultProfile::mixed(500.0);
        let a = FaultPlan::generate(9, &p, 8, 0.12);
        let b = FaultPlan::generate(9, &p, 8, 0.12);
        assert_eq!(a, b);
        let c = FaultPlan::generate(10, &p, 8, 0.12);
        assert_ne!(a, c);
    }

    #[test]
    fn preemptions_hit_distinct_nodes_and_spare_one() {
        for nodes in [1usize, 2, 3, 8] {
            let mut profile = FaultProfile::preemption(100.0);
            profile.preempt_frac = 1.0; // ask for everything
            let plan = FaultPlan::generate(3, &profile, nodes, 0.12);
            let victims: Vec<usize> = plan
                .faults
                .iter()
                .filter_map(|f| match f {
                    Fault::Preempt { node, .. } => Some(*node),
                    _ => None,
                })
                .collect();
            assert!(victims.len() <= nodes.saturating_sub(1));
            let mut uniq = victims.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), victims.len(), "duplicate victims");
            assert!(victims.iter().all(|&n| n < nodes));
        }
    }

    #[test]
    fn windows_are_ordered_and_inside_the_horizon() {
        let plan = FaultPlan::generate(5, &FaultProfile::storage(200.0), 4, 0.12);
        assert!(plan.has_storage_faults());
        assert!(!plan.has_preemptions());
        assert!(plan.spot_price_trace.is_empty());
        for f in &plan.faults {
            let (from, until, _) = f.store_window().expect("storage profile");
            assert!(from >= 0.0 && until > from);
            assert!(until <= 200.0 * 1.1);
        }
    }

    #[test]
    fn preemption_plans_carry_a_discounted_price_trace() {
        let plan = FaultPlan::generate(5, &FaultProfile::preemption(200.0), 4, 0.12);
        assert!(plan.has_preemptions());
        assert_eq!(plan.spot_price_trace.len(), 4);
        assert!((plan.spot_price_trace[0].0 - 0.0).abs() < 1e-12);
        for w in plan.spot_price_trace.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(_, price) in &plan.spot_price_trace {
            assert!(price > 0.0 && price < 0.12);
        }
    }

    #[test]
    fn empty_plan_is_empty_and_serializes() {
        let plan = FaultPlan::empty(1);
        assert!(plan.is_empty());
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn generated_plan_serde_round_trips() {
        let plan = FaultPlan::generate(11, &FaultProfile::mixed(300.0), 6, 0.12);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(plan, back);
    }
}
