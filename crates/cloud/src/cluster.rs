//! The traditional VM cluster model.
//!
//! A cluster is one or more *sub-clusters*, each with its own master node
//! whose NIC funnels all intra-cluster data distribution and collection
//! (the paper's §5 observation that Individual-Merge and Sifting "contend
//! for network bandwidth to communicate with the master node" falls out of
//! this).
//!
//! Execution follows the paper's traditional-cluster semantics (Algorithm 1
//! lines 12–14): a task's components are spawned across the workers *all at
//! once* and timeshare the node's cores. Oversubscription slows every
//! co-resident component **superlinearly** — `(load/cores)^(1+c)` with a
//! per-task contention coefficient `c` — which is exactly the paper's
//! Eq. 2 form `T_VM = R^(γ·C)`: heavily oversubscribed small clusters
//! thrash (cache/memory pressure), which is why serverless can beat them on
//! both time *and* expense, while large clusters run near the linear
//! work-conserving bound.

use crate::cost::CostMeter;
use crate::pricing::InstanceType;
use crate::storage::ObjectStore;
use mashup_sim::trace::{TraceEvent, Tracer};
use mashup_sim::{
    jitter_factor, EventFn, SeedSource, SharedLink, SimDuration, SimTime, Simulation,
};
use mashup_sim::{shared, Shared};
use serde::{Deserialize, Serialize};

/// Completion callback handed to [`VmCluster::run_task`].
type ClusterDoneFn = Box<dyn FnOnce(&mut Simulation, ClusterRunStats) + Send>;

/// Cluster shape and billing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node instance type.
    pub instance: InstanceType,
    /// Total worker nodes.
    pub nodes: usize,
    /// Number of sub-clusters the nodes are divided into, each with its own
    /// master (the paper's two-sub-cluster optimization for SRAsearch).
    pub subclusters: usize,
    /// Time to provision the cluster before it is usable, seconds.
    pub provision_secs: f64,
}

impl ClusterConfig {
    /// A single sub-cluster of `nodes` nodes of the given type.
    pub fn new(instance: InstanceType, nodes: usize) -> Self {
        ClusterConfig {
            instance,
            nodes,
            subclusters: 1,
            provision_secs: 0.0,
        }
    }

    /// Builder-style: splits the cluster into `k` sub-clusters.
    pub fn with_subclusters(mut self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.nodes, "invalid subcluster count");
        self.subclusters = k;
        self
    }

    /// Builder-style: sets the provisioning latency.
    pub fn with_provisioning(mut self, secs: f64) -> Self {
        self.provision_secs = secs;
        self
    }

    /// Total core slots across the cluster.
    pub fn total_slots(&self) -> usize {
        self.nodes * self.instance.cores
    }
}

/// Where a cluster task's input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClusterInput {
    /// No input transfer (already node-local).
    None,
    /// Initial dataset distributed from the sub-cluster master
    /// (Algorithm 1 line 12): funnels through the master ingest NIC.
    Master,
    /// Inter-phase data from other workers over the scalable fabric.
    Fabric,
    /// From the object store over the WAN (hybrid boundary).
    Wan,
}

/// Where a cluster task's output goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClusterOutput {
    /// No output transfer.
    None,
    /// To the next phase's workers over the fabric.
    Fabric,
    /// To the object store over the WAN (hybrid boundary).
    Wan,
}

/// Work description for running one task's components on the cluster.
#[derive(Debug, Clone)]
pub struct ClusterTaskSpec {
    /// Label for diagnostics (usually the task name).
    pub label: String,
    /// Number of components to run.
    pub components: usize,
    /// Per-component compute seconds on a reference core.
    pub compute_secs: f64,
    /// Per-component input bytes.
    pub input_bytes: f64,
    /// Per-component output bytes.
    pub output_bytes: f64,
    /// GET/PUT requests per component when exchanging with the store.
    pub io_requests: u64,
    /// Memory-pressure thrash coefficient (see
    /// [`VmCluster::timeshare_factor`]).
    pub contention_coeff: f64,
    /// Per-component resident memory in GiB (drives swap thrash).
    pub memory_gb: f64,
    /// Relative runtime jitter.
    pub jitter: f64,
    /// Input path.
    pub input: ClusterInput,
    /// Output path.
    pub output: ClusterOutput,
    /// Which sub-cluster to run on.
    pub subcluster: usize,
}

impl ClusterTaskSpec {
    /// A minimal spec with the given label, component count, and compute.
    pub fn new(label: impl Into<String>, components: usize, compute_secs: f64) -> Self {
        ClusterTaskSpec {
            label: label.into(),
            components,
            compute_secs,
            input_bytes: 0.0,
            output_bytes: 0.0,
            io_requests: 1,
            contention_coeff: 0.0,
            memory_gb: 0.0,
            jitter: 0.0,
            input: ClusterInput::Fabric,
            output: ClusterOutput::Fabric,
            subcluster: 0,
        }
    }
}

/// Timing summary of one task run on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterRunStats {
    /// Submission instant.
    pub start: SimTime,
    /// Completion of the last component.
    pub end: SimTime,
    /// Sum of per-component I/O wall time, seconds.
    pub io_secs: f64,
    /// Sum of per-component compute wall time, seconds.
    pub compute_secs: f64,
}

impl ClusterRunStats {
    /// Wall-clock makespan of the task.
    pub fn makespan(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

struct SubCluster {
    /// Live component count per worker node (timeshare load).
    node_loads: mashup_sim::AtomicRefCell<Vec<usize>>,
    peak_load: std::sync::atomic::AtomicUsize,
    /// Master ingest NIC: initial-data distribution.
    master_link: SharedLink,
    /// Intra-cluster fabric: inter-phase data; aggregate scales with the
    /// node count (bisection bound), per-flow capped by a node's NIC.
    fabric_link: SharedLink,
}

impl SubCluster {
    fn nodes(&self) -> usize {
        self.node_loads.borrow().len()
    }
}

/// Spot-pool state: the piecewise price trace and reclaimed nodes.
struct SpotState {
    /// `(from_secs, price_per_hour)` breakpoints, ascending, first at 0;
    /// the last segment persists forever.
    price_trace: Vec<(f64, f64)>,
    /// Reclaimed nodes: `(sub, node)` → (reclaim instant, fault id).
    preempted: std::collections::BTreeMap<(usize, usize), (SimTime, u64)>,
}

struct ClusterState {
    billing_started: Option<SimTime>,
    billed_node_seconds: f64,
    tracer: Tracer,
    spot: Option<SpotState>,
}

/// Per-task completion accumulator shared by a task's component events.
struct Accum {
    remaining: usize,
    io_secs: f64,
    compute_secs: f64,
    start: SimTime,
    done: Option<ClusterDoneFn>,
}

/// A shareable VM cluster. Cloning shares the same nodes and links.
#[derive(Clone)]
pub struct VmCluster {
    cfg: ClusterConfig,
    subs: std::sync::Arc<Vec<SubCluster>>,
    meter: CostMeter,
    seeds: SeedSource,
    state: Shared<ClusterState>,
}

impl VmCluster {
    /// Builds a cluster; nodes are split round-robin across sub-clusters.
    pub fn new(cfg: ClusterConfig, meter: CostMeter, seeds: &SeedSource) -> Self {
        assert!(cfg.nodes >= 1, "cluster needs at least one node");
        assert!(
            cfg.subclusters >= 1 && cfg.subclusters <= cfg.nodes,
            "invalid subcluster split"
        );
        let per_sub = cfg.nodes / cfg.subclusters;
        let mut leftover = cfg.nodes % cfg.subclusters;
        let mut subs = Vec::with_capacity(cfg.subclusters);
        for s in 0..cfg.subclusters {
            let mut n = per_sub;
            if leftover > 0 {
                n += 1;
                leftover -= 1;
            }
            let fabric_bps =
                (n as f64 * cfg.instance.node_nic_bps / 2.0).max(cfg.instance.node_nic_bps);
            subs.push(SubCluster {
                node_loads: mashup_sim::AtomicRefCell::new(vec![0usize; n]),
                peak_load: std::sync::atomic::AtomicUsize::new(0),
                master_link: SharedLink::new(
                    format!("sub{s}-master-nic"),
                    cfg.instance.master_nic_bps,
                ),
                fabric_link: SharedLink::new(format!("sub{s}-fabric"), fabric_bps),
            });
        }
        VmCluster {
            subs: std::sync::Arc::new(subs),
            meter,
            seeds: seeds.child("cluster"),
            state: shared(ClusterState {
                billing_started: None,
                billed_node_seconds: 0.0,
                tracer: Tracer::off(),
                spot: None,
            }),
            cfg,
        }
    }

    /// Switches the cluster to spot pools: nodes can be reclaimed mid-run
    /// and billing integrates the piecewise `(from_secs, price_per_hour)`
    /// trace per node (empty = flat on-demand price). Must be called
    /// before billing starts.
    pub fn enable_spot(&self, mut price_trace: Vec<(f64, f64)>) {
        let mut s = self.state.borrow_mut();
        assert!(
            s.billing_started.is_none(),
            "enable spot pools before billing starts"
        );
        if price_trace.first().is_none_or(|p| p.0 > 0.0) {
            price_trace.insert(0, (0.0, self.cfg.instance.price_per_hour));
        }
        s.spot = Some(SpotState {
            price_trace,
            preempted: std::collections::BTreeMap::new(),
        });
    }

    /// True when spot pools are enabled.
    pub fn spot_enabled(&self) -> bool {
        self.state.borrow().spot.is_some()
    }

    /// Reclaims a spot node given a flat cluster-wide index (clamped into
    /// range), mapping it onto the actual sub-cluster split — fault plans
    /// stay valid whatever split the planner chose.
    pub fn preempt_flat(&self, now: SimTime, flat: usize, fault_id: u64) {
        let mut rest = flat % self.cfg.nodes;
        for (sub_idx, sub) in self.subs.iter().enumerate() {
            if rest < sub.nodes() {
                self.preempt_node(now, sub_idx, rest, fault_id);
                return;
            }
            rest -= sub.nodes();
        }
        unreachable!("flat index within node count");
    }

    /// Reclaims a specific (sub-cluster, node): future placement avoids it
    /// and billing stops at the reclaim instant. No-op when spot pools are
    /// off, the node is already reclaimed, or it is the sub-cluster's last
    /// survivor (liveness: a run must always be able to finish).
    pub fn preempt_node(&self, now: SimTime, sub: usize, node: usize, fault_id: u64) {
        let mut s = self.state.borrow_mut();
        let Some(spot) = s.spot.as_mut() else { return };
        if spot.preempted.contains_key(&(sub, node)) {
            return;
        }
        let alive = self.subs[sub].nodes() - spot.preempted.keys().filter(|k| k.0 == sub).count();
        if alive <= 1 {
            return;
        }
        spot.preempted.insert((sub, node), (now, fault_id));
        s.tracer.emit(
            now,
            TraceEvent::SpotPreempt {
                id: fault_id,
                sub,
                node,
            },
        );
    }

    /// Nodes not yet reclaimed (all nodes when spot pools are off).
    pub fn surviving_nodes(&self) -> usize {
        self.cfg.nodes - self.preempted_nodes()
    }

    /// Reclaimed node count.
    pub fn preempted_nodes(&self) -> usize {
        self.state
            .borrow()
            .spot
            .as_ref()
            .map_or(0, |sp| sp.preempted.len())
    }

    fn preempted_at(&self, sub: usize, node: usize) -> Option<(SimTime, u64)> {
        self.state
            .borrow()
            .spot
            .as_ref()
            .and_then(|sp| sp.preempted.get(&(sub, node)).copied())
    }

    /// Maps a component's preferred node onto a surviving one. Identity
    /// when spot pools are off or the preferred node is alive.
    fn resolve_node(&self, sub: usize, preferred: usize) -> usize {
        let s = self.state.borrow();
        let Some(spot) = s.spot.as_ref() else {
            return preferred;
        };
        if !spot.preempted.contains_key(&(sub, preferred)) {
            return preferred;
        }
        let n = self.subs[sub].nodes();
        let alive: Vec<usize> = (0..n)
            .filter(|&i| !spot.preempted.contains_key(&(sub, i)))
            .collect();
        assert!(
            !alive.is_empty(),
            "sub-cluster {sub} lost every node to preemption"
        );
        alive[preferred % alive.len()]
    }

    /// Integrates the piecewise price over `[from, to)` seconds for one
    /// node, charging the meter per segment. Returns billed node-seconds
    /// and dollars, computed with the meter's own arithmetic so the cost
    /// oracle reconciles `SpotBill` records exactly.
    fn charge_spot_segments(&self, trace: &[(f64, f64)], from: f64, to: f64) -> (f64, f64) {
        let mut dollars = 0.0;
        for (i, &(seg_from, price)) in trace.iter().enumerate() {
            let seg_to = trace.get(i + 1).map_or(f64::INFINITY, |s| s.0);
            let a = from.max(seg_from);
            let b = to.min(seg_to);
            if b > a {
                self.meter.charge_vm(b - a, price);
                dollars += (b - a) / 3600.0 * price;
            }
        }
        (to - from, dollars)
    }

    /// Attaches a flight recorder; component timeshare windows and billing
    /// boundaries flow through it (sub-cluster links pick it up too).
    /// Reaches every clone of this cluster (state is shared).
    pub fn set_tracer(&self, tracer: Tracer) {
        for sub in self.subs.iter() {
            sub.master_link.set_tracer(tracer.clone());
            sub.fabric_link.set_tracer(tracer.clone());
        }
        self.state.borrow_mut().tracer = tracer;
    }

    fn tracer(&self) -> Tracer {
        self.state.borrow().tracer.clone()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The master ingest link of a sub-cluster (exposed for traces).
    pub fn master_link(&self, subcluster: usize) -> &SharedLink {
        &self.subs[subcluster].master_link
    }

    /// The intra-cluster fabric link of a sub-cluster (exposed for traces).
    pub fn fabric_link(&self, subcluster: usize) -> &SharedLink {
        &self.subs[subcluster].fabric_link
    }

    /// Starts billing node time (idempotent).
    pub fn start_billing(&self, now: SimTime) {
        let mut s = self.state.borrow_mut();
        if s.billing_started.is_none() {
            s.billing_started = Some(now);
            s.tracer.emit(
                now,
                TraceEvent::BillingStart {
                    nodes: self.cfg.nodes,
                },
            );
        }
    }

    /// Stops billing and charges the meter for the elapsed node time. With
    /// spot pools enabled, each node is billed to its reclaim instant (or
    /// the stop instant) across the piecewise price segments, and per-node
    /// `SpotBill` records replace the single `BillingStop`.
    pub fn stop_billing(&self, now: SimTime) {
        let mut s = self.state.borrow_mut();
        if let Some(t0) = s.billing_started.take() {
            if let Some(spot) = s.spot.as_ref() {
                let trace = spot.price_trace.clone();
                let preempted = spot.preempted.clone();
                let mut bills = Vec::new();
                let mut total = 0.0;
                for (sub_idx, sub) in self.subs.iter().enumerate() {
                    for node in 0..sub.nodes() {
                        let end = preempted.get(&(sub_idx, node)).map_or(now, |&(t, _)| {
                            if t < now {
                                t
                            } else {
                                now
                            }
                        });
                        let from = t0.as_secs();
                        let to = end.as_secs().max(from);
                        let (secs, dollars) = self.charge_spot_segments(&trace, from, to);
                        total += secs;
                        bills.push((sub_idx, node, secs, dollars));
                    }
                }
                s.billed_node_seconds += total;
                for (sub, node, node_seconds, dollars) in bills {
                    s.tracer.emit(
                        now,
                        TraceEvent::SpotBill {
                            sub,
                            node,
                            node_seconds,
                            dollars,
                        },
                    );
                }
            } else {
                let node_secs = now.saturating_since(t0).as_secs() * self.cfg.nodes as f64;
                s.billed_node_seconds += node_secs;
                self.meter
                    .charge_vm(node_secs, self.cfg.instance.price_per_hour);
                s.tracer.emit(
                    now,
                    TraceEvent::BillingStop {
                        node_seconds: node_secs,
                    },
                );
            }
        }
    }

    /// Node-seconds billed so far.
    pub fn billed_node_seconds(&self) -> f64 {
        self.state.borrow().billed_node_seconds
    }

    /// Peak per-node component load observed on a sub-cluster.
    pub fn peak_node_load(&self, subcluster: usize) -> usize {
        self.subs[subcluster]
            .peak_load
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Saturation bound on the swap-thrash multiplier (the slowdown cannot
    /// exceed roughly the paging-vs-RAM speed gap).
    pub const MAX_THRASH: f64 = 8.0;

    /// The timeshare slowdown for a node running `load` components of
    /// `comp_mem_gb` each on `cores` cores with `node_mem_gb` of RAM:
    ///
    /// ```text
    /// max(1, load/cores)
    ///     × min(MAX_THRASH, 1 + c · max(0, load·comp_mem/node_mem − 1))
    /// ```
    ///
    /// The first term is plain work-conserving timesharing. The second is
    /// *memory-pressure thrash*: once the resident set exceeds the node's
    /// RAM, cycles are wasted swapping, growing with the deficit up to a
    /// saturation bound. This is the mechanistic form of the paper's
    /// superlinear Eq. 2 (`T_VM = R^(γ·C)`): small clusters running
    /// hundreds of co-resident components thrash badly, large clusters run
    /// near the linear work-conserving bound.
    pub fn timeshare_factor(
        load: usize,
        cores: usize,
        comp_mem_gb: f64,
        node_mem_gb: f64,
        swap_coeff: f64,
    ) -> f64 {
        let oversub = (load as f64 / cores as f64).max(1.0);
        let pressure = (load as f64 * comp_mem_gb / node_mem_gb - 1.0).max(0.0);
        oversub * (1.0 + swap_coeff * pressure).min(Self::MAX_THRASH)
    }

    /// Runs all components of a task on the cluster, invoking `on_done` with
    /// timing stats when the last component finishes.
    ///
    /// Per component (Algorithm 1 lines 12–14): read input through the
    /// master NIC (or the store over the WAN in hybrid mode), compute while
    /// timesharing the node with its co-residents (superlinear
    /// oversubscription slowdown sampled at compute start), write output.
    pub fn run_task(
        &self,
        sim: &mut Simulation,
        store: Option<&ObjectStore>,
        spec: ClusterTaskSpec,
        on_done: impl FnOnce(&mut Simulation, ClusterRunStats) + Send + 'static,
    ) {
        assert!(spec.subcluster < self.subs.len(), "no such subcluster");
        assert!(spec.components > 0, "task with zero components");
        assert!(
            !(spec.input == ClusterInput::Wan || spec.output == ClusterOutput::Wan)
                || store.is_some(),
            "WAN I/O requires an object store"
        );

        let accum = shared(Accum {
            remaining: spec.components,
            io_secs: 0.0,
            compute_secs: 0.0,
            start: sim.now(),
            done: Some(Box::new(on_done)),
        });

        let sub = spec.subcluster;
        let n_nodes = self.subs[sub].nodes();
        let spec = std::sync::Arc::new(spec);
        let mut rng = self.seeds.child(&spec.label).stream("cluster-run");

        // The input branch is component-independent; when there is no input
        // transfer, the whole fan-out fires at the current instant and can
        // be bulk-scheduled as one batch (O(1) per component instead of a
        // heap operation each). Dispatch order is unchanged: the batch
        // preserves component order and nothing else is scheduled between
        // the loop iterations it replaces.
        let no_input = spec.input_bytes <= 0.0 || spec.input == ClusterInput::None;
        let mut batch: Vec<EventFn> = if no_input {
            Vec::with_capacity(spec.components)
        } else {
            Vec::new()
        };

        for comp in 0..spec.components {
            let node_idx = comp % n_nodes;
            let cluster = self.clone();
            let spec = spec.clone();
            let accum = accum.clone();
            let store = store.cloned();
            let jf = jitter_factor(&mut rng, spec.jitter);

            // --- input ---
            let read_begin = sim.now();
            let after_read = {
                let cluster = cluster.clone();
                let spec = spec.clone();
                let accum = accum.clone();
                let store = store.clone();
                move |sim: &mut Simulation| {
                    accum.borrow_mut().io_secs += sim.now().since(read_begin).as_secs();
                    VmCluster::compute_component(cluster, spec, accum, store, node_idx, jf, sim);
                }
            };
            if no_input {
                batch.push(Box::new(after_read));
            } else if spec.input == ClusterInput::Wan {
                let s = store.clone().expect("store checked above");
                s.read(
                    sim,
                    spec.input_bytes,
                    spec.io_requests,
                    Some(cluster.cfg.instance.wan_bps),
                    move |sim, _| after_read(sim),
                );
            } else {
                let sub = &cluster.subs[spec.subcluster];
                let link = if spec.input == ClusterInput::Master {
                    &sub.master_link
                } else {
                    &sub.fabric_link
                };
                link.start_transfer(
                    sim,
                    spec.input_bytes,
                    Some(cluster.cfg.instance.node_nic_bps),
                    after_read,
                );
            }
        }
        if no_input {
            sim.schedule_batch_now(batch);
        }
    }

    /// Runs one component's compute-and-output stage on a node of
    /// `spec.subcluster`. Without spot pools this is exactly the legacy
    /// compute path (same state updates, same events, same order); with
    /// them, the component lands on a surviving node, and if a preemption
    /// reclaims the node mid-window the attempt's work is lost and the
    /// component retries on a survivor (chaining a `CompRetry` record to
    /// the preemption's fault id).
    fn compute_component(
        cluster: VmCluster,
        spec: std::sync::Arc<ClusterTaskSpec>,
        accum: Shared<Accum>,
        store: Option<ObjectStore>,
        preferred_node: usize,
        jf: f64,
        sim: &mut Simulation,
    ) {
        let node_idx = cluster.resolve_node(spec.subcluster, preferred_node);
        // --- compute: timeshare the node ---
        let load = {
            let sub = &cluster.subs[spec.subcluster];
            let mut loads = sub.node_loads.borrow_mut();
            loads[node_idx] += 1;
            let l = loads[node_idx];
            let prev = sub.peak_load.load(std::sync::atomic::Ordering::Relaxed);
            sub.peak_load
                .store(prev.max(l), std::sync::atomic::Ordering::Relaxed);
            l
        };
        let factor = VmCluster::timeshare_factor(
            load,
            cluster.cfg.instance.cores,
            spec.memory_gb,
            cluster.cfg.instance.memory_gb,
            spec.contention_coeff,
        );
        let thrash = load as f64 * spec.memory_gb > cluster.cfg.instance.memory_gb
            && spec.contention_coeff > 0.0;
        // Build the event only when recording: the label clone
        // is per-component heap churn at million-task scale.
        if cluster.tracer().is_on() {
            cluster.tracer().emit(
                sim.now(),
                TraceEvent::VmCompStart {
                    task: spec.label.clone(),
                    sub: spec.subcluster,
                    node: node_idx,
                    load,
                    mem_gb: spec.memory_gb,
                    factor,
                    thrash,
                },
            );
        }
        let secs = spec.compute_secs / cluster.cfg.instance.core_speed * factor * jf;
        let dur = SimDuration::from_secs(secs);
        accum.borrow_mut().compute_secs += secs;
        sim.schedule_in(dur, move |sim| {
            cluster.subs[spec.subcluster].node_loads.borrow_mut()[node_idx] -= 1;
            if cluster.tracer().is_on() {
                cluster.tracer().emit(
                    sim.now(),
                    TraceEvent::VmCompEnd {
                        task: spec.label.clone(),
                        sub: spec.subcluster,
                        node: node_idx,
                    },
                );
            }
            // Spot: the node may have been reclaimed mid-window; the
            // attempt's work is lost and the component retries.
            if let Some((t_pre, fault_id)) = cluster.preempted_at(spec.subcluster, node_idx) {
                if t_pre < sim.now() {
                    let retry_node = cluster.resolve_node(spec.subcluster, preferred_node);
                    if cluster.tracer().is_on() {
                        cluster.tracer().emit(
                            sim.now(),
                            TraceEvent::CompRetry {
                                id: fault_id,
                                task: spec.label.clone(),
                                sub: spec.subcluster,
                                node: retry_node,
                            },
                        );
                    }
                    VmCluster::compute_component(
                        cluster,
                        spec,
                        accum,
                        store,
                        preferred_node,
                        jf,
                        sim,
                    );
                    return;
                }
            }
            // --- output ---
            let write_begin = sim.now();
            let finish = {
                let accum = accum.clone();
                move |sim: &mut Simulation| {
                    let mut a = accum.borrow_mut();
                    a.io_secs += sim.now().since(write_begin).as_secs();
                    a.remaining -= 1;
                    if a.remaining == 0 {
                        let stats = ClusterRunStats {
                            start: a.start,
                            end: sim.now(),
                            io_secs: a.io_secs,
                            compute_secs: a.compute_secs,
                        };
                        let cb = a.done.take().expect("done fires once");
                        drop(a);
                        cb(sim, stats);
                    }
                }
            };
            if spec.output_bytes <= 0.0 || spec.output == ClusterOutput::None {
                sim.schedule_now(finish);
            } else if spec.output == ClusterOutput::Wan {
                let s = store.clone().expect("store checked above");
                s.write(
                    sim,
                    spec.output_bytes,
                    spec.io_requests,
                    Some(cluster.cfg.instance.wan_bps),
                    move |sim, _| finish(sim),
                );
            } else {
                cluster.subs[spec.subcluster].fabric_link.start_transfer(
                    sim,
                    spec.output_bytes,
                    Some(cluster.cfg.instance.node_nic_bps),
                    finish,
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn cluster(nodes: usize) -> (VmCluster, CostMeter) {
        let meter = CostMeter::new();
        let c = VmCluster::new(
            ClusterConfig::new(InstanceType::r5_large(), nodes),
            meter.clone(),
            &SeedSource::new(7),
        );
        (c, meter)
    }

    fn run(c: &VmCluster, spec: ClusterTaskSpec) -> ClusterRunStats {
        let mut sim = Simulation::new();
        let out = shared(None);
        let o2 = out.clone();
        let c2 = c.clone();
        sim.schedule_now(move |sim| {
            c2.run_task(sim, None, spec, move |_, stats| {
                *o2.borrow_mut() = Some(stats);
            });
        });
        sim.run();
        let stats = out.borrow_mut().take().expect("task completed");
        stats
    }

    #[test]
    fn timesharing_is_work_conserving_without_thrash() {
        // 8 comps of 10 s on 2 nodes x 2 cores, zero contention coeff:
        // 4 comps per node timeshare 2 cores. The load is sampled at each
        // component's compute start (components arriving at the same
        // instant see loads 1,2,3,4 on their node), so the slowest sees the
        // full oversubscription of 2 -> makespan 20 s, the same as ideal
        // wave packing.
        let (c, _) = cluster(2);
        let stats = run(&c, ClusterTaskSpec::new("t", 8, 10.0));
        assert!((stats.makespan().as_secs() - 20.0).abs() < 1e-9);
        assert_eq!(stats.io_secs, 0.0);
        // Per node: loads 1,2,3,4 -> factors 1,1,1.5,2 -> 10+10+15+20 s.
        assert!((stats.compute_secs - 110.0).abs() < 1e-9);
        assert_eq!(c.peak_node_load(0), 4);
    }

    #[test]
    fn memory_pressure_thrash_is_superlinear() {
        // 8 comps of 4 GiB on one 16 GiB node (2 cores), coeff 0.5:
        // oversub 4, memory pressure 8*4/16 - 1 = 1 -> factor 4 * 1.5 = 6.
        let (c, _) = cluster(1);
        let mut spec = ClusterTaskSpec::new("t", 8, 10.0);
        spec.contention_coeff = 0.5;
        spec.memory_gb = 4.0;
        let stats = run(&c, spec);
        assert!(
            (stats.makespan().as_secs() - 60.0).abs() < 1e-6,
            "{}",
            stats.makespan().as_secs()
        );
    }

    #[test]
    fn fitting_in_memory_avoids_thrash() {
        // Same oversubscription, tiny memory: pure timesharing (factor 4).
        let (c, _) = cluster(1);
        let mut spec = ClusterTaskSpec::new("t", 8, 10.0);
        spec.contention_coeff = 0.5;
        spec.memory_gb = 0.1;
        let stats = run(&c, spec);
        assert!((stats.makespan().as_secs() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn under_subscribed_nodes_run_at_full_speed() {
        let (c, _) = cluster(4);
        let mut spec = ClusterTaskSpec::new("t", 4, 10.0);
        spec.contention_coeff = 0.5;
        spec.memory_gb = 1.0;
        let stats = run(&c, spec);
        assert!((stats.makespan().as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn timeshare_factor_math() {
        // Below the core count and within memory: no slowdown.
        assert_eq!(VmCluster::timeshare_factor(2, 2, 1.0, 16.0, 0.5), 1.0);
        // Pure timesharing.
        assert!((VmCluster::timeshare_factor(4, 2, 1.0, 16.0, 0.5) - 2.0).abs() < 1e-12);
        // Timesharing + swap thrash: load 16 x 2 GiB on 16 GiB -> pressure 1.
        let f = VmCluster::timeshare_factor(16, 2, 2.0, 16.0, 0.5);
        assert!((f - 8.0 * 1.5).abs() < 1e-12);
        // Thrash grows linearly with the memory deficit.
        let f2 = VmCluster::timeshare_factor(32, 2, 2.0, 16.0, 0.5);
        assert!((f2 - 16.0 * 2.5).abs() < 1e-12);
        // ... but saturates at MAX_THRASH.
        let f3 = VmCluster::timeshare_factor(256, 2, 2.0, 16.0, 2.0);
        assert!((f3 - 128.0 * VmCluster::MAX_THRASH).abs() < 1e-9);
    }

    #[test]
    fn master_ingest_is_shared_within_subcluster() {
        // 4 comps each pulling 2.5 GB of initial data through the 2.5 GB/s
        // master ingest NIC: 10 GB total -> 4 s of I/O, then 1 s compute.
        let (c, _) = cluster(4);
        let mut spec = ClusterTaskSpec::new("t", 4, 1.0);
        spec.input_bytes = 2.5e9;
        spec.input = ClusterInput::Master;
        let stats = run(&c, spec);
        assert!(
            (stats.makespan().as_secs() - 5.0).abs() < 1e-6,
            "{}",
            stats.makespan().as_secs()
        );
    }

    #[test]
    fn fabric_scales_with_node_count() {
        // 16 comps each moving 1.25 GB over the fabric. On 2 nodes the
        // fabric is max(nic, 2*nic/2) = 1.25 GB/s -> 16 s; on 16 nodes it
        // is 10 GB/s -> 2 s.
        for (nodes, expect) in [(2usize, 16.0), (16usize, 2.0)] {
            let (c, _) = cluster(nodes);
            let mut spec = ClusterTaskSpec::new("t", 16, 0.0);
            spec.input_bytes = 1.25e9;
            spec.input = ClusterInput::Fabric;
            let stats = run(&c, spec);
            assert!(
                (stats.makespan().as_secs() - expect).abs() < 1e-6,
                "{} nodes: {}",
                nodes,
                stats.makespan().as_secs()
            );
        }
    }

    #[test]
    fn fabric_flows_are_capped_by_the_node_nic() {
        // A single component cannot pull faster than its own NIC even on a
        // big cluster: 2.5 GB at 1.25 GB/s = 2 s.
        let (c, _) = cluster(32);
        let mut spec = ClusterTaskSpec::new("t", 1, 0.0);
        spec.input_bytes = 2.5e9;
        spec.input = ClusterInput::Fabric;
        let stats = run(&c, spec);
        assert!((stats.makespan().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn subclusters_have_independent_masters() {
        let meter = CostMeter::new();
        let c = VmCluster::new(
            ClusterConfig::new(InstanceType::r5_large(), 4).with_subclusters(2),
            meter,
            &SeedSource::new(7),
        );
        let mut sim = Simulation::new();
        let ends = shared(Vec::new());
        for sub in 0..2 {
            let mut spec = ClusterTaskSpec::new(format!("t{sub}"), 4, 0.0);
            spec.input_bytes = 1.25e9;
            spec.input = ClusterInput::Master;
            spec.subcluster = sub;
            let c2 = c.clone();
            let ends2 = ends.clone();
            sim.schedule_now(move |sim| {
                c2.run_task(sim, None, spec, move |sim, _| {
                    ends2.borrow_mut().push(sim.now().as_secs());
                });
            });
        }
        sim.run();
        // Each subcluster ingests 4 x 1.25 GB over its own 2.5 GB/s master:
        // 2 s each, in parallel (4 s if they shared one master).
        for &e in ends.borrow().iter() {
            assert!((e - 2.0).abs() < 1e-6, "end {e}");
        }
    }

    #[test]
    fn billing_charges_node_time() {
        let (c, meter) = cluster(4);
        c.start_billing(SimTime::ZERO);
        c.start_billing(SimTime::from_secs(10.0)); // idempotent
        c.stop_billing(SimTime::from_secs(3600.0));
        let e = meter.expense(0.0);
        // 4 nodes x 1 h x $0.12.
        assert!((e.vm_dollars - 0.48).abs() < 1e-9);
        assert_eq!(c.billed_node_seconds(), 4.0 * 3600.0);
    }

    #[test]
    fn faster_cores_shrink_compute() {
        let meter = CostMeter::new();
        let c = VmCluster::new(
            ClusterConfig::new(InstanceType::r5b_large(), 1),
            meter,
            &SeedSource::new(7),
        );
        let stats = run(&c, ClusterTaskSpec::new("t", 1, 13.5));
        assert!((stats.makespan().as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn larger_cluster_reduces_makespan() {
        let (small, _) = cluster(2);
        let (large, _) = cluster(16);
        let t_small = run(&small, ClusterTaskSpec::new("t", 64, 5.0));
        let t_large = run(&large, ClusterTaskSpec::new("t", 64, 5.0));
        assert!(t_large.makespan() < t_small.makespan());
    }

    #[test]
    #[should_panic(expected = "WAN I/O requires an object store")]
    fn wan_io_without_store_panics() {
        let (c, _) = cluster(1);
        let mut spec = ClusterTaskSpec::new("t", 1, 1.0);
        spec.input = ClusterInput::Wan;
        run(&c, spec);
    }

    #[test]
    fn preempt_flat_maps_onto_the_subcluster_split() {
        let meter = CostMeter::new();
        let c = VmCluster::new(
            ClusterConfig::new(InstanceType::r5_large(), 4).with_subclusters(2),
            meter,
            &SeedSource::new(7),
        );
        c.enable_spot(Vec::new());
        // Flat index 3 lands on (sub 1, node 1) under a 2+2 split; an
        // out-of-range index wraps (5 % 4 = 1 -> sub 0, node 1).
        c.preempt_flat(SimTime::from_secs(1.0), 3, 0);
        c.preempt_flat(SimTime::from_secs(2.0), 5, 1);
        assert_eq!(c.surviving_nodes(), 2);
        assert_eq!(c.preempted_at(1, 1), Some((SimTime::from_secs(1.0), 0)));
        assert_eq!(c.preempted_at(0, 1), Some((SimTime::from_secs(2.0), 1)));
    }

    #[test]
    fn preemption_spares_each_subclusters_last_survivor() {
        let (c, _) = cluster(2);
        c.enable_spot(Vec::new());
        c.preempt_node(SimTime::from_secs(1.0), 0, 0, 0);
        // Reclaiming the last survivor is a silent no-op (liveness), as is
        // reclaiming an already-reclaimed node.
        c.preempt_node(SimTime::from_secs(2.0), 0, 1, 1);
        c.preempt_node(SimTime::from_secs(3.0), 0, 0, 2);
        assert_eq!(c.surviving_nodes(), 1);
        assert_eq!(c.resolve_node(0, 0), 1);
        assert_eq!(c.resolve_node(0, 1), 1);
    }

    #[test]
    fn preemption_without_spot_pools_is_a_no_op() {
        let (c, _) = cluster(2);
        c.preempt_node(SimTime::from_secs(1.0), 0, 0, 0);
        assert_eq!(c.surviving_nodes(), 2);
        assert_eq!(c.resolve_node(0, 0), 0);
    }

    #[test]
    fn mid_compute_preemption_retries_on_a_survivor() {
        // 2 comps of 10 s, one per node; node 0 is reclaimed at t=5, so its
        // comp's first attempt is lost and it re-runs on node 1: 10 s wasted
        // + 10 s retry -> makespan 20 s, 30 s of compute across attempts.
        let (c, _) = cluster(2);
        c.enable_spot(Vec::new());
        let mut sim = Simulation::new();
        let out = shared(None);
        let o2 = out.clone();
        let c2 = c.clone();
        sim.schedule_now(move |sim| {
            c2.run_task(
                sim,
                None,
                ClusterTaskSpec::new("t", 2, 10.0),
                move |_, stats| {
                    *o2.borrow_mut() = Some(stats);
                },
            );
        });
        let c3 = c.clone();
        sim.schedule_at(SimTime::from_secs(5.0), move |sim| {
            c3.preempt_node(sim.now(), 0, 0, 0);
        });
        sim.run();
        let stats = out.borrow_mut().take().expect("task completed");
        assert!((stats.makespan().as_secs() - 20.0).abs() < 1e-9);
        assert!((stats.compute_secs - 30.0).abs() < 1e-9);
    }

    #[test]
    fn spot_billing_integrates_price_segments_per_node() {
        let (c, meter) = cluster(2);
        c.enable_spot(vec![(0.0, 0.12), (1800.0, 0.06)]);
        c.start_billing(SimTime::ZERO);
        c.preempt_node(SimTime::from_secs(1800.0), 0, 0, 0);
        c.stop_billing(SimTime::from_secs(3600.0));
        // Node 0: 1800 s at $0.12/h = $0.06. Node 1: 1800 s at $0.12/h +
        // 1800 s at $0.06/h = $0.09.
        let e = meter.expense(0.0);
        assert!((e.vm_dollars - 0.15).abs() < 1e-9, "{}", e.vm_dollars);
        assert_eq!(c.billed_node_seconds(), 1800.0 + 3600.0);
    }

    #[test]
    fn spot_billing_without_a_trace_matches_on_demand() {
        let (c, meter) = cluster(4);
        c.enable_spot(Vec::new());
        c.start_billing(SimTime::ZERO);
        c.stop_billing(SimTime::from_secs(3600.0));
        let e = meter.expense(0.0);
        assert!((e.vm_dollars - 0.48).abs() < 1e-9);
        assert_eq!(c.billed_node_seconds(), 4.0 * 3600.0);
    }
}
