//! Instance catalogs, serverless platform constants, and storage prices.
//!
//! The defaults follow the paper's §4 methodology: VM nodes are priced like
//! `r5.large` ($0.12/hr, the same per-unit-time expense as a 3 GB Lambda),
//! with `m5.large` as the *cheap* family and `r5b.large` as the *expensive*
//! family. A GCP-like preset backs the portability experiment (§5).

use serde::{Deserialize, Serialize};

/// A VM instance type: the unit of a traditional cluster node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Catalog name, e.g. `"r5.large"`.
    pub name: String,
    /// Price per node-hour in dollars.
    pub price_per_hour: f64,
    /// Core slots per node (concurrent components).
    pub cores: usize,
    /// Memory per node in GiB.
    pub memory_gb: f64,
    /// Relative per-core speed (1.0 = reference core; compute seconds are
    /// divided by this).
    pub core_speed: f64,
    /// Per-node NIC bandwidth in bytes/sec. Caps any single node's intake
    /// or output on the intra-cluster fabric; the fabric's aggregate scales
    /// with the node count (bisection), so inter-phase data movement is
    /// cheap on large clusters.
    pub node_nic_bps: f64,
    /// Master ingest bandwidth in bytes/sec: the initial dataset is
    /// distributed from the (sub-cluster) master to the workers
    /// (Algorithm 1 line 12), so phase-0 inputs funnel through this link
    /// regardless of cluster size.
    pub master_nic_bps: f64,
    /// WAN bandwidth to remote storage in bytes/sec (used when a VM-side
    /// task exchanges data with the object store in hybrid runs).
    pub wan_bps: f64,
}

impl InstanceType {
    /// The paper's default node: expense-matched to a 3 GB Lambda.
    pub fn r5_large() -> Self {
        InstanceType {
            name: "r5.large".into(),
            price_per_hour: 0.12,
            cores: 2,
            memory_gb: 16.0,
            core_speed: 1.0,
            node_nic_bps: 1.25e9,  // 10 Gbps
            master_nic_bps: 2.5e9, // staged ingest across two NIC queues
            wan_bps: 1.0e9,
        }
    }

    /// The paper's *cheap VM family*.
    pub fn m5_large() -> Self {
        InstanceType {
            name: "m5.large".into(),
            price_per_hour: 0.08,
            cores: 2,
            memory_gb: 8.0,
            core_speed: 0.85,
            node_nic_bps: 1.0e9,
            master_nic_bps: 2.0e9,
            wan_bps: 0.8e9,
        }
    }

    /// The paper's *expensive VM family* (more compute/memory/network
    /// capacity, §5).
    pub fn r5b_large() -> Self {
        InstanceType {
            name: "r5b.large".into(),
            price_per_hour: 0.15,
            cores: 2,
            memory_gb: 16.0,
            core_speed: 1.35,
            node_nic_bps: 2.5e9,
            master_nic_bps: 4.0e9,
            wan_bps: 1.6e9,
        }
    }
}

/// Serverless platform constants (AWS-Lambda-like by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaasConfig {
    /// Memory per function in GiB (paper: 3 GB Lambdas).
    pub memory_gb: f64,
    /// Price per function-hour in dollars (paper: $0.12/hr/function).
    pub price_per_hour: f64,
    /// Hard execution time limit in seconds (paper: 15 minutes).
    pub timeout_secs: f64,
    /// Cold-start latency range `(min, max)` seconds, sampled uniformly.
    pub cold_start_secs: (f64, f64),
    /// Warm-start latency in seconds.
    pub warm_start_secs: f64,
    /// How long a finished microVM stays warm (paper: providers keep
    /// microVMs alive 5–10 minutes).
    pub keep_alive_secs: f64,
    /// Number of functions the scheduler can start instantly (burst).
    pub burst_capacity: usize,
    /// Sustained function-start rate beyond the burst, starts/sec.
    /// This produces the linear scaling time of Fig. 4(c).
    pub ramp_per_sec: f64,
    /// Per-function bandwidth cap to remote storage, bytes/sec.
    pub per_function_bps: f64,
    /// Per-component relative per-core speed of a function (vs the reference
    /// VM core; functions typically run on weaker shared cores).
    pub core_speed: f64,
    /// Probability that an invocation is killed by a platform failure at a
    /// random point of its window (0 disables). The executor recovers from
    /// the last checkpoint — the §3 failure story.
    #[serde(default)]
    pub failure_prob: f64,
}

impl FaasConfig {
    /// AWS-Lambda-like defaults.
    pub fn aws_like() -> Self {
        FaasConfig {
            memory_gb: 3.0,
            price_per_hour: 0.12,
            timeout_secs: 900.0,
            cold_start_secs: (0.6, 2.6),
            warm_start_secs: 0.06,
            keep_alive_secs: 420.0,
            burst_capacity: 64,
            ramp_per_sec: 4.0,
            per_function_bps: 5.0e7, // 50 MB/s per function
            core_speed: 1.0,
            failure_prob: 0.0,
        }
    }

    /// GCP-Cloud-Functions-like preset (slower starts, slower ramp).
    pub fn gcp_like() -> Self {
        FaasConfig {
            memory_gb: 4.0,
            price_per_hour: 0.115,
            timeout_secs: 540.0,
            cold_start_secs: (1.2, 4.5),
            warm_start_secs: 0.1,
            keep_alive_secs: 600.0,
            burst_capacity: 40,
            ramp_per_sec: 3.0,
            per_function_bps: 4.0e7,
            core_speed: 0.95,
            failure_prob: 0.0,
        }
    }
}

/// Object-store constants (S3-like by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Aggregate data-plane bandwidth in bytes/sec.
    pub aggregate_bps: f64,
    /// Per-request latency in seconds.
    pub request_latency_secs: f64,
    /// Storage price per GiB-month in dollars.
    pub price_per_gb_month: f64,
    /// Price per PUT request in dollars.
    pub price_per_put: f64,
    /// Price per GET request in dollars.
    pub price_per_get: f64,
    /// Number of replicated copies kept for failure recovery (Mashup
    /// "maintains multiple copies of remote storage", §3).
    pub replicas: usize,
    /// Probability that a single GET attempt fails and is retried from a
    /// replica (failure injection; 0 disables).
    pub get_failure_prob: f64,
}

impl StorageConfig {
    /// S3-like defaults.
    ///
    /// The aggregate bandwidth is deliberately modest: the paper (and the
    /// authors' IISWC'21 serverless-I/O characterization it cites) observes
    /// that remote-storage bandwidth throttles stateless execution at high
    /// concurrency — the intra-cluster fabric scales with node count while
    /// the store does not, which is why I/O-heavy tasks prefer the VM
    /// cluster.
    pub fn s3_like() -> Self {
        StorageConfig {
            aggregate_bps: 2.0e9,
            request_latency_secs: 0.03,
            price_per_gb_month: 0.023,
            price_per_put: 5.0e-6,
            price_per_get: 4.0e-7,
            replicas: 2,
            get_failure_prob: 0.0,
        }
    }

    /// GCS-like preset.
    pub fn gcs_like() -> Self {
        StorageConfig {
            aggregate_bps: 5.0e9,
            request_latency_secs: 0.04,
            price_per_gb_month: 0.020,
            price_per_put: 5.0e-6,
            price_per_get: 4.0e-7,
            replicas: 2,
            get_failure_prob: 0.0,
        }
    }
}

/// A bundle of provider constants: the knobs that differ between clouds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderPreset {
    /// Provider label.
    pub name: String,
    /// Serverless platform constants.
    pub faas: FaasConfig,
    /// Object-store constants.
    pub storage: StorageConfig,
}

impl ProviderPreset {
    /// AWS-like provider (the paper's main evaluation platform).
    pub fn aws_like() -> Self {
        ProviderPreset {
            name: "aws-like".into(),
            faas: FaasConfig::aws_like(),
            storage: StorageConfig::s3_like(),
        }
    }

    /// GCP-like provider (the paper's §5 portability check).
    pub fn gcp_like() -> Self {
        ProviderPreset {
            name: "gcp-like".into(),
            faas: FaasConfig::gcp_like(),
            storage: StorageConfig::gcs_like(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_node_matches_lambda_price() {
        // §4: r5.large chosen because it costs the same per unit time as a
        // 3 GB Lambda.
        let vm = InstanceType::r5_large();
        let faas = FaasConfig::aws_like();
        assert_eq!(vm.price_per_hour, faas.price_per_hour);
        assert_eq!(faas.memory_gb, 3.0);
        assert_eq!(faas.timeout_secs, 900.0);
    }

    #[test]
    fn families_are_ordered_by_price_and_capacity() {
        let cheap = InstanceType::m5_large();
        let default = InstanceType::r5_large();
        let expensive = InstanceType::r5b_large();
        assert!(cheap.price_per_hour < default.price_per_hour);
        assert!(default.price_per_hour < expensive.price_per_hour);
        assert!(cheap.core_speed < expensive.core_speed);
        assert!(cheap.master_nic_bps < expensive.master_nic_bps);
        assert!(cheap.node_nic_bps < expensive.node_nic_bps);
    }

    #[test]
    fn gcp_preset_differs_from_aws() {
        let a = ProviderPreset::aws_like();
        let g = ProviderPreset::gcp_like();
        assert_ne!(a.faas, g.faas);
        assert_ne!(a.storage, g.storage);
        assert!(g.faas.cold_start_secs.0 > a.faas.cold_start_secs.0);
    }

    #[test]
    fn serde_round_trip() {
        let p = ProviderPreset::aws_like();
        let json = serde_json::to_string(&p).expect("serialize");
        let back: ProviderPreset = serde_json::from_str(&json).expect("parse");
        assert_eq!(p, back);
    }
}
