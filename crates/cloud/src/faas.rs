//! The serverless (FaaS) platform model.
//!
//! Mechanisms, each matching a serverless pathology the paper measures:
//!
//! * **scheduler ramp** — a token bucket (burst + sustained starts/sec)
//!   staggers function starts, producing the linear-in-components scaling
//!   time of Fig. 4(c);
//! * **cold/warm starts** — first use of a code identity pays a sampled
//!   cold-start latency (Fig. 4(b)); finished microVMs stay warm for a
//!   keep-alive window and can be reused or actively pre-warmed (the §3
//!   mitigations);
//! * **execution timeout** — every invocation has a hard deadline; an
//!   executor that fails to complete in time is killed (checkpointing in
//!   `exec` exists to avoid exactly this).

use crate::cost::CostMeter;
use crate::pricing::FaasConfig;
use mashup_sim::trace::{KillReason, TraceEvent, Tracer};
use mashup_sim::{shared, Shared};
use mashup_sim::{SeedSource, SimDuration, SimTime, Simulation};
use rand::Rng;
// Both maps are keyed lookups only (never order-iterated), so hashing
// order cannot leak into simulated results.
// lint: allow(hash-collections)
use std::collections::HashMap;

/// Callback fired when the platform kills an invocation at its deadline.
pub type KillFn = Box<dyn FnOnce(&mut Simulation) + Send>;

/// Identifier of a live invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InvocationId(u64);

impl InvocationId {
    /// The underlying numeric id (matches `FnStart { id, .. }` in traces).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Details handed to the executor when its function is ready to run.
#[derive(Debug, Clone, Copy)]
pub struct Invocation {
    /// The invocation id, needed to complete it.
    pub id: InvocationId,
    /// When the function became ready (after scheduling + start latency).
    pub ready_at: SimTime,
    /// Hard kill deadline: `ready_at + timeout`.
    pub deadline: SimTime,
    /// Whether this was a cold start.
    pub cold: bool,
    /// The start latency paid (cold or warm).
    pub start_latency: SimDuration,
}

struct ActiveInv {
    ready_at: SimTime,
    start_latency: f64,
    code_key: String,
    on_killed: Option<KillFn>,
}

struct FaasState {
    // Token bucket for function starts.
    tokens: f64,
    last_refill: SimTime,
    // Warm microVMs per code identity: expiry instants.
    warm_pool: HashMap<String, Vec<SimTime>>, // lint: allow(hash-collections)
    active: HashMap<u64, ActiveInv>,          // lint: allow(hash-collections)
    next_id: u64,
    // Metrics.
    cold_starts: u64,
    warm_starts: u64,
    kills: u64,
    peak_concurrency: usize,
    function_seconds: f64,
    tracer: Tracer,
}

/// A shareable FaaS platform. Cloning shares the same scheduler and pools.
#[derive(Clone)]
pub struct FaasPlatform {
    cfg: FaasConfig,
    meter: CostMeter,
    state: Shared<FaasState>,
    rng: Shared<rand::rngs::StdRng>,
}

impl FaasPlatform {
    /// Creates a platform with the given constants, charging `meter`.
    pub fn new(cfg: FaasConfig, meter: CostMeter, seeds: &SeedSource) -> Self {
        FaasPlatform {
            rng: shared(seeds.stream("faas")),
            state: shared(FaasState {
                tokens: cfg.burst_capacity as f64,
                last_refill: SimTime::ZERO,
                warm_pool: Default::default(),
                active: Default::default(),
                next_id: 0,
                cold_starts: 0,
                warm_starts: 0,
                kills: 0,
                peak_concurrency: 0,
                function_seconds: 0.0,
                tracer: Tracer::off(),
            }),
            cfg,
            meter,
        }
    }

    /// Attaches a flight recorder; invocation lifecycle records (start,
    /// completion, kills, pre-warming) flow through it. Reaches every clone
    /// of this platform (state is shared).
    pub fn set_tracer(&self, tracer: Tracer) {
        self.state.borrow_mut().tracer = tracer;
    }

    pub(crate) fn tracer(&self) -> Tracer {
        self.state.borrow().tracer.clone()
    }

    /// The platform constants.
    pub fn config(&self) -> &FaasConfig {
        &self.cfg
    }

    /// Cold starts observed so far.
    pub fn cold_starts(&self) -> u64 {
        self.state.borrow().cold_starts
    }

    /// Warm starts observed so far.
    pub fn warm_starts(&self) -> u64 {
        self.state.borrow().warm_starts
    }

    /// Invocations killed at the deadline.
    pub fn kills(&self) -> u64 {
        self.state.borrow().kills
    }

    /// Peak concurrent invocations.
    pub fn peak_concurrency(&self) -> usize {
        self.state.borrow().peak_concurrency
    }

    /// Billed function-seconds so far.
    pub fn function_seconds(&self) -> f64 {
        self.state.borrow().function_seconds
    }

    /// True while the invocation is live (not yet completed or killed).
    pub fn is_active(&self, id: InvocationId) -> bool {
        self.state.borrow().active.contains_key(&id.0)
    }

    /// Number of currently warm microVMs for `code_key` (expired entries
    /// are pruned lazily, so this may overcount until the next invoke).
    pub fn warm_count(&self, code_key: &str) -> usize {
        self.state
            .borrow()
            .warm_pool
            .get(code_key)
            .map_or(0, |v| v.len())
    }

    /// Consumes a scheduler token, returning the start delay from `now`.
    ///
    /// The bucket may go negative: concurrent requests accumulate *debt*
    /// that is paid down at the ramp rate, so a batch of `C` simultaneous
    /// invocations beyond the burst is staggered linearly — the Fig. 4(c)
    /// scaling-time behaviour.
    fn scheduler_delay(&self, now: SimTime) -> SimDuration {
        let mut s = self.state.borrow_mut();
        let elapsed = now.saturating_since(s.last_refill).as_secs();
        s.tokens = (s.tokens + elapsed * self.cfg.ramp_per_sec).min(self.cfg.burst_capacity as f64);
        s.last_refill = now;
        s.tokens -= 1.0;
        if s.tokens >= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(-s.tokens / self.cfg.ramp_per_sec)
        }
    }

    /// Pops a warm microVM for `code_key` valid at time `t`, if any.
    fn take_warm(&self, code_key: &str, t: SimTime) -> bool {
        let mut s = self.state.borrow_mut();
        if let Some(pool) = s.warm_pool.get_mut(code_key) {
            pool.retain(|&exp| exp > t);
            if !pool.is_empty() {
                pool.pop();
                return true;
            }
        }
        false
    }

    fn sample_cold_start(&self) -> f64 {
        let (lo, hi) = self.cfg.cold_start_secs;
        if hi <= lo {
            return lo;
        }
        lo + self.rng.borrow_mut().gen::<f64>() * (hi - lo)
    }

    /// Requests a function for `code_key`. After the scheduler delay and
    /// cold/warm start latency, `on_ready` fires with the [`Invocation`].
    /// If the executor has not completed the invocation by its deadline, the
    /// platform kills it and fires `on_killed` (when provided).
    pub fn invoke(
        &self,
        sim: &mut Simulation,
        code_key: impl Into<String>,
        on_killed: Option<KillFn>,
        on_ready: impl FnOnce(&mut Simulation, Invocation) + Send + 'static,
    ) {
        let code_key = code_key.into();
        let sched_delay = self.scheduler_delay(sim.now());
        let platform = self.clone();
        sim.schedule_in(sched_delay, move |sim| {
            let warm = platform.take_warm(&code_key, sim.now());
            let (latency, cold) = if warm {
                (platform.cfg.warm_start_secs, false)
            } else {
                (platform.sample_cold_start(), true)
            };
            let ready_at = sim.now() + SimDuration::from_secs(latency);
            let id = {
                let mut s = platform.state.borrow_mut();
                if cold {
                    s.cold_starts += 1;
                } else {
                    s.warm_starts += 1;
                }
                let id = s.next_id;
                s.next_id += 1;
                s.active.insert(
                    id,
                    ActiveInv {
                        ready_at,
                        start_latency: latency,
                        code_key: code_key.clone(),
                        on_killed,
                    },
                );
                s.peak_concurrency = s.peak_concurrency.max(s.active.len());
                id
            };
            let deadline = ready_at + SimDuration::from_secs(platform.cfg.timeout_secs);
            let inv = Invocation {
                id: InvocationId(id),
                ready_at,
                deadline,
                cold,
                start_latency: SimDuration::from_secs(latency),
            };
            // Build the event only when recording: the code-key clone is
            // per-invocation heap churn at million-task scale.
            if platform.tracer().is_on() {
                platform.tracer().emit(
                    sim.now(),
                    TraceEvent::FnStart {
                        id,
                        code: code_key.clone(),
                        cold,
                        latency_secs: latency,
                        ready_secs: ready_at.as_secs(),
                        deadline_secs: deadline.as_secs(),
                    },
                );
            }
            // Watchdog enforcing the execution time cap.
            let p2 = platform.clone();
            sim.schedule_at(deadline, move |sim| {
                p2.kill_invocation(sim, id, KillReason::Watchdog)
            });
            // Transient platform failures (§3): the microVM dies at a
            // random point of its window; the executor recovers from the
            // last checkpoint.
            if platform.cfg.failure_prob > 0.0
                && platform.rng.borrow_mut().gen::<f64>() < platform.cfg.failure_prob
            {
                let frac: f64 = platform.rng.borrow_mut().gen();
                let kill_at = ready_at + SimDuration::from_secs(platform.cfg.timeout_secs * frac);
                let p3 = platform.clone();
                sim.schedule_at(kill_at, move |sim| {
                    p3.kill_invocation(sim, id, KillReason::Injected)
                });
            }
            sim.schedule_at(ready_at, move |sim| on_ready(sim, inv));
        });
    }

    /// Kills a live invocation (deadline watchdog or injected failure):
    /// bills the elapsed window, never rewarms, and fires `on_killed`.
    fn kill_invocation(&self, sim: &mut Simulation, id: u64, reason: KillReason) {
        let killed = {
            let mut s = self.state.borrow_mut();
            s.active.remove(&id)
        };
        if let Some(inv) = killed {
            let billed = inv.start_latency + sim.now().saturating_since(inv.ready_at).as_secs();
            {
                let mut s = self.state.borrow_mut();
                s.kills += 1;
                s.function_seconds += billed;
            }
            self.meter.charge_faas(billed, self.cfg.price_per_hour);
            self.tracer().emit(
                sim.now(),
                TraceEvent::FnKill {
                    id,
                    reason,
                    billed_secs: billed,
                },
            );
            if let Some(cb) = inv.on_killed {
                cb(sim);
            }
        }
    }

    /// Completes an invocation: bills its duration (plus start latency) and
    /// returns the microVM to the warm pool for the keep-alive window.
    ///
    /// Returns `false` when the invocation had already been killed by the
    /// deadline watchdog (e.g. a storage transfer stretched past the cap
    /// under contention) — the caller's work did **not** persist and must
    /// be redone in a fresh invocation.
    #[must_use = "a false return means the invocation was killed and its work was lost"]
    pub fn complete(&self, sim: &mut Simulation, id: InvocationId) -> bool {
        let now = sim.now();
        let inv = {
            let mut s = self.state.borrow_mut();
            s.active.remove(&id.0)
        };
        let Some(inv) = inv else {
            return false; // killed at the deadline before completion
        };
        debug_assert!(
            now <= inv.ready_at
                + SimDuration::from_secs(self.cfg.timeout_secs)
                + SimDuration::from_secs(1e-9),
            "watchdog should have fired before a post-deadline completion"
        );
        let billed = inv.start_latency + now.saturating_since(inv.ready_at).as_secs();
        {
            let mut s = self.state.borrow_mut();
            s.function_seconds += billed;
            let expiry = now + SimDuration::from_secs(self.cfg.keep_alive_secs);
            s.warm_pool.entry(inv.code_key).or_default().push(expiry);
        }
        self.meter.charge_faas(billed, self.cfg.price_per_hour);
        self.tracer().emit(
            now,
            TraceEvent::FnEnd {
                id: id.0,
                billed_secs: billed,
            },
        );
        true
    }

    /// Actively pre-warms `count` microVMs for `code_key` (§3: Mashup
    /// "actively pre-warms the task by prefetching"). Provisioning happens
    /// on the platform's background path (provisioned-concurrency style),
    /// staggered at the ramp rate but *not* consuming the foreground
    /// scheduler's tokens — pre-warming must not starve the live phase.
    /// Each microVM pays a cold start, billed as function time, then sits
    /// in the warm pool.
    pub fn prewarm(&self, sim: &mut Simulation, code_key: impl Into<String>, count: usize) {
        let code_key = code_key.into();
        for i in 0..count {
            let sched_delay = SimDuration::from_secs(i as f64 / self.cfg.ramp_per_sec);
            let platform = self.clone();
            let key = code_key.clone();
            sim.schedule_in(sched_delay, move |sim| {
                let latency = platform.sample_cold_start();
                let warm_at = sim.now() + SimDuration::from_secs(latency);
                platform
                    .meter
                    .charge_faas(latency, platform.cfg.price_per_hour);
                {
                    let mut s = platform.state.borrow_mut();
                    s.function_seconds += latency;
                    s.cold_starts += 1;
                }
                if platform.tracer().is_on() {
                    platform.tracer().emit(
                        sim.now(),
                        TraceEvent::FnPrewarm {
                            code: key.clone(),
                            latency_secs: latency,
                            warm_secs: warm_at.as_secs(),
                            expires_secs: warm_at.as_secs() + platform.cfg.keep_alive_secs,
                        },
                    );
                }
                let p2 = platform.clone();
                sim.schedule_at(warm_at, move |sim| {
                    let expiry = sim.now() + SimDuration::from_secs(p2.cfg.keep_alive_secs);
                    p2.state
                        .borrow_mut()
                        .warm_pool
                        .entry(key)
                        .or_default()
                        .push(expiry);
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(cfg: FaasConfig) -> FaasPlatform {
        FaasPlatform::new(cfg, CostMeter::new(), &SeedSource::new(3))
    }

    fn fixed_cfg() -> FaasConfig {
        let mut cfg = FaasConfig::aws_like();
        cfg.cold_start_secs = (1.0, 1.0); // deterministic
        cfg.warm_start_secs = 0.1;
        cfg.burst_capacity = 2;
        cfg.ramp_per_sec = 1.0;
        cfg
    }

    #[test]
    fn burst_then_linear_ramp() {
        let mut cfg = fixed_cfg();
        cfg.keep_alive_secs = 0.0; // force every start cold for exact timing
        let p = platform(cfg);
        let mut sim = Simulation::new();
        let readies = shared(Vec::new());
        for _ in 0..5 {
            let r = readies.clone();
            let p2 = p.clone();
            sim.schedule_now(move |sim| {
                let p3 = p2.clone();
                p2.invoke(sim, "task", None, move |sim, inv| {
                    r.borrow_mut().push(inv.ready_at.as_secs());
                    sim.schedule_now(move |sim| assert!(p3.complete(sim, inv.id)));
                });
            });
        }
        sim.run();
        let r = readies.borrow();
        // Two burst tokens start immediately (cold start 1 s), the rest are
        // staggered at 1/s: scheduler starts at 0,0,1,2,3 -> ready 1,1,2,3,4.
        assert_eq!(r.len(), 5);
        let mut sorted = r.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert!((sorted[0] - 1.0).abs() < 1e-9);
        assert!((sorted[1] - 1.0).abs() < 1e-9);
        assert!((sorted[4] - 4.0).abs() < 1e-9);
        // Scaling time (last - first start) grows linearly with count.
        assert!((sorted[4] - sorted[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn warm_reuse_skips_cold_start() {
        let p = platform(fixed_cfg());
        let mut sim = Simulation::new();
        let p2 = p.clone();
        let second_cold = shared(true);
        let sc = second_cold.clone();
        sim.schedule_now(move |sim| {
            let p3 = p2.clone();
            p2.invoke(sim, "task", None, move |sim, inv| {
                assert!(p3.complete(sim, inv.id));
                let p4 = p3.clone();
                let sc = sc.clone();
                // Re-invoke within the keep-alive window.
                sim.schedule_in(SimDuration::from_secs(10.0), move |sim| {
                    p4.invoke(sim, "task", None, move |_, inv2| {
                        sc.set(inv2.cold);
                    });
                });
            });
        });
        sim.run_until(Some(SimTime::from_secs(50.0)));
        assert!(!second_cold.get(), "second invocation should be warm");
        assert_eq!(p.cold_starts(), 1);
        assert_eq!(p.warm_starts(), 1);
    }

    #[test]
    fn warm_entries_expire() {
        let mut cfg = fixed_cfg();
        cfg.keep_alive_secs = 5.0;
        let p = platform(cfg);
        let mut sim = Simulation::new();
        let p2 = p.clone();
        let second_cold = shared(false);
        let sc = second_cold.clone();
        sim.schedule_now(move |sim| {
            let p3 = p2.clone();
            p2.invoke(sim, "task", None, move |sim, inv| {
                assert!(p3.complete(sim, inv.id));
                let p4 = p3.clone();
                let sc = sc.clone();
                sim.schedule_in(SimDuration::from_secs(60.0), move |sim| {
                    p4.invoke(sim, "task", None, move |_, inv2| sc.set(inv2.cold));
                });
            });
        });
        sim.run_until(Some(SimTime::from_secs(200.0)));
        assert!(second_cold.get(), "expired warm entry must cold start");
    }

    #[test]
    fn different_code_keys_do_not_share_warm_pool() {
        let p = platform(fixed_cfg());
        let mut sim = Simulation::new();
        let p2 = p.clone();
        let other_cold = shared(false);
        let oc = other_cold.clone();
        sim.schedule_now(move |sim| {
            let p3 = p2.clone();
            p2.invoke(sim, "A", None, move |sim, inv| {
                assert!(p3.complete(sim, inv.id));
                let p4 = p3.clone();
                let oc = oc.clone();
                sim.schedule_in(SimDuration::from_secs(1.0), move |sim| {
                    p4.invoke(sim, "B", None, move |_, inv2| oc.set(inv2.cold));
                });
            });
        });
        sim.run_until(Some(SimTime::from_secs(100.0)));
        assert!(other_cold.get());
    }

    #[test]
    fn deadline_kills_overrunning_invocation() {
        let mut cfg = fixed_cfg();
        cfg.timeout_secs = 10.0;
        let p = platform(cfg);
        let mut sim = Simulation::new();
        let killed = shared(false);
        let k2 = killed.clone();
        let p2 = p.clone();
        sim.schedule_now(move |sim| {
            p2.invoke(
                sim,
                "slow",
                Some(Box::new(move |_| k2.set(true))),
                move |_, _inv| {
                    // Executor "hangs": never completes.
                },
            );
        });
        sim.run();
        assert!(killed.get());
        assert_eq!(p.kills(), 1);
        // Billed the full window: 1 s cold + 10 s timeout.
        assert!((p.function_seconds() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn prewarm_fills_pool_and_bills() {
        let p = platform(fixed_cfg());
        let mut sim = Simulation::new();
        let p2 = p.clone();
        sim.schedule_now(move |sim| p2.prewarm(sim, "task", 2));
        sim.run_until(Some(SimTime::from_secs(5.0)));
        assert_eq!(p.warm_count("task"), 2);
        assert!((p.function_seconds() - 2.0).abs() < 1e-9);
        // A subsequent invoke is warm.
        let p3 = p.clone();
        let cold = shared(true);
        let c2 = cold.clone();
        sim.schedule_now(move |sim| {
            p3.invoke(sim, "task", None, move |_, inv| c2.set(inv.cold));
        });
        sim.run_until(Some(SimTime::from_secs(10.0)));
        assert!(!cold.get());
    }

    #[test]
    fn completion_bills_duration_plus_start() {
        let p = platform(fixed_cfg());
        let mut sim = Simulation::new();
        let p2 = p.clone();
        sim.schedule_now(move |sim| {
            let p3 = p2.clone();
            p2.invoke(sim, "t", None, move |sim, inv| {
                sim.schedule_in(SimDuration::from_secs(9.0), move |sim| {
                    assert!(p3.complete(sim, inv.id));
                });
            });
        });
        sim.run();
        // 1 s cold start + 9 s run.
        assert!((p.function_seconds() - 10.0).abs() < 1e-9);
        assert_eq!(p.kills(), 0);
    }
}
