//! The remote object store (S3-like).
//!
//! Hybrid execution exchanges all cross-platform data through this store
//! (paper §3: "the only way serverless functions can share data among
//! multiple phases is to communicate via external remote storage").
//!
//! Timing and correctness are handled at two levels:
//!
//! * **byte flows** — [`ObjectStore::read`]/[`ObjectStore::write`] move
//!   bytes over a max-min fair-share data-plane link with per-request
//!   latency and optional per-flow caps (a Lambda's NIC, a cluster's WAN),
//!   so aggregate-bandwidth contention between hundreds of concurrent
//!   functions emerges naturally;
//! * **keyed objects** — executors register logical objects
//!   ([`ObjectStore::register_object`]) so occupancy cost is metered and
//!   consumers can assert their producers' data exists
//!   ([`ObjectStore::assert_present`]), catching scheduling bugs.
//!
//! GET failure injection exercises the replica-recovery path: a failed
//! attempt retries from a replica after an extra round trip.

use crate::cost::CostMeter;
use crate::fault::StoreFault;
use crate::pricing::StorageConfig;
use mashup_sim::trace::{TraceEvent, Tracer};
use mashup_sim::{shared, Shared};
use mashup_sim::{SeedSource, SharedLink, SimDuration, SimTime, Simulation};
use rand::Rng;
use std::collections::BTreeMap;

/// Chaos fault machinery: active windows plus a dedicated RNG stream, so
/// injected error draws never perturb the store's native failure stream.
struct StoreChaos {
    active: BTreeMap<u64, StoreFault>,
    rng: rand::rngs::StdRng,
}

struct StoreState {
    objects: BTreeMap<String, (f64, SimTime)>, // bytes, put time (ordered for deterministic settlement)
    bytes_stored: f64,
    peak_bytes: f64,
    reads: u64,
    writes: u64,
    injected_failures: u64,
    tracer: Tracer,
    chaos: Option<StoreChaos>,
}

/// A shareable S3-like object store. Cloning shares the same store.
#[derive(Clone)]
pub struct ObjectStore {
    cfg: StorageConfig,
    link: SharedLink,
    meter: CostMeter,
    state: Shared<StoreState>,
    rng: Shared<rand::rngs::StdRng>,
}

impl ObjectStore {
    /// Creates a store with the given configuration, charging `meter`.
    pub fn new(cfg: StorageConfig, meter: CostMeter, seeds: &SeedSource) -> Self {
        ObjectStore {
            link: SharedLink::new("object-store", cfg.aggregate_bps),
            rng: shared(seeds.stream("object-store")),
            cfg,
            meter,
            state: shared(StoreState {
                objects: BTreeMap::new(),
                bytes_stored: 0.0,
                peak_bytes: 0.0,
                reads: 0,
                writes: 0,
                injected_failures: 0,
                tracer: Tracer::off(),
                chaos: None,
            }),
        }
    }

    /// Arms the chaos machinery with its own RNG stream derived from a
    /// fault-plan seed. Idempotent; without this call (the default) the
    /// chaos path costs one shared-state read per operation and changes
    /// nothing.
    pub fn enable_chaos(&self, seed: u64) {
        let mut s = self.state.borrow_mut();
        if s.chaos.is_none() {
            s.chaos = Some(StoreChaos {
                active: BTreeMap::new(),
                rng: SeedSource::new(seed).stream("chaos-store"),
            });
        }
    }

    /// Activates an injected fault window (requires [`enable_chaos`]
    /// first). Emits a `FaultInjected` record so retries can chain to it.
    ///
    /// [`enable_chaos`]: ObjectStore::enable_chaos
    pub fn apply_fault(&self, now: SimTime, id: u64, fault: StoreFault, until_secs: f64) {
        let mut s = self.state.borrow_mut();
        s.chaos
            .as_mut()
            .expect("enable_chaos before apply_fault")
            .active
            .insert(id, fault);
        s.tracer.emit(
            now,
            TraceEvent::FaultInjected {
                id,
                kind: fault.kind().into(),
                until_secs,
                magnitude: fault.magnitude(),
            },
        );
    }

    /// Deactivates an injected fault window.
    pub fn clear_fault(&self, _now: SimTime, id: u64) {
        if let Some(chaos) = self.state.borrow_mut().chaos.as_mut() {
            chaos.active.remove(&id);
        }
    }

    /// Snapshot of the active chaos windows (empty when chaos is off).
    fn active_faults(&self) -> Vec<(u64, StoreFault)> {
        let s = self.state.borrow();
        s.chaos.as_ref().map_or_else(Vec::new, |c| {
            c.active.iter().map(|(k, v)| (*k, *v)).collect()
        })
    }

    /// One draw from the chaos RNG stream.
    fn chaos_draw(&self) -> f64 {
        self.state
            .borrow_mut()
            .chaos
            .as_mut()
            .expect("chaos active")
            .rng
            .gen::<f64>()
    }

    /// Attaches a flight recorder; GET/PUT request batches and logical object
    /// lifecycle flow through it (the data-plane link picks it up too).
    /// Reaches every clone of this store (state is shared).
    pub fn set_tracer(&self, tracer: Tracer) {
        self.link.set_tracer(tracer.clone());
        self.state.borrow_mut().tracer = tracer;
    }

    fn tracer(&self) -> Tracer {
        self.state.borrow().tracer.clone()
    }

    /// The store configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.cfg
    }

    /// The data-plane link (exposed for utilization traces).
    pub fn link(&self) -> &SharedLink {
        &self.link
    }

    /// Reads `bytes` spread over `requests` GET requests, under an optional
    /// per-flow bandwidth cap. `on_done` receives the wall time of the read.
    ///
    /// With failure injection enabled, a failed first attempt retries from a
    /// replica after an extra request round trip.
    pub fn read(
        &self,
        sim: &mut Simulation,
        bytes: f64,
        requests: u64,
        per_flow_cap: Option<f64>,
        on_done: impl FnOnce(&mut Simulation, SimDuration) + Send + 'static,
    ) {
        let begin = sim.now();
        {
            let mut s = self.state.borrow_mut();
            s.reads += requests;
        }
        self.meter
            .charge_storage_requests(requests, self.cfg.price_per_get);
        let mut latency = self.cfg.request_latency_secs;
        let mut retried = false;
        if self.cfg.get_failure_prob > 0.0 {
            let failed = self.rng.borrow_mut().gen::<f64>() < self.cfg.get_failure_prob;
            if failed {
                // One failed round trip, then the replica answers.
                self.state.borrow_mut().injected_failures += 1;
                self.meter
                    .charge_storage_requests(requests, self.cfg.price_per_get);
                latency += 2.0 * self.cfg.request_latency_secs;
                retried = true;
            }
        }
        // Injected chaos windows: latency spikes stack, degradation caps
        // the flow, and at most one error window triggers the same
        // replica-retry path as native failure injection (re-billed, so
        // the cost oracle's retried-GET doubling stays exact).
        let mut cap = per_flow_cap;
        let mut chaos_retry = None;
        for (id, f) in self.active_faults() {
            match f {
                StoreFault::Error { prob } => {
                    if chaos_retry.is_none() && !retried && self.chaos_draw() < prob {
                        chaos_retry = Some(id);
                    }
                }
                StoreFault::Latency { extra_secs } => latency += extra_secs,
                StoreFault::Degrade { factor } => {
                    let degraded = self.cfg.aggregate_bps * factor;
                    cap = Some(cap.map_or(degraded, |c| c.min(degraded)));
                }
            }
        }
        if let Some(id) = chaos_retry {
            self.state.borrow_mut().injected_failures += 1;
            self.meter
                .charge_storage_requests(requests, self.cfg.price_per_get);
            latency += 2.0 * self.cfg.request_latency_secs;
            retried = true;
            self.tracer().emit(
                begin,
                TraceEvent::FaultRetry {
                    id,
                    op: "get".into(),
                },
            );
        }
        self.tracer().emit(
            begin,
            TraceEvent::StoreGet {
                bytes,
                requests,
                retried,
            },
        );
        let link = self.link.clone();
        sim.schedule_in(SimDuration::from_secs(latency), move |sim| {
            link.start_transfer(sim, bytes, cap, move |sim| {
                on_done(sim, sim.now().since(begin));
            });
        });
    }

    /// Writes `bytes` spread over `requests` PUT requests, under an optional
    /// per-flow cap. Requests are charged for every replica.
    pub fn write(
        &self,
        sim: &mut Simulation,
        bytes: f64,
        requests: u64,
        per_flow_cap: Option<f64>,
        on_done: impl FnOnce(&mut Simulation, SimDuration) + Send + 'static,
    ) {
        let begin = sim.now();
        {
            let mut s = self.state.borrow_mut();
            s.writes += requests;
        }
        self.meter
            .charge_storage_requests(requests * self.cfg.replicas as u64, self.cfg.price_per_put);
        // Injected chaos windows. A failed PUT is retried against the same
        // replica set after an extra round trip; providers do not bill the
        // failed attempt, so only latency is added here.
        let mut latency = self.cfg.request_latency_secs;
        let mut cap = per_flow_cap;
        let mut chaos_retry = None;
        for (id, f) in self.active_faults() {
            match f {
                StoreFault::Error { prob } => {
                    if chaos_retry.is_none() && self.chaos_draw() < prob {
                        chaos_retry = Some(id);
                    }
                }
                StoreFault::Latency { extra_secs } => latency += extra_secs,
                StoreFault::Degrade { factor } => {
                    let degraded = self.cfg.aggregate_bps * factor;
                    cap = Some(cap.map_or(degraded, |c| c.min(degraded)));
                }
            }
        }
        if let Some(id) = chaos_retry {
            self.state.borrow_mut().injected_failures += 1;
            latency += 2.0 * self.cfg.request_latency_secs;
            self.tracer().emit(
                begin,
                TraceEvent::FaultRetry {
                    id,
                    op: "put".into(),
                },
            );
        }
        self.tracer().emit(
            begin,
            TraceEvent::StorePut {
                bytes,
                requests,
                replicas: self.cfg.replicas as u64,
            },
        );
        let link = self.link.clone();
        let latency = SimDuration::from_secs(latency);
        sim.schedule_in(latency, move |sim| {
            link.start_transfer(sim, bytes, cap, move |sim| {
                on_done(sim, sim.now().since(begin));
            });
        });
    }

    /// Registers a logical object for occupancy accounting and presence
    /// checks. Overwriting an existing key first settles its occupancy.
    pub fn register_object(&self, now: SimTime, key: impl Into<String>, bytes: f64) {
        let key = key.into();
        let mut s = self.state.borrow_mut();
        if let Some((old_bytes, put_at)) = s.objects.remove(&key) {
            s.bytes_stored -= old_bytes;
            let held = now.saturating_since(put_at).as_secs();
            self.meter
                .charge_storage_occupancy(old_bytes * self.cfg.replicas as f64, held);
        }
        s.bytes_stored += bytes;
        s.peak_bytes = s.peak_bytes.max(s.bytes_stored);
        s.tracer.emit(
            now,
            TraceEvent::ObjectPut {
                key: key.clone(),
                bytes,
            },
        );
        s.objects.insert(key, (bytes, now));
    }

    /// Removes a logical object, settling its occupancy charge.
    pub fn remove_object(&self, now: SimTime, key: &str) {
        let mut s = self.state.borrow_mut();
        if let Some((bytes, put_at)) = s.objects.remove(key) {
            s.bytes_stored -= bytes;
            let held = now.saturating_since(put_at).as_secs();
            self.meter
                .charge_storage_occupancy(bytes * self.cfg.replicas as f64, held);
            s.tracer.emit(
                now,
                TraceEvent::ObjectRemove {
                    key: key.to_string(),
                },
            );
        }
    }

    /// Panics unless `key` was registered — consumers call this to assert
    /// their producers' outputs exist (a scheduling-order sanity check).
    pub fn assert_present(&self, key: &str) {
        assert!(
            self.state.borrow().objects.contains_key(key),
            "object '{key}' read before it was written: executor scheduling bug"
        );
    }

    /// True if the logical object exists.
    pub fn contains(&self, key: &str) -> bool {
        self.state.borrow().objects.contains_key(key)
    }

    /// Settles occupancy charges for everything still stored, as of `now`.
    /// Call once at the end of a run.
    pub fn finalize(&self, now: SimTime) {
        let keys: Vec<String> = self.state.borrow().objects.keys().cloned().collect();
        for k in keys {
            self.remove_object(now, &k);
        }
    }

    /// Bytes currently registered.
    pub fn bytes_stored(&self) -> f64 {
        self.state.borrow().bytes_stored
    }

    /// Peak registered bytes.
    pub fn peak_bytes(&self) -> f64 {
        self.state.borrow().peak_bytes
    }

    /// GET requests issued.
    pub fn read_requests(&self) -> u64 {
        self.state.borrow().reads
    }

    /// PUT requests issued.
    pub fn write_requests(&self) -> u64 {
        self.state.borrow().writes
    }

    /// Number of injected GET failures recovered from replicas.
    pub fn injected_failures(&self) -> u64 {
        self.state.borrow().injected_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cfg: StorageConfig) -> (ObjectStore, CostMeter) {
        let meter = CostMeter::new();
        let s = ObjectStore::new(cfg, meter.clone(), &SeedSource::new(1));
        (s, meter)
    }

    #[test]
    fn read_takes_latency_plus_transfer() {
        let mut cfg = StorageConfig::s3_like();
        cfg.aggregate_bps = 100.0;
        cfg.request_latency_secs = 1.0;
        let (s, _) = store(cfg);
        let mut sim = Simulation::new();
        let done_at = shared(0.0);
        let d2 = done_at.clone();
        let s2 = s.clone();
        sim.schedule_now(move |sim| {
            s2.read(sim, 1000.0, 1, None, move |sim, dur| {
                d2.set(sim.now().as_secs());
                assert!((dur.as_secs() - 11.0).abs() < 1e-9);
            });
        });
        sim.run();
        assert!((done_at.get() - 11.0).abs() < 1e-9);
        assert_eq!(s.read_requests(), 1);
    }

    #[test]
    fn per_flow_cap_applies() {
        let mut cfg = StorageConfig::s3_like();
        cfg.aggregate_bps = 1e9;
        cfg.request_latency_secs = 0.0;
        let (s, _) = store(cfg);
        let mut sim = Simulation::new();
        let s2 = s.clone();
        let end = shared(0.0);
        let e2 = end.clone();
        sim.schedule_now(move |sim| {
            s2.write(sim, 1000.0, 1, Some(10.0), move |sim, _| {
                e2.set(sim.now().as_secs())
            });
        });
        sim.run();
        assert!((end.get() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_reads_share_aggregate_bandwidth() {
        let mut cfg = StorageConfig::s3_like();
        cfg.aggregate_bps = 100.0;
        cfg.request_latency_secs = 0.0;
        let (s, _) = store(cfg);
        let mut sim = Simulation::new();
        let done = shared(0u32);
        for _ in 0..2 {
            let s2 = s.clone();
            let d = done.clone();
            sim.schedule_now(move |sim| {
                s2.read(sim, 500.0, 1, None, move |sim, _| {
                    assert!((sim.now().as_secs() - 10.0).abs() < 1e-9);
                    d.set(d.get() + 1);
                });
            });
        }
        sim.run();
        assert_eq!(done.get(), 2);
    }

    #[test]
    fn occupancy_charged_on_remove_and_finalize() {
        let mut cfg = StorageConfig::s3_like();
        cfg.replicas = 2;
        let (s, meter) = store(cfg.clone());
        s.register_object(SimTime::ZERO, "a", 1e9);
        s.register_object(SimTime::ZERO, "b", 1e9);
        assert_eq!(s.bytes_stored(), 2e9);
        s.remove_object(SimTime::from_secs(3600.0), "a");
        assert_eq!(s.bytes_stored(), 1e9);
        s.finalize(SimTime::from_secs(3600.0));
        assert_eq!(s.bytes_stored(), 0.0);
        // 2 objects * 1 GB * 1 h * 2 replicas.
        let month = 30.0 * 24.0 * 3600.0;
        let expect = 2.0 * 2.0 * 3600.0 / month * cfg.price_per_gb_month;
        let e = meter.expense(cfg.price_per_gb_month);
        assert!((e.storage_dollars - expect).abs() < 1e-9, "{e:?}");
        assert_eq!(s.peak_bytes(), 2e9);
    }

    #[test]
    fn overwrite_settles_old_occupancy() {
        let (s, _) = store(StorageConfig::s3_like());
        s.register_object(SimTime::ZERO, "k", 100.0);
        s.register_object(SimTime::from_secs(10.0), "k", 300.0);
        assert_eq!(s.bytes_stored(), 300.0);
    }

    #[test]
    #[should_panic(expected = "scheduling bug")]
    fn assert_present_catches_missing_objects() {
        let (s, _) = store(StorageConfig::s3_like());
        s.assert_present("nope");
    }

    #[test]
    fn failure_injection_triggers_retries() {
        let mut cfg = StorageConfig::s3_like();
        cfg.get_failure_prob = 1.0;
        cfg.request_latency_secs = 1.0;
        cfg.aggregate_bps = 1e9;
        let (s, _) = store(cfg);
        let mut sim = Simulation::new();
        let s2 = s.clone();
        let end = shared(0.0);
        let e2 = end.clone();
        sim.schedule_now(move |sim| {
            s2.read(sim, 0.0, 1, None, move |sim, _| e2.set(sim.now().as_secs()));
        });
        sim.run();
        // 1 s base latency + 2 s failure round trip.
        assert!((end.get() - 3.0).abs() < 1e-9);
        assert_eq!(s.injected_failures(), 1);
        // Both the failed and the replica GET are charged.
        assert_eq!(s.read_requests(), 1);
    }

    #[test]
    fn chaos_error_window_retries_gets_from_a_replica() {
        let mut cfg = StorageConfig::s3_like();
        cfg.request_latency_secs = 1.0;
        cfg.aggregate_bps = 1e9;
        let (s, _) = store(cfg);
        s.enable_chaos(7);
        s.apply_fault(SimTime::ZERO, 0, StoreFault::Error { prob: 1.0 }, 100.0);
        let mut sim = Simulation::new();
        let s2 = s.clone();
        let end = shared(0.0);
        let e2 = end.clone();
        sim.schedule_now(move |sim| {
            s2.read(sim, 0.0, 1, None, move |sim, _| e2.set(sim.now().as_secs()));
        });
        sim.run();
        assert!((end.get() - 3.0).abs() < 1e-9);
        assert_eq!(s.injected_failures(), 1);
        // Cleared windows stop firing.
        s.clear_fault(SimTime::from_secs(3.0), 0);
        let mut sim = Simulation::new();
        let s2 = s.clone();
        let end2 = shared(0.0);
        let e2 = end2.clone();
        sim.schedule_now(move |sim| {
            s2.read(sim, 0.0, 1, None, move |sim, _| e2.set(sim.now().as_secs()));
        });
        sim.run();
        assert!((end2.get() - 1.0).abs() < 1e-9);
        assert_eq!(s.injected_failures(), 1);
    }

    #[test]
    fn chaos_latency_and_degrade_windows_slow_operations() {
        let mut cfg = StorageConfig::s3_like();
        cfg.request_latency_secs = 1.0;
        cfg.aggregate_bps = 100.0;
        let (s, _) = store(cfg);
        s.enable_chaos(7);
        s.apply_fault(
            SimTime::ZERO,
            0,
            StoreFault::Latency { extra_secs: 2.0 },
            100.0,
        );
        s.apply_fault(SimTime::ZERO, 1, StoreFault::Degrade { factor: 0.5 }, 100.0);
        let mut sim = Simulation::new();
        let s2 = s.clone();
        let end = shared(0.0);
        let e2 = end.clone();
        sim.schedule_now(move |sim| {
            s2.write(sim, 100.0, 1, None, move |sim, _| {
                e2.set(sim.now().as_secs())
            });
        });
        sim.run();
        // 1 s base + 2 s spike, then 100 bytes at the degraded 50 B/s.
        assert!((end.get() - 5.0).abs() < 1e-9, "{}", end.get());
    }
}
