//! Running a whole task (all components) on the serverless platform.
//!
//! Each component becomes a chain of one or more function invocations:
//! read input from the object store, compute, and either write the output
//! (done) or — when the remaining compute would cross the platform's
//! execution time cap — checkpoint the state to the store a configurable
//! margin before the deadline and resume in a fresh invocation (paper §3:
//! "checkpointing is performed 30 seconds before the time limit is
//! reached... the next set of serverless functions that start the task from
//! its stored state is spawned").

use crate::faas::FaasPlatform;
use crate::storage::ObjectStore;
use mashup_sim::trace::TraceEvent;
use mashup_sim::{jitter_factor, SeedSource, SimDuration, SimTime, Simulation};
use mashup_sim::{shared, Shared};
use serde::{Deserialize, Serialize};

/// Completion callback fired once the last component chain finishes.
type FaasDoneFn = Box<dyn FnOnce(&mut Simulation, FaasRunStats) + Send>;

/// Work description for running one task's components on FaaS.
#[derive(Debug, Clone)]
pub struct FaasTaskSpec {
    /// Code identity: invocations of the same label share a warm pool.
    pub label: String,
    /// Number of components (one function chain each).
    pub components: usize,
    /// Per-component compute seconds *inside a serverless function* on a
    /// reference core (already including any VM-vs-serverless slowdown).
    pub compute_secs: f64,
    /// Per-component input bytes read from the store.
    pub input_bytes: f64,
    /// Per-component output bytes written to the store.
    pub output_bytes: f64,
    /// GET/PUT requests per component per direction.
    pub io_requests: u64,
    /// Checkpoint state size in bytes (written at the cap, read on resume).
    pub checkpoint_bytes: f64,
    /// Relative runtime jitter.
    pub jitter: f64,
    /// Per-component memory footprint in GiB; must fit the platform cap.
    pub memory_gb: f64,
    /// Seconds before the deadline at which a checkpoint is taken.
    pub checkpoint_margin_secs: f64,
}

impl FaasTaskSpec {
    /// A minimal spec with the given label, component count, and compute.
    pub fn new(label: impl Into<String>, components: usize, compute_secs: f64) -> Self {
        FaasTaskSpec {
            label: label.into(),
            components,
            compute_secs,
            input_bytes: 0.0,
            output_bytes: 0.0,
            io_requests: 1,
            checkpoint_bytes: 0.0,
            jitter: 0.0,
            memory_gb: 0.5,
            checkpoint_margin_secs: 30.0,
        }
    }
}

/// Timing and overhead summary of one task run on FaaS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaasRunStats {
    /// Submission instant.
    pub start: SimTime,
    /// Completion of the last component.
    pub end: SimTime,
    /// First function-ready instant.
    pub first_fn_start: SimTime,
    /// Last function-ready instant (first segments only, matching the
    /// paper's definition of scaling time over a task's components).
    pub last_fn_start: SimTime,
    /// Total cold-start latency paid, seconds.
    pub cold_start_secs: f64,
    /// Cold starts.
    pub n_cold: u64,
    /// Warm starts.
    pub n_warm: u64,
    /// Sum of per-component I/O wall time, seconds.
    pub io_secs: f64,
    /// Sum of per-component compute wall time, seconds.
    pub compute_secs: f64,
    /// Checkpoint/restart cycles taken.
    pub checkpoints: u64,
    /// Bytes read from the store.
    pub bytes_read: f64,
    /// Bytes written to the store.
    pub bytes_written: f64,
}

impl FaasRunStats {
    /// Wall-clock makespan of the task.
    pub fn makespan(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Scaling time: spread between the first and last function start of
    /// the task's components (paper §3 definition, Fig. 4(c)).
    pub fn scaling_secs(&self) -> f64 {
        self.last_fn_start
            .saturating_since(self.first_fn_start)
            .as_secs()
    }
}

struct Accum {
    remaining: usize,
    first_start_seen: bool,
    stats: FaasRunStats,
    done: Option<FaasDoneFn>,
}

#[derive(Clone)]
struct Ctx {
    platform: FaasPlatform,
    store: ObjectStore,
    spec: std::sync::Arc<FaasTaskSpec>,
    accum: Shared<Accum>,
}

/// Runs all components of `spec` on the platform, exchanging data through
/// the store, invoking `on_done` with aggregate stats when the last
/// component's chain finishes.
///
/// Panics if a component's memory footprint exceeds the platform cap or if
/// a component cannot make forward progress inside one timeout window
/// (input read longer than the usable window) — both indicate a placement
/// bug the PDC is supposed to prevent.
pub fn run_task_on_faas(
    sim: &mut Simulation,
    platform: &FaasPlatform,
    store: &ObjectStore,
    spec: FaasTaskSpec,
    seeds: &SeedSource,
    on_done: impl FnOnce(&mut Simulation, FaasRunStats) + Send + 'static,
) {
    // Analyzer-checked invariant: diagnostic M104 rejects zero-component
    // tasks before execution reaches this platform.
    assert!(spec.components > 0, "task with zero components");
    // Analyzer-checked invariant: diagnostic M203 rejects serverless
    // placements whose memory demand exceeds the function cap.
    assert!(
        spec.memory_gb <= platform.config().memory_gb,
        "task '{}' needs {} GiB but functions cap at {} GiB",
        spec.label,
        spec.memory_gb,
        platform.config().memory_gb
    );
    // A checkpoint written after the margin point must land before the
    // deadline, or the watchdog kills the function mid-checkpoint.
    // Analyzer-checked invariant: the engine widens the margin to cover the
    // checkpoint write (`MashupConfig::margin_for`), and diagnostics M302 /
    // M202 reject margins that devour the timeout window.
    assert!(
        spec.checkpoint_bytes / platform.config().per_function_bps <= spec.checkpoint_margin_secs,
        "task '{}': checkpoint of {} bytes cannot be written within the \
         {}-second margin at {} B/s — widen the margin",
        spec.label,
        spec.checkpoint_bytes,
        spec.checkpoint_margin_secs,
        platform.config().per_function_bps,
    );
    let now = sim.now();
    let accum = shared(Accum {
        remaining: spec.components,
        first_start_seen: false,
        stats: FaasRunStats {
            start: now,
            end: now,
            first_fn_start: SimTime::ZERO,
            last_fn_start: SimTime::ZERO,
            cold_start_secs: 0.0,
            n_cold: 0,
            n_warm: 0,
            io_secs: 0.0,
            compute_secs: 0.0,
            checkpoints: 0,
            bytes_read: 0.0,
            bytes_written: 0.0,
        },
        done: Some(Box::new(on_done)),
    });
    let ctx = Ctx {
        platform: platform.clone(),
        store: store.clone(),
        spec: std::sync::Arc::new(spec),
        accum,
    };
    let mut rng = seeds.child(&ctx.spec.label).stream("faas-run");
    let components = ctx.spec.components;
    for comp in 0..components {
        let jf = jitter_factor(&mut rng, ctx.spec.jitter);
        let total_compute = ctx.spec.compute_secs / ctx.platform.config().core_speed * jf;
        let work = Work {
            chain: comp as u32,
            read: ctx.spec.input_bytes,
            needs_ckpt_read: false,
            compute: total_compute,
            write: ctx.spec.output_bytes,
            first_segment: true,
        };
        run_segment(sim, ctx.clone(), work);
    }
}

/// Remaining work of one component, threaded across its invocation chain.
/// Inputs and outputs too large for one timeout window are moved in chunks
/// across invocations (multipart-style), so no single function ever runs
/// into the platform's kill watchdog.
#[derive(Clone, Copy)]
struct Work {
    /// Component index within the task: identifies the invocation chain in
    /// trace records (checkpoint/resume matching).
    chain: u32,
    /// Input bytes still to be read from the store.
    read: f64,
    /// True when this segment resumes from a checkpoint and must re-read
    /// the state first.
    needs_ckpt_read: bool,
    /// Compute seconds still to run.
    compute: f64,
    /// Output bytes still to be written.
    write: f64,
    /// True for a component's very first invocation (scaling-time metric).
    first_segment: bool,
}

/// One invocation in a component's chain.
fn run_segment(sim: &mut Simulation, ctx: Ctx, work: Work) {
    let label = ctx.spec.label.clone();
    let ctx2 = ctx.clone();
    ctx.platform.invoke(sim, label, None, move |sim, inv| {
        let ctx = ctx2;
        {
            let mut a = ctx.accum.borrow_mut();
            if inv.cold {
                a.stats.n_cold += 1;
                a.stats.cold_start_secs += inv.start_latency.as_secs();
            } else {
                a.stats.n_warm += 1;
            }
            if work.first_segment {
                if !a.first_start_seen {
                    a.first_start_seen = true;
                    a.stats.first_fn_start = inv.ready_at;
                } else {
                    a.stats.first_fn_start = a.stats.first_fn_start.min(inv.ready_at);
                }
                a.stats.last_fn_start = a.stats.last_fn_start.max(inv.ready_at);
            }
        }
        ctx.platform.tracer().emit(
            sim.now(),
            TraceEvent::SegmentStart {
                task: ctx.spec.label.clone(),
                chain: work.chain,
                inv: inv.id.raw(),
                resume: work.needs_ckpt_read,
                mem_gb: ctx.spec.memory_gb,
            },
        );
        if work.needs_ckpt_read {
            // Resume: re-read the checkpointed state before anything else.
            ctx.platform.tracer().emit(
                sim.now(),
                TraceEvent::CheckpointResume {
                    task: ctx.spec.label.clone(),
                    chain: work.chain,
                    inv: inv.id.raw(),
                    remaining_secs: work.compute,
                },
            );
            let ckpt = ctx.spec.checkpoint_bytes;
            let cap = ctx.platform.config().per_function_bps;
            let requests = ctx.spec.io_requests;
            let ctx3 = ctx.clone();
            ctx.store
                .read(sim, ckpt, requests, Some(cap), move |sim, dur| {
                    {
                        let mut a = ctx3.accum.borrow_mut();
                        a.stats.io_secs += dur.as_secs();
                        a.stats.bytes_read += ckpt;
                    }
                    read_phase(
                        sim,
                        ctx3,
                        inv,
                        Work {
                            needs_ckpt_read: false,
                            ..work
                        },
                    );
                });
        } else {
            read_phase(sim, ctx, inv, work);
        }
    });
}

/// Instant at which this invocation must stop useful work to leave room
/// for a checkpoint/handover before the hard deadline.
fn window_end(ctx: &Ctx, inv: &crate::faas::Invocation) -> mashup_sim::SimTime {
    inv.deadline - SimDuration::from_secs(ctx.spec.checkpoint_margin_secs)
}

/// Reads as much of the remaining input as fits this window, chaining to a
/// fresh invocation when bytes remain.
fn read_phase(sim: &mut Simulation, ctx: Ctx, inv: crate::faas::Invocation, work: Work) {
    if work.read <= 0.0 {
        compute_phase(sim, ctx, inv, work);
        return;
    }
    let cap = ctx.platform.config().per_function_bps;
    let budget_secs = window_end(&ctx, &inv).saturating_since(sim.now()).as_secs();
    let chunk = work.read.min(budget_secs * cap);
    // Analyzer-checked invariant: diagnostic M202 rejects serverless
    // placements whose resume-read alone fills the post-margin window.
    assert!(
        chunk > 0.0,
        "task '{}' cannot make read progress within the FaaS window",
        ctx.spec.label
    );
    let requests = ctx.spec.io_requests;
    let ctx2 = ctx.clone();
    ctx.store
        .read(sim, chunk, requests, Some(cap), move |sim, dur| {
            let ctx = ctx2;
            {
                let mut a = ctx.accum.borrow_mut();
                a.stats.io_secs += dur.as_secs();
                a.stats.bytes_read += chunk;
            }
            if work.read - chunk > 1e-6 {
                // More input than this window could take: hand the remainder to
                // a fresh invocation (multipart continuation).
                let alive = ctx.platform.complete(sim, inv.id);
                let read_left = if alive { work.read - chunk } else { work.read };
                run_segment(
                    sim,
                    ctx,
                    Work {
                        read: read_left,
                        first_segment: false,
                        ..work
                    },
                );
            } else if ctx.platform.is_active(inv.id) {
                compute_phase(sim, ctx, inv, Work { read: 0.0, ..work });
            } else {
                // Contention stretched the read past the deadline and the
                // watchdog killed the function: redo this chunk fresh.
                run_segment(
                    sim,
                    ctx,
                    Work {
                        first_segment: false,
                        ..work
                    },
                );
            }
        });
}

/// Computes until done or until the checkpoint point, checkpointing and
/// chaining when work remains.
fn compute_phase(sim: &mut Simulation, ctx: Ctx, inv: crate::faas::Invocation, work: Work) {
    if work.compute <= 0.0 {
        write_phase(sim, ctx, inv, work);
        return;
    }
    let budget = window_end(&ctx, &inv).saturating_since(sim.now()).as_secs();
    let (compute_now, leftover) = if work.compute <= budget {
        (work.compute, 0.0)
    } else {
        (budget, work.compute - budget)
    };
    if compute_now <= 0.0 && leftover > 0.0 {
        // No usable window left (e.g. the reads consumed it): hand over.
        let _ = ctx.platform.complete(sim, inv.id);
        run_segment(
            sim,
            ctx,
            Work {
                needs_ckpt_read: false,
                first_segment: false,
                ..work
            },
        );
        return;
    }
    ctx.accum.borrow_mut().stats.compute_secs += compute_now;
    let ctx2 = ctx.clone();
    sim.schedule_in(SimDuration::from_secs(compute_now), move |sim| {
        let ctx = ctx2;
        if leftover > 0.0 {
            // Checkpoint 30 s (the margin) before the limit and restart
            // from the stored state (paper §3).
            let write_begin = sim.now();
            let ckpt = ctx.spec.checkpoint_bytes;
            let cap = ctx.platform.config().per_function_bps;
            let requests = ctx.spec.io_requests;
            let ctx3 = ctx.clone();
            let segment_compute = work.compute;
            ctx.store
                .write(sim, ckpt, requests, Some(cap), move |sim, _| {
                    {
                        let mut a = ctx3.accum.borrow_mut();
                        a.stats.io_secs += sim.now().since(write_begin).as_secs();
                        a.stats.bytes_written += ckpt;
                    }
                    // The state only persists if the function survived to
                    // finish the write; record the checkpoint at the instant
                    // it landed (before the deadline, or the watchdog would
                    // have killed the function first).
                    if ctx3.platform.is_active(inv.id) {
                        ctx3.platform.tracer().emit(
                            sim.now(),
                            TraceEvent::Checkpoint {
                                task: ctx3.spec.label.clone(),
                                chain: work.chain,
                                inv: inv.id.raw(),
                                bytes: ckpt,
                                remaining_secs: leftover,
                            },
                        );
                    }
                    let alive = ctx3.platform.complete(sim, inv.id);
                    let next = if alive {
                        ctx3.accum.borrow_mut().stats.checkpoints += 1;
                        Work {
                            read: 0.0,
                            needs_ckpt_read: true,
                            compute: leftover,
                            first_segment: false,
                            ..work
                        }
                    } else {
                        // Killed mid-checkpoint: the state never persisted;
                        // redo this segment's compute from the last good
                        // checkpoint (if any).
                        let had_ckpt = ctx3.accum.borrow().stats.checkpoints > 0;
                        Work {
                            read: 0.0,
                            needs_ckpt_read: had_ckpt,
                            compute: segment_compute,
                            first_segment: false,
                            ..work
                        }
                    };
                    run_segment(sim, ctx3, next);
                });
        } else {
            write_phase(
                sim,
                ctx,
                inv,
                Work {
                    compute: 0.0,
                    ..work
                },
            );
        }
    });
}

/// Writes as much of the remaining output as fits this window, chaining to
/// a fresh invocation when bytes remain (multipart upload), and finishing
/// the component when everything has landed.
fn write_phase(sim: &mut Simulation, ctx: Ctx, inv: crate::faas::Invocation, work: Work) {
    let cap = ctx.platform.config().per_function_bps;
    if work.write <= 0.0 {
        let _ = ctx.platform.complete(sim, inv.id);
        finish_component(sim, ctx);
        return;
    }
    let budget_secs = window_end(&ctx, &inv).saturating_since(sim.now()).as_secs();
    let chunk = work.write.min(budget_secs * cap);
    if chunk <= 0.0 {
        // Window exhausted before any bytes could move: fresh invocation.
        let _ = ctx.platform.complete(sim, inv.id);
        run_segment(
            sim,
            ctx,
            Work {
                first_segment: false,
                ..work
            },
        );
        return;
    }
    let write_begin = sim.now();
    let requests = ctx.spec.io_requests;
    let ctx2 = ctx.clone();
    ctx.store
        .write(sim, chunk, requests, Some(cap), move |sim, _| {
            let ctx = ctx2;
            {
                let mut a = ctx.accum.borrow_mut();
                a.stats.io_secs += sim.now().since(write_begin).as_secs();
                a.stats.bytes_written += chunk;
            }
            let alive = ctx.platform.complete(sim, inv.id);
            // A killed function's part upload never lands; redo the chunk.
            let rest = if alive {
                work.write - chunk
            } else {
                work.write
            };
            if rest > 1e-6 {
                run_segment(
                    sim,
                    ctx,
                    Work {
                        write: rest,
                        first_segment: false,
                        ..work
                    },
                );
            } else {
                finish_component(sim, ctx);
            }
        });
}

/// Marks one component done, firing the task callback after the last one.
fn finish_component(sim: &mut Simulation, ctx: Ctx) {
    let mut a = ctx.accum.borrow_mut();
    a.remaining -= 1;
    if a.remaining == 0 {
        a.stats.end = sim.now();
        let stats = a.stats;
        let cb = a.done.take().expect("done fires once");
        drop(a);
        cb(sim, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMeter;
    use crate::pricing::{FaasConfig, StorageConfig};

    fn setup(mut faas: FaasConfig, mut storage: StorageConfig) -> (FaasPlatform, ObjectStore) {
        faas.cold_start_secs = (1.0, 1.0);
        storage.request_latency_secs = 0.0;
        let meter = CostMeter::new();
        let seeds = SeedSource::new(11);
        (
            FaasPlatform::new(faas, meter.clone(), &seeds),
            ObjectStore::new(storage, meter, &seeds),
        )
    }

    fn run(platform: &FaasPlatform, store: &ObjectStore, spec: FaasTaskSpec) -> FaasRunStats {
        let mut sim = Simulation::new();
        let out = shared(None);
        let o2 = out.clone();
        let p = platform.clone();
        let s = store.clone();
        sim.schedule_now(move |sim| {
            run_task_on_faas(sim, &p, &s, spec, &SeedSource::new(5), move |_, stats| {
                *o2.borrow_mut() = Some(stats);
            });
        });
        sim.run();
        let stats = out.borrow_mut().take().expect("task completed");
        stats
    }

    #[test]
    fn single_component_times_add_up() {
        let (p, s) = setup(FaasConfig::aws_like(), StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("t", 1, 10.0);
        spec.input_bytes = 5e7; // 1 s at the 50 MB/s per-function cap
        spec.output_bytes = 5e7;
        let stats = run(&p, &s, spec);
        // 1 s cold + 1 s read + 10 s compute + 1 s write = 13 s.
        assert!(
            (stats.makespan().as_secs() - 13.0).abs() < 1e-6,
            "{stats:?}"
        );
        assert_eq!(stats.n_cold, 1);
        assert_eq!(stats.checkpoints, 0);
        assert!((stats.io_secs - 2.0).abs() < 1e-6);
        assert!((stats.compute_secs - 10.0).abs() < 1e-6);
    }

    #[test]
    fn long_component_checkpoints_and_resumes() {
        let mut cfg = FaasConfig::aws_like();
        cfg.timeout_secs = 100.0;
        let (p, s) = setup(cfg, StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("long", 1, 150.0);
        spec.checkpoint_bytes = 5e7; // 1 s to write/read at the cap
        spec.checkpoint_margin_secs = 30.0;
        let stats = run(&p, &s, spec);
        // Segment 1: cold 1 s, budget = 100 - 30 = 70 s of compute, then a
        // 1 s checkpoint write. Segment 2 (warm): 1 s checkpoint read eats
        // into the window, leaving 69 s of compute -> a second checkpoint.
        // Segment 3 finishes the remaining 11 s.
        assert_eq!(stats.checkpoints, 2);
        assert_eq!(stats.n_cold + stats.n_warm, 3);
        assert!((stats.compute_secs - 150.0).abs() < 1e-6);
        assert!(stats.makespan().as_secs() > 150.0);
        // Total compute is preserved across the chain.
        assert!(stats.bytes_written >= 5e7);
    }

    #[test]
    fn very_long_component_chains_many_checkpoints() {
        let mut cfg = FaasConfig::aws_like();
        cfg.timeout_secs = 100.0;
        let (p, s) = setup(cfg, StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("vlong", 1, 400.0);
        spec.checkpoint_bytes = 1e6;
        spec.checkpoint_margin_secs = 30.0;
        let stats = run(&p, &s, spec);
        // ~70 s of usable compute per segment -> 400/70 -> 5 checkpoints + final.
        assert!(stats.checkpoints >= 5, "{stats:?}");
        assert!((stats.compute_secs - 400.0).abs() < 1e-6);
        // No invocation was killed: the chain respected the cap.
        assert_eq!(p.kills(), 0);
    }

    #[test]
    fn scaling_time_grows_linearly_with_components() {
        let mut cfg = FaasConfig::aws_like();
        cfg.burst_capacity = 10;
        cfg.ramp_per_sec = 10.0;
        let (p, s) = setup(cfg.clone(), StorageConfig::s3_like());
        let stats_small = run(&p, &s, FaasTaskSpec::new("a", 50, 1.0));
        let (p2, s2) = setup(cfg, StorageConfig::s3_like());
        let stats_large = run(&p2, &s2, FaasTaskSpec::new("b", 400, 1.0));
        let small = stats_small.scaling_secs();
        let large = stats_large.scaling_secs();
        // Scheduler starts are staggered at 10/s beyond the 10-token burst,
        // so the start spread grows by (400-50)/10 = 35 s (cold-vs-warm
        // start differences shift the ends by at most a second).
        assert!(
            (large - small - 35.0).abs() < 2.0,
            "small {small}, large {large}"
        );
        assert!(small < large);
    }

    #[test]
    fn concurrent_components_share_store_bandwidth() {
        let mut st = StorageConfig::s3_like();
        st.aggregate_bps = 1e8; // low aggregate so contention bites
        let mut cfg = FaasConfig::aws_like();
        cfg.burst_capacity = 1000;
        cfg.per_function_bps = 1e8;
        let (p, s) = setup(cfg, st);
        let mut spec = FaasTaskSpec::new("io", 10, 0.0);
        spec.input_bytes = 1e8;
        let stats = run(&p, &s, spec);
        // 10 x 100 MB over a 100 MB/s aggregate = 10 s of I/O wall clock,
        // plus 1 s cold start.
        assert!((stats.makespan().as_secs() - 11.0).abs() < 0.1, "{stats:?}");
    }

    #[test]
    #[should_panic(expected = "functions cap at")]
    fn oversized_memory_rejected() {
        let (p, s) = setup(FaasConfig::aws_like(), StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("big", 1, 1.0);
        spec.memory_gb = 100.0;
        run(&p, &s, spec);
    }

    #[test]
    fn injected_platform_failures_are_recovered_via_checkpoints() {
        let mut cfg = FaasConfig::aws_like();
        cfg.timeout_secs = 120.0;
        cfg.failure_prob = 0.4; // many invocations die mid-window
        let (p, s) = setup(cfg, StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("flaky", 8, 300.0);
        spec.checkpoint_bytes = 1e6;
        spec.checkpoint_margin_secs = 10.0;
        let stats = run(&p, &s, spec);
        // Every component finished all its compute despite the failures —
        // retried segments redo work, so the total is at least the ideal.
        assert!(stats.compute_secs >= 8.0 * 300.0 - 1e-6, "{stats:?}");
        assert!(p.kills() > 0, "failure injection should have fired");
        // Checkpoints bounded the damage: makespan stays finite and sane.
        assert!(stats.makespan().as_secs() < 24.0 * 3600.0);
    }

    #[test]
    fn outputs_larger_than_one_window_are_chunked() {
        // 50 GB of output at 50 MB/s is ~1000 s: impossible in one 900 s
        // function — multipart chunking must chain invocations.
        let (p, s) = setup(FaasConfig::aws_like(), StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("bigout", 1, 10.0);
        spec.output_bytes = 5.0e10;
        let stats = run(&p, &s, spec);
        assert!((stats.bytes_written - 5.0e10).abs() < 1.0, "{stats:?}");
        assert!(
            stats.n_cold + stats.n_warm >= 2,
            "needs at least two invocations"
        );
        assert_eq!(p.kills(), 0, "chunking must avoid the watchdog");
    }

    #[test]
    fn inputs_larger_than_one_window_are_chunked() {
        let (p, s) = setup(FaasConfig::aws_like(), StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("bigin", 1, 10.0);
        spec.input_bytes = 6.0e10;
        let stats = run(&p, &s, spec);
        assert!((stats.bytes_read - 6.0e10).abs() < 1.0, "{stats:?}");
        assert!(stats.n_cold + stats.n_warm >= 2);
        assert_eq!(p.kills(), 0);
    }

    #[test]
    fn stats_count_io_bytes() {
        let (p, s) = setup(FaasConfig::aws_like(), StorageConfig::s3_like());
        let mut spec = FaasTaskSpec::new("t", 3, 1.0);
        spec.input_bytes = 10.0;
        spec.output_bytes = 20.0;
        let stats = run(&p, &s, spec);
        assert!((stats.bytes_read - 30.0).abs() < 1e-9);
        assert!((stats.bytes_written - 60.0).abs() < 1e-9);
    }
}
