//! Expense metering across VM, serverless, and storage services.
//!
//! The paper's evaluation metric (§4) is the combined expense of all VM
//! nodes, all serverless functions, and the S3 bucket maintained during
//! execution. [`CostMeter`] accumulates these as the simulation runs and
//! renders an [`Expense`] breakdown at the end.

use mashup_sim::Shared;
use serde::{Deserialize, Serialize};

const SECS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;

/// Final expense breakdown in dollars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Expense {
    /// VM node time.
    pub vm_dollars: f64,
    /// Serverless function time.
    pub faas_dollars: f64,
    /// Object storage: byte-time plus requests.
    pub storage_dollars: f64,
}

impl Expense {
    /// Total expense.
    pub fn total(&self) -> f64 {
        self.vm_dollars + self.faas_dollars + self.storage_dollars
    }
}

#[derive(Debug, Default)]
struct Meter {
    vm_node_seconds_dollars: f64,
    faas_function_seconds_dollars: f64,
    storage_byte_seconds: f64,
    storage_request_dollars: f64,
}

/// A shareable expense accumulator. Cloning shares the same meter.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    inner: Shared<Meter>,
}

impl CostMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `node_seconds` of VM time at `price_per_hour`.
    pub fn charge_vm(&self, node_seconds: f64, price_per_hour: f64) {
        debug_assert!(node_seconds >= 0.0);
        self.inner.borrow_mut().vm_node_seconds_dollars += node_seconds / 3600.0 * price_per_hour;
    }

    /// Charges `function_seconds` of serverless time at `price_per_hour`.
    pub fn charge_faas(&self, function_seconds: f64, price_per_hour: f64) {
        debug_assert!(function_seconds >= 0.0);
        self.inner.borrow_mut().faas_function_seconds_dollars +=
            function_seconds / 3600.0 * price_per_hour;
    }

    /// Charges storage occupancy: `bytes` held for `seconds`.
    pub fn charge_storage_occupancy(&self, bytes: f64, seconds: f64) {
        debug_assert!(bytes >= 0.0 && seconds >= 0.0);
        self.inner.borrow_mut().storage_byte_seconds += bytes * seconds;
    }

    /// Charges `n` storage requests at `price_each`.
    pub fn charge_storage_requests(&self, n: u64, price_each: f64) {
        self.inner.borrow_mut().storage_request_dollars += n as f64 * price_each;
    }

    /// Renders the expense breakdown; `price_per_gb_month` converts the
    /// accumulated byte-seconds.
    pub fn expense(&self, price_per_gb_month: f64) -> Expense {
        let m = self.inner.borrow();
        let gb_months = m.storage_byte_seconds / 1e9 / SECS_PER_MONTH;
        Expense {
            vm_dollars: m.vm_node_seconds_dollars,
            faas_dollars: m.faas_function_seconds_dollars,
            storage_dollars: gb_months * price_per_gb_month + m.storage_request_dollars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_and_faas_charging() {
        let m = CostMeter::new();
        // 10 nodes for one hour at $0.12.
        m.charge_vm(10.0 * 3600.0, 0.12);
        // 100 function-seconds at $0.12/hr.
        m.charge_faas(100.0, 0.12);
        let e = m.expense(0.023);
        assert!((e.vm_dollars - 1.2).abs() < 1e-12);
        assert!((e.faas_dollars - 100.0 / 3600.0 * 0.12).abs() < 1e-12);
        assert_eq!(e.storage_dollars, 0.0);
    }

    #[test]
    fn storage_charging() {
        let m = CostMeter::new();
        // 1 GB held for a month.
        m.charge_storage_occupancy(1e9, SECS_PER_MONTH);
        m.charge_storage_requests(1000, 5e-6);
        let e = m.expense(0.023);
        assert!((e.storage_dollars - (0.023 + 0.005)).abs() < 1e-12);
    }

    #[test]
    fn cloned_meters_share_state() {
        let m = CostMeter::new();
        let m2 = m.clone();
        m2.charge_vm(3600.0, 1.0);
        assert!((m.expense(0.0).vm_dollars - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_sums_components() {
        let e = Expense {
            vm_dollars: 1.0,
            faas_dollars: 2.0,
            storage_dollars: 3.0,
        };
        assert_eq!(e.total(), 6.0);
    }
}
