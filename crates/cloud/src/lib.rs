//! # mashup-cloud
//!
//! Mechanistic models of the three cloud services the Mashup paper builds
//! on, implemented over the `mashup-sim` discrete-event engine:
//!
//! * [`VmCluster`] — EC2-like master/worker clusters: core-slot waves,
//!   co-residency contention, master-NIC funnels, optional sub-cluster
//!   splits, node-hour billing;
//! * [`FaasPlatform`] — Lambda-like functions: scheduler ramp (linear
//!   scaling time), cold/warm starts with keep-alive pools and pre-warming,
//!   hard execution timeouts, per-function-hour billing;
//! * [`ObjectStore`] — S3-like storage: aggregate-bandwidth fair sharing,
//!   per-request latency and pricing, replication, failure injection,
//!   occupancy metering.
//!
//! [`run_task_on_faas`] turns a task (N components) into N function chains
//! with checkpoint/restart across the time cap; [`VmCluster::run_task`] is
//! its cluster-side counterpart. Both report the overhead decomposition
//! (cold start, I/O, scaling) that the paper's Fig. 4 and §5 analyse.
//! Prices and platform constants live in [`pricing`] presets; every run
//! charges a shared [`CostMeter`].

#![warn(missing_docs)]

mod cluster;
mod cost;
mod exec;
mod faas;
pub mod fault;
pub mod pricing;
mod storage;

pub use cluster::{
    ClusterConfig, ClusterInput, ClusterOutput, ClusterRunStats, ClusterTaskSpec, VmCluster,
};
pub use cost::{CostMeter, Expense};
pub use exec::{run_task_on_faas, FaasRunStats, FaasTaskSpec};
pub use faas::{FaasPlatform, Invocation, InvocationId};
pub use fault::{Fault, FaultPlan, FaultProfile, StoreFault};
pub use pricing::{FaasConfig, InstanceType, ProviderPreset, StorageConfig};
pub use storage::ObjectStore;
