//! Million-task scale benchmarks: build, plan, replan, simulate.
//!
//! Exercises the flat-arena DAG path end to end on the synthetic shapes
//! from [`mashup_bench::scale`] at three tiers (10k / 100k / 1M tasks):
//!
//! * **build** — raw-graph ingestion through `from_task_graph` (name
//!   interning, CSR adjacency, iterative level assignment);
//! * **plan** — a cold `Pdc::decide` with probe sharing, dominated by the
//!   all-VM profiling simulation and the boundary-tax worklist;
//! * **replan** — a single-task edit replanned incrementally against the
//!   cold plan (100k tier only; asserts the ≥10× speedup the plan cache
//!   promises);
//! * **simulate** — a full cluster-side execution of the fan-out shape,
//!   the bulk-scheduling fast path.
//!
//! Select tiers with `DAG_SCALE_TIERS` (comma-separated: `10k`, `100k`,
//! `1m`; default all) — CI smoke runs `DAG_SCALE_TIERS=10k` with `--test`.
//! Refresh the committed numbers with
//! `BENCH_JSON=results/BENCH_scale.json cargo bench --bench dag_scale`.

use criterion::{criterion_group, criterion_main, Criterion};
use mashup_bench::scale::{self, Shape};
use mashup_core::{plan_without_pdc, MashupConfig, Pdc, PlanCache};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const TIERS: [(&str, usize); 3] = [("10k", 10_000), ("100k", 100_000), ("1m", 1_000_000)];

/// The tiers selected by `DAG_SCALE_TIERS`, defaulting to all of them.
fn tiers() -> Vec<(&'static str, usize)> {
    let Ok(filter) = std::env::var("DAG_SCALE_TIERS") else {
        return TIERS.to_vec();
    };
    let wanted: Vec<String> = filter
        .split(',')
        .map(|s| s.trim().to_ascii_lowercase())
        .filter(|s| !s.is_empty())
        .collect();
    TIERS
        .iter()
        .copied()
        .filter(|(name, _)| wanted.iter().any(|w| w == name))
        .collect()
}

fn pdc(cache: &Arc<PlanCache>) -> Pdc {
    Pdc::new(MashupConfig::aws(8))
        .with_cache(cache.clone())
        .with_probe_sharing(true)
}

fn bench_build(c: &mut Criterion) {
    for (tier, n) in tiers() {
        for shape in Shape::ALL {
            c.bench_function(&format!("dag_scale/build_{}_{tier}", shape.name()), |b| {
                b.iter(|| black_box(scale::workflow(shape, n)))
            });
        }
    }
}

fn bench_plan(c: &mut Criterion) {
    for (tier, n) in tiers() {
        let w = scale::workflow(Shape::FanOut, n);
        c.bench_function(&format!("dag_scale/plan_cold_fanout_{tier}"), |b| {
            // Fresh cache per iteration: this measures cold planning —
            // the VM profiling pass, one shared probe, the per-task
            // decision rules, and the boundary-tax worklist.
            b.iter(|| black_box(pdc(&Arc::new(PlanCache::new())).decide(&w)))
        });
    }
}

fn bench_replan(c: &mut Criterion) {
    // Incremental replan is measured at the 100k tier on the chain shape:
    // a single-task edit dirties exactly one single-task phase, which is
    // the access pattern PDC replanning is built for. (A fan-out edit
    // would dirty the whole million-wide phase and measure re-profiling,
    // not reuse.)
    let Some((tier, n)) = tiers().iter().copied().find(|&(t, _)| t == "100k") else {
        return;
    };
    let base = scale::workflow(Shape::Chain, n);
    let edited = scale::edited_workflow(Shape::Chain, n, n / 2);
    let cache = Arc::new(PlanCache::new());

    let t = Instant::now();
    let prev = pdc(&cache).decide(&base);
    let cold = t.elapsed();
    // Best of three: a replan is ~100ms here, so a single sample is at the
    // mercy of allocator state; the minimum is the honest steady cost.
    let mut incremental = cold;
    for _ in 0..3 {
        let t = Instant::now();
        let (_, stats) = pdc(&cache).replan(&base, &prev, &edited);
        incremental = incremental.min(t.elapsed());
        assert!(!stats.full_replan, "aligned edit must not fall back");
        assert_eq!(stats.dirty_phases, 1, "single-task edit dirties one phase");
        assert_eq!(stats.replanned_tasks, 1);
    }
    let speedup = cold.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    println!(
        "dag_scale/replan_speedup_chain_{tier}: {speedup:.1}x \
         (cold {:.3}s, incremental {:.3}s)",
        cold.as_secs_f64(),
        incremental.as_secs_f64()
    );
    assert!(
        speedup >= 10.0,
        "incremental replan must be >=10x faster than a cold plan at {tier} \
         (got {speedup:.1}x)"
    );

    c.bench_function(&format!("dag_scale/plan_cold_chain_{tier}"), |b| {
        b.iter(|| black_box(pdc(&Arc::new(PlanCache::new())).decide(&base)))
    });
    c.bench_function(&format!("dag_scale/replan_1edit_chain_{tier}"), |b| {
        b.iter(|| black_box(pdc(&cache).replan(&base, &prev, &edited)))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let cfg = MashupConfig::aws(8);
    for (tier, n) in tiers() {
        let w = scale::workflow(Shape::FanOut, n);
        let plan = plan_without_pdc(&cfg, &w);
        c.bench_function(&format!("dag_scale/simulate_fanout_{tier}"), |b| {
            b.iter(|| black_box(mashup_core::execute(&cfg, &w, &plan, "dag-scale")))
        });
    }
}

fn report_peak_rss(_c: &mut Criterion) {
    // VmHWM is the process high-water mark: an upper bound on what the
    // largest tier needed. Some sandboxed kernels (gVisor) omit it, so fall
    // back to end-of-run VmRSS — a lower bound instead of an upper one.
    // Recorded in EXPERIMENTS.md alongside the committed timings.
    if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
        if let Some(line) = status
            .lines()
            .find(|l| l.starts_with("VmHWM"))
            .or_else(|| status.lines().find(|l| l.starts_with("VmRSS")))
        {
            println!("dag_scale/peak_rss: {}", line.trim());
        }
    }
}

criterion_group! {
    name = dag_scale;
    config = Criterion::default().sample_size(10);
    // Replan runs before the fan-out planning benches: its 10x assertion
    // compares ~100ms against ~seconds and should not inherit a heap
    // fragmented by the million-task tiers.
    targets = bench_build, bench_replan, bench_plan, bench_simulate, report_peak_rss
}
criterion_main!(dag_scale);
