//! Substrate micro-benchmarks: the two hot paths every figure funnels
//! through.
//!
//! * `link_contention_1000` — 1000 concurrent flows on one fair-share link
//!   with per-flow caps and completion churn, modelled on the 1000Genome
//!   *Individual* task (1252 components hammering the store link).
//! * `event_queue_cancel_storm` — the cancel/reschedule pattern a link
//!   replan performs on every transfer arrival/completion, which stresses
//!   tombstone handling in the event queue.
//!
//! Run `BENCH_JSON=results/BENCH_sim.json cargo bench --bench sim_substrate`
//! to refresh the tracked numbers (see EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mashup_sim::{shared, SharedLink, SimDuration, Simulation};

/// 1000 staggered flows with heterogeneous per-flow caps on one link; each
/// completion triggers a replan of everything still in flight.
fn link_contention(flows: usize) -> f64 {
    let mut sim = Simulation::new();
    let link = SharedLink::new("bench-fabric", 1.0e9);
    let done = shared(0usize);
    for i in 0..flows {
        let link2 = link.clone();
        let done2 = done.clone();
        // Arrivals in small same-instant bursts (8 per instant), like a
        // phase of components starting together.
        let at = SimDuration::from_secs((i / 8) as f64 * 1.0e-3);
        sim.schedule_in(at, move |sim| {
            let bytes = 1.0e6 + (i % 17) as f64 * 3.0e5;
            // A mix of capped (NIC-bound) and uncapped flows exercises both
            // sides of the water-filling split.
            let cap = if i % 3 == 0 { Some(2.0e6) } else { None };
            link2.start_transfer(sim, bytes, cap, move |_| {
                done2.set(done2.get() + 1);
            });
        });
    }
    sim.run();
    assert_eq!(done.get(), flows);
    sim.now().as_secs()
}

/// The replan pattern: schedule a completion, then cancel and reschedule it
/// repeatedly before letting it fire — one tombstone per iteration in the
/// old queue.
fn cancel_storm(events: usize) -> u64 {
    let mut sim = Simulation::new();
    let mut handle = None;
    for i in 0..events {
        if let Some(h) = handle.take() {
            sim.cancel(h);
        }
        let at = SimDuration::from_secs(1.0 + (i % 97) as f64 * 1.0e-4);
        handle = Some(sim.schedule_in(at, |_| {}));
        // is_idle is called by run loops and watchdogs; the old
        // implementation scanned every tombstone each time.
        black_box(sim.is_idle());
    }
    sim.run();
    sim.events_processed()
}

fn bench_link_contention(c: &mut Criterion) {
    c.bench_function("link_contention_1000", |b| {
        b.iter(|| black_box(link_contention(1000)))
    });
}

fn bench_cancel_storm(c: &mut Criterion) {
    c.bench_function("event_queue_cancel_storm_50k", |b| {
        b.iter(|| black_box(cancel_storm(50_000)))
    });
}

criterion_group! {
    name = sim_substrate;
    config = Criterion::default().sample_size(10);
    targets = bench_link_contention, bench_cancel_storm
}
criterion_main!(sim_substrate);
