//! Engine micro-benchmarks: the substrate costs underneath every
//! experiment — event throughput, fair-share link replanning, cluster and
//! FaaS task execution, PDC decision latency, and full hybrid runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mashup_cloud::{
    run_task_on_faas, ClusterConfig, ClusterTaskSpec, CostMeter, FaasConfig, FaasPlatform,
    FaasTaskSpec, InstanceType, ObjectStore, StorageConfig, VmCluster,
};
use mashup_core::{execute, MashupConfig, Pdc, PlacementPlan, Platform};
use mashup_sim::{SeedSource, SharedLink, SimDuration, Simulation};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/schedule_and_run_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            for i in 0..10_000u32 {
                sim.schedule_at(mashup_sim::SimTime::from_secs(i as f64 * 0.001), |_| {});
            }
            black_box(sim.run());
        })
    });
}

fn bench_shared_link(c: &mut Criterion) {
    c.bench_function("sim/fair_share_link_500_transfers", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let link = SharedLink::new("bench", 1e9);
            for i in 0..500 {
                let link = link.clone();
                sim.schedule_in(SimDuration::from_secs(i as f64 * 0.01), move |sim| {
                    link.start_transfer(sim, 1e7, None, |_| {});
                });
            }
            black_box(sim.run());
        })
    });
}

fn bench_cluster_task(c: &mut Criterion) {
    c.bench_function("cloud/cluster_task_500_components", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let cluster = VmCluster::new(
                ClusterConfig::new(InstanceType::r5_large(), 16),
                CostMeter::new(),
                &SeedSource::new(1),
            );
            let mut spec = ClusterTaskSpec::new("bench", 500, 10.0);
            spec.input_bytes = 1e7;
            spec.output_bytes = 1e6;
            let c2 = cluster.clone();
            sim.schedule_now(move |sim| c2.run_task(sim, None, spec, |_, _| {}));
            black_box(sim.run());
        })
    });
}

fn bench_faas_task(c: &mut Criterion) {
    c.bench_function("cloud/faas_task_500_components", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let meter = CostMeter::new();
            let seeds = SeedSource::new(2);
            let faas = FaasPlatform::new(FaasConfig::aws_like(), meter.clone(), &seeds);
            let store = ObjectStore::new(StorageConfig::s3_like(), meter, &seeds);
            let mut spec = FaasTaskSpec::new("bench", 500, 10.0);
            spec.input_bytes = 1e7;
            spec.output_bytes = 1e6;
            sim.schedule_now(move |sim| {
                run_task_on_faas(sim, &faas, &store, spec, &seeds, |_, _| {});
            });
            black_box(sim.run());
        })
    });
}

fn bench_hybrid_execute(c: &mut Criterion) {
    let w = mashup_workflows::srasearch::workflow();
    let cfg = MashupConfig::aws(8);
    c.bench_function("core/hybrid_execute_srasearch_8n", |b| {
        let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        plan.set(mashup_dag::TaskRef::new(0, 0), Platform::Serverless);
        b.iter_batched(
            || (cfg.clone(), w.clone(), plan.clone()),
            |(cfg, w, plan)| black_box(execute(&cfg, &w, &plan, "bench")),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pdc_decide(c: &mut Criterion) {
    let w = mashup_workflows::srasearch::workflow();
    c.bench_function("core/pdc_decide_srasearch_8n", |b| {
        b.iter(|| black_box(Pdc::new(MashupConfig::aws(8)).decide(&w)))
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_shared_link, bench_cluster_task,
              bench_faas_task, bench_hybrid_execute, bench_pdc_decide
}
criterion_main!(engine);
