//! One Criterion target per paper table/figure.
//!
//! Each target benches a *representative cell* of its figure (one workflow
//! at one cluster size) so `cargo bench` finishes in minutes; the complete
//! regeneration — every row and series, printed as the paper reports them —
//! is `cargo run --release -p mashup-bench --bin figures`, whose outputs
//! are recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use mashup_bench::{run_strategy, Strategy};
use mashup_core::{MashupConfig, Objective, Pdc};
use mashup_workflows::{epigenomics, genome1000, srasearch};
use std::hint::black_box;

fn fig02_env_choice(c: &mut Criterion) {
    // Fig. 2: per-task environment comparison (serverless vs cluster).
    let w = srasearch::workflow();
    c.bench_function("fig02/srasearch_serverless_vs_4n", |b| {
        b.iter(|| {
            let cfg = MashupConfig::aws(4);
            black_box(run_strategy(&cfg, &w, Strategy::ServerlessOnly));
            black_box(run_strategy(&cfg, &w, Strategy::Traditional));
        })
    });
}

fn fig04_overheads(c: &mut Criterion) {
    // Fig. 4(a)/(b): I/O and cold-start shares come from serverless runs.
    let w = epigenomics::workflow();
    c.bench_function("fig04ab/epigenomics_serverless_overheads", |b| {
        b.iter(|| {
            let r = run_strategy(&MashupConfig::aws(4), &w, Strategy::ServerlessOnly);
            black_box((r.total_io_secs(), r.total_cold_start_secs()));
        })
    });
    // Fig. 4(c): scaling time at one concurrency level.
    c.bench_function("fig04c/scaling_time_500_components", |b| {
        let g = genome1000::workflow();
        let profile = g
            .task_by_name("Individual")
            .expect("exists")
            .1
            .profile
            .clone();
        b.iter(|| {
            let mut wb = mashup_dag::WorkflowBuilder::new("scaling");
            wb.initial_input_bytes(1e9);
            wb.begin_phase();
            wb.add_task(mashup_dag::Task::new("t", 500, profile.clone()));
            let w = wb.build().expect("valid");
            let r = run_strategy(&MashupConfig::aws(4), &w, Strategy::ServerlessOnly);
            black_box(r.tasks[0].scaling_secs);
        })
    });
}

fn fig05_objectives(c: &mut Criterion) {
    let w = srasearch::workflow();
    c.bench_function("fig05/objective_study_one_cell", |b| {
        b.iter(|| {
            let pdc = Pdc::new(MashupConfig::aws(8)).with_objective(Objective::Expense);
            black_box(pdc.decide(&w));
        })
    });
}

fn fig06_07_sweep_cell(c: &mut Criterion) {
    // Figs. 6 & 7: improvement over the traditional cluster — one cell.
    let w = genome1000::workflow();
    c.bench_function("fig06_07/1000genome_8n_mashup_vs_traditional", |b| {
        b.iter(|| {
            let cfg = MashupConfig::aws(8);
            let base = run_strategy(&cfg, &w, Strategy::TraditionalTuned);
            let mashup = run_strategy(&cfg, &w, Strategy::Mashup);
            black_box((base.makespan_secs, mashup.makespan_secs));
        })
    });
}

fn fig08_families_cell(c: &mut Criterion) {
    let w = srasearch::workflow();
    c.bench_function("fig08/cheap_family_cell", |b| {
        b.iter(|| {
            let cfg = MashupConfig::aws_cheap(8);
            black_box(run_strategy(&cfg, &w, Strategy::Mashup));
        })
    });
}

fn fig09_placement_cell(c: &mut Criterion) {
    let w = epigenomics::workflow();
    c.bench_function("fig09/placement_map_one_size", |b| {
        b.iter(|| black_box(Pdc::new(MashupConfig::aws(8)).decide(&w)))
    });
}

fn fig10_sysmetrics_cell(c: &mut Criterion) {
    let w = genome1000::workflow();
    c.bench_function("fig10/sysmetrics_sources", |b| {
        b.iter(|| {
            let cfg = MashupConfig::aws(8);
            let vm = run_strategy(&cfg, &w, Strategy::Traditional);
            black_box(vm.tasks.iter().map(|t| t.io_fraction()).sum::<f64>());
        })
    });
}

fn fig11_pareto_cell(c: &mut Criterion) {
    let w = srasearch::workflow();
    c.bench_function("fig11/three_strategy_pareto_cell", |b| {
        b.iter(|| {
            let cfg = MashupConfig::aws(8);
            for s in [
                Strategy::ServerlessOnly,
                Strategy::TraditionalTuned,
                Strategy::Mashup,
            ] {
                black_box(run_strategy(&cfg, &w, s));
            }
        })
    });
}

fn fig12_managers_cell(c: &mut Criterion) {
    let w = srasearch::workflow();
    c.bench_function("fig12/pegasus_kepler_mashup_cell", |b| {
        b.iter(|| {
            let cfg = MashupConfig::aws(8);
            for s in [Strategy::Pegasus, Strategy::Kepler, Strategy::Mashup] {
                black_box(run_strategy(&cfg, &w, s));
            }
        })
    });
}

fn text_experiments(c: &mut Criterion) {
    // §5 input-size sensitivity: one scaled input.
    c.bench_function("text/input_scale_cell", |b| {
        let w = srasearch::workflow_scaled(1.4);
        b.iter(|| black_box(run_strategy(&MashupConfig::aws(8), &w, Strategy::Mashup)))
    });
    // §5 GCP-like portability: one cell.
    c.bench_function("text/gcp_cell", |b| {
        let w = srasearch::workflow();
        b.iter(|| black_box(run_strategy(&MashupConfig::gcp(8), &w, Strategy::Mashup)))
    });
    // §5 overhead reductions: Mashup vs w/o PDC.
    c.bench_function("text/overheads_cell", |b| {
        let w = epigenomics::workflow();
        b.iter(|| {
            let cfg = MashupConfig::aws(8);
            let a = run_strategy(&cfg, &w, Strategy::Mashup);
            let b2 = run_strategy(&cfg, &w, Strategy::MashupWithoutPdc);
            black_box((a.total_cold_start_secs(), b2.total_cold_start_secs()));
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig02_env_choice, fig04_overheads, fig05_objectives,
              fig06_07_sweep_cell, fig08_families_cell, fig09_placement_cell,
              fig10_sysmetrics_cell, fig11_pareto_cell, fig12_managers_cell,
              text_experiments
}
criterion_main!(figures);
