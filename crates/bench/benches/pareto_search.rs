//! Pareto plan-search throughput bench (`results/BENCH_pareto.json`).
//!
//! Two things are measured, on SRAsearch at 8 nodes:
//!
//! * **candidates/sec, cold vs warm** — the sweep's evaluate stage
//!   (materialize → [`Pdc::replan_structural`] → [`estimate_plan`]) over
//!   the first 100 candidates. *Cold* gives every candidate its own fresh
//!   [`PlanCache`], so each one re-simulates calibration, VM profiling and
//!   every probe from scratch — evaluation without cache sharing. *Warm*
//!   is the sweep's actual configuration: one shared pre-filled cache, so
//!   per-candidate planning is pure lookups. The ratio is the point of
//!   the warm-cache sweep.
//! * **end-to-end sweep wall time** at candidate budgets of 100, 1 000 and
//!   10 000 — [`pareto_sweep_with`] from a fresh shared cache, execution
//!   of the measured front included (what `mashup pareto` does).
//!
//! This binary writes its own JSON (richer than the criterion stub's
//! `{name, mean_ns, iters}` records: per-sweep candidate counters plus
//! derived candidates/sec), so it does not use the criterion harness. Run
//! `BENCH_JSON=$PWD/results/BENCH_pareto.json cargo bench -p mashup-bench
//! --bench pareto_search` from the repo root to refresh the committed
//! numbers.

use mashup_core::pareto::{enumerate, estimate_plan, materialize, SearchSpace};
use mashup_core::{MashupConfig, Pdc, PlanCache};
use mashup_serve::{pareto_sweep_with, SweepOutcome};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const BUDGETS: [usize; 3] = [100, 1_000, 10_000];
const EVAL_CANDIDATES: usize = 100;

/// One measured configuration, serialized as a `BENCH_pareto.json` record.
struct Row {
    name: String,
    budget: usize,
    mode: &'static str,
    iters: u64,
    mean_wall_secs: f64,
    generated: usize,
    deduped: usize,
    pruned: usize,
    evaluated: usize,
    coalesced: usize,
    executed: usize,
    candidates_per_sec: f64,
}

impl Row {
    fn print(&self) {
        println!(
            "{}  time: [{:.4} ms]  {:.0} candidates/s  \
             ({} generated, {} deduped, {} pruned, {} evaluated, {} coalesced, {} executed)",
            self.name,
            self.mean_wall_secs * 1e3,
            self.candidates_per_sec,
            self.generated,
            self.deduped,
            self.pruned,
            self.evaluated,
            self.coalesced,
            self.executed,
        );
    }
}

fn sweep(cfg: &MashupConfig, budget: usize, cache: Arc<PlanCache>) -> SweepOutcome {
    pareto_sweep_with(cfg, &mashup_workflows::srasearch::workflow(), budget, cache)
}

/// Measures the evaluate stage over the first [`EVAL_CANDIDATES`]
/// candidates of the SRAsearch space, cold (fresh cache per candidate,
/// including its own base plan) or warm (one shared pre-filled cache and
/// base report, as in the real sweep).
fn measure_eval(cfg: &MashupConfig, warm: bool) -> Row {
    let w = mashup_workflows::srasearch::workflow();
    let space = SearchSpace::new(cfg, &w);
    let cands = enumerate(&space, EVAL_CANDIDATES);
    let n = cands.len();
    let shared = Arc::new(PlanCache::new());
    let shared_base = Pdc::new(cfg.clone()).with_cache(shared.clone()).decide(&w);
    if warm {
        // Pre-fill the probe section for every tier the candidates touch.
        for c in &cands {
            let mat = materialize(&space, cfg, c);
            let pdc = Pdc::new(cfg.clone())
                .with_cache(shared.clone())
                .with_sizing(mat.sizing.clone());
            black_box(pdc.replan_structural(&w, &shared_base, &mat.workflow));
        }
    }
    let mut iters = 0u64;
    let mut total = 0.0f64;
    while total < 0.5 && iters < 50 {
        let start = Instant::now();
        for c in &cands {
            let mat = materialize(&space, cfg, c);
            let (cache, base) = if warm {
                (shared.clone(), &shared_base)
            } else {
                (Arc::new(PlanCache::new()), &shared_base)
            };
            let base_owned;
            let base = if warm {
                base
            } else {
                // Cold candidates re-plan the baseline too: nothing is
                // amortized when nothing is shared.
                base_owned = Pdc::new(cfg.clone()).with_cache(cache.clone()).decide(&w);
                &base_owned
            };
            let pdc = Pdc::new(cfg.clone())
                .with_cache(cache)
                .with_sizing(mat.sizing.clone());
            let (report, _) = pdc.replan_structural(&w, base, &mat.workflow);
            black_box(estimate_plan(cfg, &mat.workflow, &mat.sizing, &report));
        }
        total += start.elapsed().as_secs_f64();
        iters += 1;
    }
    let mean = total / iters as f64;
    let mode = if warm { "warm" } else { "cold" };
    let row = Row {
        name: format!("pareto/eval_{mode}"),
        budget: EVAL_CANDIDATES,
        mode,
        iters,
        mean_wall_secs: mean,
        generated: n,
        deduped: 0,
        pruned: 0,
        evaluated: n,
        coalesced: 0,
        executed: 0,
        candidates_per_sec: n as f64 / mean,
    };
    row.print();
    row
}

/// Measures a full end-to-end sweep (fresh shared cache, front execution
/// included) at `budget`.
fn measure_sweep(cfg: &MashupConfig, budget: usize) -> Row {
    let mut iters = 0u64;
    let mut total = 0.0f64;
    let mut last = None;
    while total < 0.5 && iters < 50 {
        let start = Instant::now();
        let out = black_box(sweep(cfg, budget, Arc::new(PlanCache::new())));
        total += start.elapsed().as_secs_f64();
        iters += 1;
        last = Some(out);
    }
    let out = last.expect("at least one sweep ran");
    let s = &out.stats;
    let mean = total / iters as f64;
    let row = Row {
        name: format!("pareto/sweep_b{budget}"),
        budget,
        mode: "sweep",
        iters,
        mean_wall_secs: mean,
        generated: s.generated,
        deduped: s.deduped,
        pruned: s.pruned,
        evaluated: s.evaluated,
        coalesced: s.coalesced,
        executed: s.executed,
        candidates_per_sec: s.generated as f64 / mean,
    };
    row.print();
    row
}

fn main() {
    // `cargo test` runs harness=false bench binaries with `--test`: run one
    // tiny sweep as a smoke check and measure nothing.
    if std::env::args().any(|a| a == "--test") {
        let out = sweep(&MashupConfig::aws(8), 20, Arc::new(PlanCache::new()));
        assert!(!out.front.is_empty(), "sweep produced an empty front");
        println!("pareto_search: ok (test mode)");
        return;
    }
    let cfg = MashupConfig::aws(8);
    let mut rows = Vec::new();
    let cold = measure_eval(&cfg, false);
    let warm = measure_eval(&cfg, true);
    println!(
        "pareto/warm_over_cold: {:.1}x",
        warm.candidates_per_sec / cold.candidates_per_sec
    );
    rows.push(cold);
    rows.push(warm);
    for budget in BUDGETS {
        rows.push(measure_sweep(&cfg, budget));
    }
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"budget\": {}, \"mode\": \"{}\", \"iters\": {}, \
             \"mean_wall_secs\": {}, \"generated\": {}, \"deduped\": {}, \"pruned\": {}, \
             \"evaluated\": {}, \"coalesced\": {}, \"executed\": {}, \
             \"candidates_per_sec\": {}}}",
            r.name,
            r.budget,
            r.mode,
            r.iters,
            r.mean_wall_secs,
            r.generated,
            r.deduped,
            r.pruned,
            r.evaluated,
            r.coalesced,
            r.executed,
            r.candidates_per_sec,
        ));
    }
    out.push_str("\n]\n");
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("pareto_search: failed to write {path}: {e}");
    }
}
