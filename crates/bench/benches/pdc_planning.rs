//! Planning-layer benchmarks for the content-addressed cache.
//!
//! Measures exactly what the cache is for: a cold `Pdc::decide` (every
//! profiling stage simulated from scratch), a warm one (all three stages
//! served from a pre-filled [`PlanCache`]), and a node-count sweep — the
//! Fig. 9 access pattern, where every cell re-probes the same tasks — with
//! the cache off and on.
//!
//! Run `BENCH_JSON=results/BENCH_pdc.json cargo bench --bench pdc_planning`
//! to refresh the committed numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use mashup_core::{MashupConfig, Pdc, PlanCache};
use std::hint::black_box;
use std::sync::Arc;

/// The Fig. 9 cluster sizes, shortened so one sweep stays sub-second.
const SWEEP_NODES: [usize; 5] = [2, 4, 8, 16, 32];

fn bench_cold_plan(c: &mut Criterion) {
    let w = mashup_workflows::srasearch::workflow();
    c.bench_function("pdc/plan_cold_srasearch_8n", |b| {
        b.iter(|| black_box(Pdc::new(MashupConfig::aws(8)).decide(&w)))
    });
}

fn bench_warm_plan(c: &mut Criterion) {
    let w = mashup_workflows::srasearch::workflow();
    let cache = Arc::new(PlanCache::new());
    // Fill every stage once; the measured runs are pure cache hits plus the
    // (uncached) decision rules and boundary refinement.
    Pdc::new(MashupConfig::aws(8))
        .with_cache(cache.clone())
        .decide(&w);
    c.bench_function("pdc/plan_warm_srasearch_8n", |b| {
        b.iter(|| {
            black_box(
                Pdc::new(MashupConfig::aws(8))
                    .with_cache(cache.clone())
                    .decide(&w),
            )
        })
    });
}

fn bench_sweep_uncached(c: &mut Criterion) {
    let w = mashup_workflows::srasearch::workflow();
    c.bench_function("pdc/node_sweep_uncached", |b| {
        b.iter(|| {
            for n in SWEEP_NODES {
                black_box(Pdc::new(MashupConfig::aws(n)).decide(&w));
            }
        })
    });
}

fn bench_sweep_cached(c: &mut Criterion) {
    let w = mashup_workflows::srasearch::workflow();
    c.bench_function("pdc/node_sweep_cached", |b| {
        b.iter(|| {
            // Fresh cache per sweep: the win measured here is intra-sweep
            // reuse (probes shared across node counts), not warm-over-warm.
            let cache = Arc::new(PlanCache::new());
            for n in SWEEP_NODES {
                black_box(
                    Pdc::new(MashupConfig::aws(n))
                        .with_cache(cache.clone())
                        .decide(&w),
                );
            }
        })
    });
}

criterion_group! {
    name = pdc_planning;
    config = Criterion::default().sample_size(10);
    targets = bench_cold_plan, bench_warm_plan, bench_sweep_uncached, bench_sweep_cached
}
criterion_main!(pdc_planning);
