//! Fig. 13 (extension) — static vs adaptive execution under spot
//! preemption.
//!
//! The paper's evaluation runs on dedicated on-demand capacity; this cell
//! extends it with the chaos layer: the same Mashup placement is executed
//! twice under an identical seeded preemption schedule — once riding the
//! faults out (static) and once with the online replanning controller on
//! (adaptive) — across an escalating number of reclaimed nodes. Every
//! fault comes from the schedule and every run is bit-reproducible, so
//! the cell regenerates byte-identically.

use crate::strategies::{run_strategy, Strategy};
use crate::sweep::par_map;
use crate::table::{f1, pct, usd, Table};
use mashup_cloud::{Fault, FaultPlan};
use mashup_core::{improvement_pct, ChaosSpec, MashupConfig};
use mashup_workflows::{epigenomics, genome1000, srasearch};
use serde::Serialize;

/// Cluster size of the chaos comparison: small enough that losing a few
/// spot nodes moves the placement argmin.
pub const CHAOS_NODES: usize = 16;

/// Reclaimed-node counts swept per workflow.
pub const PREEMPT_SWEEP: [usize; 4] = [2, 4, 8, 12];

/// One (workflow, preemption-count) comparison cell.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Row {
    /// Workflow name.
    pub workflow: String,
    /// Spot nodes reclaimed (out of [`CHAOS_NODES`]).
    pub preempted_nodes: usize,
    /// Reclaim instant as a fraction of the fault-free makespan.
    pub preempt_at_secs: f64,
    /// Fault-free Mashup makespan (reference).
    pub fault_free_makespan_secs: f64,
    /// Static plan riding out the preemptions.
    pub static_makespan_secs: f64,
    /// Online controller replanning the remaining subgraph.
    pub adaptive_makespan_secs: f64,
    /// Adaptive time improvement over static, percent.
    pub time_improvement_pct: f64,
    /// Static total expense, dollars.
    pub static_expense_dollars: f64,
    /// Adaptive total expense, dollars.
    pub adaptive_expense_dollars: f64,
}

/// Fig. 13 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13 {
    /// Cluster nodes the sweep ran on.
    pub nodes: usize,
    /// All comparison cells, workflow-major.
    pub rows: Vec<Fig13Row>,
}

/// A preemption schedule reclaiming flat nodes `1..=k` at `at_secs` (node 0
/// is spared so every sub-cluster keeps its structural survivor).
fn preempt_plan(k: usize, at_secs: f64) -> FaultPlan {
    let mut plan = FaultPlan::empty(13);
    for node in 1..=k {
        plan.faults.push(Fault::Preempt { at_secs, node });
    }
    plan
}

/// Regenerates the adaptive-execution cell: per paper workflow and
/// reclaimed-node count, the makespan/expense of the static Mashup plan vs
/// the replanning controller under the identical fault schedule.
pub fn fig13_adaptive() -> Fig13 {
    let wfs = vec![
        genome1000::workflow(),
        srasearch::workflow(),
        epigenomics::workflow(),
    ];
    // Fault-free reference runs size each workflow's reclaim instant.
    let baselines = par_map(wfs.clone(), |w| {
        run_strategy(&MashupConfig::aws(CHAOS_NODES), &w, Strategy::Mashup)
    });
    let cells: Vec<(usize, usize)> = (0..wfs.len())
        .flat_map(|wi| PREEMPT_SWEEP.iter().map(move |&k| (wi, k)))
        .collect();
    let rows = par_map(cells, |(wi, k)| {
        let w = &wfs[wi];
        let base = &baselines[wi];
        // Strike during the first quarter: enough of the run remains for
        // replanning to matter.
        let at = base.makespan_secs * 0.25;
        let plan = preempt_plan(k, at);
        let static_cfg = MashupConfig::aws(CHAOS_NODES).with_chaos(ChaosSpec::new(plan.clone()));
        let adaptive_cfg =
            MashupConfig::aws(CHAOS_NODES).with_chaos(ChaosSpec::new(plan).with_adaptive(true));
        let s = run_strategy(&static_cfg, w, Strategy::Mashup);
        let a = run_strategy(&adaptive_cfg, w, Strategy::Mashup);
        Fig13Row {
            workflow: w.name.clone(),
            preempted_nodes: k,
            preempt_at_secs: at,
            fault_free_makespan_secs: base.makespan_secs,
            static_makespan_secs: s.makespan_secs,
            adaptive_makespan_secs: a.makespan_secs,
            time_improvement_pct: improvement_pct(a.makespan_secs, s.makespan_secs),
            static_expense_dollars: s.expense.total(),
            adaptive_expense_dollars: a.expense.total(),
        }
    });
    Fig13 {
        nodes: CHAOS_NODES,
        rows,
    }
}

impl Fig13 {
    /// Renders the paper-style comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "workflow",
            "reclaimed",
            "fault-free",
            "static",
            "adaptive",
            "time improv.",
            "static $",
            "adaptive $",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workflow.clone(),
                format!("{}/{}", r.preempted_nodes, self.nodes),
                f1(r.fault_free_makespan_secs),
                f1(r.static_makespan_secs),
                f1(r.adaptive_makespan_secs),
                pct(r.time_improvement_pct),
                usd(r.static_expense_dollars),
                usd(r.adaptive_expense_dollars),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preempt_plan_spares_node_zero() {
        let p = preempt_plan(3, 100.0);
        assert_eq!(p.faults.len(), 3);
        assert!(p
            .faults
            .iter()
            .all(|f| matches!(f, Fault::Preempt { node, .. } if *node >= 1)));
    }
}
