//! The harness's process-wide planning cache.
//!
//! Every sweep cell that plans with the PDC (strategy runs, Fig. 9
//! placement maps, the accuracy table, the ablations) shares one
//! [`PlanCache`] so profiling work memoized by one cell is reused by every
//! other cell — across `--jobs N` workers too, since the cache is
//! concurrent. The cache is enabled by default and can be switched off
//! (`--no-plan-cache` in the `figures` binary) to measure the uncached
//! planning cost or to double-check that memoization does not perturb
//! results: cached and uncached runs are bit-identical by construction
//! (see `mashup_core::cache`), and `tests/determinism.rs` enforces it.

use mashup_core::{CacheStats, MashupConfig, Pdc, PlanCache};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(true);
static CACHE: OnceLock<Arc<PlanCache>> = OnceLock::new();

/// Enables or disables the shared planning cache for subsequent runs.
/// Disabling does not clear already-stored entries; it only makes
/// [`plan_cache`] return `None` so planners compute from scratch.
pub fn set_plan_cache_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// True when the shared planning cache is enabled.
pub fn plan_cache_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The shared planning cache, or `None` when disabled.
pub fn plan_cache() -> Option<Arc<PlanCache>> {
    if !plan_cache_enabled() {
        return None;
    }
    Some(CACHE.get_or_init(|| Arc::new(PlanCache::new())).clone())
}

/// A planner over `cfg`, wired to the shared cache when it is enabled.
pub fn cached_pdc(cfg: MashupConfig) -> Pdc {
    let pdc = Pdc::new(cfg);
    match plan_cache() {
        Some(cache) => pdc.with_cache(cache),
        None => pdc,
    }
}

/// Snapshot of the shared cache's counters (zeros if it was never used).
pub fn plan_cache_stats() -> CacheStats {
    match CACHE.get() {
        Some(c) => c.stats(),
        None => CacheStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_returns_none_and_reenabling_restores_it() {
        // Note: the flag is process-global, so restore it before exiting.
        set_plan_cache_enabled(false);
        assert!(plan_cache().is_none());
        set_plan_cache_enabled(true);
        let a = plan_cache().expect("enabled");
        let b = plan_cache().expect("enabled");
        assert!(Arc::ptr_eq(&a, &b), "same shared instance");
    }
}
