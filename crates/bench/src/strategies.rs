//! Uniform access to every execution strategy under comparison.

use mashup_baselines::{
    run_fusion_traced, run_kepler_traced, run_pegasus_traced, run_serverless_only_traced,
    run_traditional_traced, run_traditional_tuned_traced,
};
use mashup_core::{Mashup, MashupConfig, Tracer, WorkflowReport};
use mashup_dag::Workflow;
use serde::{Deserialize, Serialize};

/// Every execution strategy the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Plain all-VM phase-ordered execution.
    Traditional,
    /// All-VM with the paper's sub-cluster-split strengthening.
    TraditionalTuned,
    /// Everything on FaaS with checkpointing.
    ServerlessOnly,
    /// Costless-like greedy function fusion, then everything on FaaS.
    Fusion,
    /// Pegasus-like: task clustering + data reuse on VMs.
    Pegasus,
    /// Kepler-like: dataflow-fired pipelining on VMs.
    Kepler,
    /// Hybrid with the component-count threshold (no profiling).
    MashupWithoutPdc,
    /// The full system: PDC profiling + hybrid execution.
    Mashup,
}

impl Strategy {
    /// All strategies in presentation order.
    pub const ALL: [Strategy; 8] = [
        Strategy::Traditional,
        Strategy::TraditionalTuned,
        Strategy::ServerlessOnly,
        Strategy::Fusion,
        Strategy::Pegasus,
        Strategy::Kepler,
        Strategy::MashupWithoutPdc,
        Strategy::Mashup,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Traditional => "traditional",
            Strategy::TraditionalTuned => "traditional-tuned",
            Strategy::ServerlessOnly => "serverless-only",
            Strategy::Fusion => "fusion",
            Strategy::Pegasus => "pegasus",
            Strategy::Kepler => "kepler",
            Strategy::MashupWithoutPdc => "mashup-wo-pdc",
            Strategy::Mashup => "mashup",
        }
    }
}

/// Runs `strategy` on `workflow` under `cfg` and returns its report.
///
/// When a trace directory is configured (see [`crate::set_trace_dir`]), the
/// run is additionally recorded and written out as a JSONL flight-recorder
/// trace; the report itself is unaffected.
pub fn run_strategy(cfg: &MashupConfig, workflow: &Workflow, strategy: Strategy) -> WorkflowReport {
    let tracer = if crate::trace_dir::trace_dir().is_some() {
        Tracer::new()
    } else {
        Tracer::off()
    };
    let report = run_strategy_traced(cfg, workflow, strategy, &tracer);
    if tracer.is_on() {
        crate::trace_dir::write_trace(&report.workflow, strategy.label(), &tracer.take());
    }
    report
}

/// Runs `strategy` on `workflow` under `cfg`, recording the execution into
/// `tracer` (pass `Tracer::off()` for an unrecorded run).
pub fn run_strategy_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    strategy: Strategy,
    tracer: &Tracer,
) -> WorkflowReport {
    match strategy {
        Strategy::Traditional => run_traditional_traced(cfg, workflow, tracer),
        Strategy::TraditionalTuned => run_traditional_tuned_traced(cfg, workflow, tracer),
        Strategy::ServerlessOnly => run_serverless_only_traced(cfg, workflow, tracer),
        Strategy::Fusion => run_fusion_traced(cfg, workflow, tracer),
        Strategy::Pegasus => run_pegasus_traced(cfg, workflow, tracer),
        Strategy::Kepler => run_kepler_traced(cfg, workflow, tracer),
        Strategy::MashupWithoutPdc => Mashup::new(cfg.clone())
            .with_tracer(tracer.clone())
            .run_without_pdc(workflow),
        Strategy::Mashup => {
            let mut engine = Mashup::new(cfg.clone()).with_tracer(tracer.clone());
            if let Some(cache) = crate::plan_cache::plan_cache() {
                engine = engine.with_cache(cache);
            }
            engine.run(workflow).report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{Task, TaskProfile, WorkflowBuilder};

    #[test]
    fn every_strategy_completes_on_a_small_workflow() {
        let mut b = WorkflowBuilder::new("smoke");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(Task::new("t", 16, TaskProfile::trivial().compute(2.0)));
        let w = b.build().expect("valid");
        let cfg = MashupConfig::aws(2);
        for s in Strategy::ALL {
            let r = run_strategy(&cfg, &w, s);
            assert!(r.makespan_secs > 0.0, "{} produced empty run", s.label());
            assert_eq!(r.tasks.len(), 1, "{}", s.label());
        }
    }
}
