//! Uniform access to every execution strategy under comparison.

use mashup_baselines::{
    run_kepler, run_pegasus, run_serverless_only, run_traditional, run_traditional_tuned,
};
use mashup_core::{Mashup, MashupConfig, WorkflowReport};
use mashup_dag::Workflow;
use serde::{Deserialize, Serialize};

/// Every execution strategy the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Plain all-VM phase-ordered execution.
    Traditional,
    /// All-VM with the paper's sub-cluster-split strengthening.
    TraditionalTuned,
    /// Everything on FaaS with checkpointing.
    ServerlessOnly,
    /// Pegasus-like: task clustering + data reuse on VMs.
    Pegasus,
    /// Kepler-like: dataflow-fired pipelining on VMs.
    Kepler,
    /// Hybrid with the component-count threshold (no profiling).
    MashupWithoutPdc,
    /// The full system: PDC profiling + hybrid execution.
    Mashup,
}

impl Strategy {
    /// All strategies in presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::Traditional,
        Strategy::TraditionalTuned,
        Strategy::ServerlessOnly,
        Strategy::Pegasus,
        Strategy::Kepler,
        Strategy::MashupWithoutPdc,
        Strategy::Mashup,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Traditional => "traditional",
            Strategy::TraditionalTuned => "traditional-tuned",
            Strategy::ServerlessOnly => "serverless-only",
            Strategy::Pegasus => "pegasus",
            Strategy::Kepler => "kepler",
            Strategy::MashupWithoutPdc => "mashup-wo-pdc",
            Strategy::Mashup => "mashup",
        }
    }
}

/// Runs `strategy` on `workflow` under `cfg` and returns its report.
pub fn run_strategy(cfg: &MashupConfig, workflow: &Workflow, strategy: Strategy) -> WorkflowReport {
    match strategy {
        Strategy::Traditional => run_traditional(cfg, workflow),
        Strategy::TraditionalTuned => run_traditional_tuned(cfg, workflow),
        Strategy::ServerlessOnly => run_serverless_only(cfg, workflow),
        Strategy::Pegasus => run_pegasus(cfg, workflow),
        Strategy::Kepler => run_kepler(cfg, workflow),
        Strategy::MashupWithoutPdc => Mashup::new(cfg.clone()).run_without_pdc(workflow),
        Strategy::Mashup => {
            let mut engine = Mashup::new(cfg.clone());
            if let Some(cache) = crate::plan_cache::plan_cache() {
                engine = engine.with_cache(cache);
            }
            engine.run(workflow).report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{Task, TaskProfile, WorkflowBuilder};

    #[test]
    fn every_strategy_completes_on_a_small_workflow() {
        let mut b = WorkflowBuilder::new("smoke");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(Task::new("t", 16, TaskProfile::trivial().compute(2.0)));
        let w = b.build().expect("valid");
        let cfg = MashupConfig::aws(2);
        for s in Strategy::ALL {
            let r = run_strategy(&cfg, &w, s);
            assert!(r.makespan_secs > 0.0, "{} produced empty run", s.label());
            assert_eq!(r.tasks.len(), 1, "{}", s.label());
        }
    }
}
