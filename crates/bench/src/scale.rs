//! Synthetic DAG generators for the `dag_scale` benchmark.
//!
//! Three canonical shapes, parameterized by total task count, built through
//! [`from_task_graph`] so the benchmark exercises the raw-graph ingestion
//! path (name resolution, CSR adjacency, iterative level assignment) that
//! million-task imports hit in practice:
//!
//! * **chain** — `n` phases of one task each, the deepest possible DAG;
//! * **fan-out** — one splitter, an `n − 2`-wide worker phase, one sink,
//!   the widest possible DAG;
//! * **diamond** — repeated 4-task blocks (`a → {b, c} → d`), mixing joins
//!   with depth.
//!
//! Every generated task is deterministic (zero jitter), serverless-eligible
//! (compute far above the short-task threshold, small memory), free of I/O
//! bytes (the planner's event count, not bandwidth modeling, is what these
//! benches measure), and carries a per-shape `code_family` so warm pools,
//! bulk scheduling, and [`Pdc::with_probe_sharing`] can group the
//! population — the structure diagnostic M109 warns when wide inputs lack
//! exactly this.
//!
//! [`Pdc::with_probe_sharing`]: mashup_core::Pdc::with_probe_sharing

use mashup_dag::{from_task_graph, DependencyPattern, RawEdge, Task, TaskProfile, Workflow};

/// The generated DAG shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `n` phases × 1 task, `OneToOne`-chained.
    Chain,
    /// Splitter → `n − 2` parallel workers → sink.
    FanOut,
    /// Repeated `a → {b, c} → d` blocks chained end to end.
    Diamond,
}

impl Shape {
    /// All shapes, in display order.
    pub const ALL: [Shape; 3] = [Shape::Chain, Shape::FanOut, Shape::Diamond];

    /// Lowercase identifier used in bench names and the shared
    /// `code_family`.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Chain => "chain",
            Shape::FanOut => "fanout",
            Shape::Diamond => "diamond",
        }
    }
}

fn profile(shape: Shape, compute_secs: f64) -> TaskProfile {
    TaskProfile::trivial()
        .compute(compute_secs)
        .family(shape.name())
}

/// The raw tasks-plus-edges form of a `shape` graph with `tasks` tasks
/// (rounded to the shape's granularity, always ≥ the smallest instance).
/// `edited` marks one input index whose compute time is doubled — the
/// single-task edit the replan benches apply.
pub fn raw_graph(shape: Shape, tasks: usize, edited: Option<usize>) -> (Vec<Task>, Vec<RawEdge>) {
    let compute = |i: usize| if edited == Some(i) { 80.0 } else { 40.0 };
    let task = |name: String, i: usize| Task::new(name, 1, profile(shape, compute(i)));
    match shape {
        Shape::Chain => {
            let n = tasks.max(1);
            let tasks: Vec<Task> = (0..n).map(|i| task(format!("c{i}"), i)).collect();
            let edges = (1..n)
                .map(|i| {
                    RawEdge::new(
                        format!("c{}", i - 1),
                        format!("c{i}"),
                        DependencyPattern::OneToOne,
                    )
                })
                .collect();
            (tasks, edges)
        }
        Shape::FanOut => {
            let workers = tasks.saturating_sub(2).max(1);
            let mut out = Vec::with_capacity(workers + 2);
            let mut edges = Vec::with_capacity(2 * workers);
            out.push(task("src".into(), 0));
            for i in 0..workers {
                out.push(task(format!("w{i}"), i + 1));
                edges.push(RawEdge::new(
                    "src",
                    format!("w{i}"),
                    DependencyPattern::AllToAll,
                ));
            }
            out.push(task("sink".into(), workers + 1));
            for i in 0..workers {
                edges.push(RawEdge::new(
                    format!("w{i}"),
                    "sink",
                    DependencyPattern::AllToAll,
                ));
            }
            (out, edges)
        }
        Shape::Diamond => {
            let blocks = (tasks / 4).max(1);
            let mut out = Vec::with_capacity(blocks * 4);
            let mut edges = Vec::with_capacity(blocks * 4 + blocks - 1);
            for b in 0..blocks {
                let i = b * 4;
                out.push(task(format!("a{b}"), i));
                out.push(task(format!("b{b}"), i + 1));
                out.push(task(format!("c{b}"), i + 2));
                out.push(task(format!("d{b}"), i + 3));
                let e = |f: String, t: String| RawEdge::new(f, t, DependencyPattern::OneToOne);
                edges.push(e(format!("a{b}"), format!("b{b}")));
                edges.push(e(format!("a{b}"), format!("c{b}")));
                edges.push(e(format!("b{b}"), format!("d{b}")));
                edges.push(e(format!("c{b}"), format!("d{b}")));
                if b > 0 {
                    edges.push(e(format!("d{}", b - 1), format!("a{b}")));
                }
            }
            (out, edges)
        }
    }
}

/// Builds the `shape` workflow through [`from_task_graph`].
pub fn workflow(shape: Shape, tasks: usize) -> Workflow {
    build(shape, tasks, None)
}

/// Builds the `shape` workflow with one task's compute time doubled — the
/// minimal content edit whose incremental replan the benches measure.
pub fn edited_workflow(shape: Shape, tasks: usize, edited: usize) -> Workflow {
    build(shape, tasks, Some(edited))
}

fn build(shape: Shape, tasks: usize, edited: Option<usize>) -> Workflow {
    let (t, e) = raw_graph(shape, tasks, edited);
    from_task_graph(format!("scale-{}", shape.name()), t, e, 1.0e6).expect("generated DAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hit_requested_sizes_and_structures() {
        let c = workflow(Shape::Chain, 100);
        assert_eq!(c.task_count(), 100);
        assert_eq!(c.phases.len(), 100);

        let f = workflow(Shape::FanOut, 100);
        assert_eq!(f.task_count(), 100);
        assert_eq!(f.phases.len(), 3);
        assert_eq!(f.phases[1].tasks.len(), 98);

        let d = workflow(Shape::Diamond, 100);
        assert_eq!(d.task_count(), 100);
        assert_eq!(d.phases.len(), 75); // 25 blocks × (a | b,c | d)
    }

    #[test]
    fn edit_changes_exactly_one_task_digest() {
        let base = workflow(Shape::Diamond, 40);
        let edit = edited_workflow(Shape::Diamond, 40, 21); // b5
        let mut differing = 0;
        for (a, b) in base.task_refs().zip(edit.task_refs()) {
            assert_eq!(a, b);
            if base.task(a).profile.compute_secs_vm != edit.task(b).profile.compute_secs_vm {
                differing += 1;
            }
        }
        assert_eq!(differing, 1);
    }

    #[test]
    fn generated_workflows_are_batching_friendly() {
        // The wide fan-out must not trip the M109 scale-structure warning:
        // its workers share one code family.
        let f = workflow(Shape::FanOut, 200);
        assert!(mashup_analyze::analyze_workflow(&f).is_empty());
    }
}
