//! Ablation studies for the design choices DESIGN.md calls out:
//! the PDC itself, checkpointing across the FaaS cap, the warm-pool
//! exception for recurring tasks, pre-warming, and sub-cluster splits.

use crate::strategies::{run_strategy, Strategy};
use crate::table::{pct, Table};
use mashup_core::{execute, improvement_pct, MashupConfig, PlacementPlan, Platform};
use mashup_dag::{Task, TaskProfile, Workflow, WorkflowBuilder};
use mashup_workflows::{epigenomics, srasearch};
use serde::Serialize;

/// One ablation row: the design choice on vs off.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// What is being ablated.
    pub mechanism: String,
    /// Workload used.
    pub workload: String,
    /// Makespan with the mechanism enabled, seconds.
    pub with_secs: f64,
    /// Makespan with the mechanism disabled, seconds.
    pub without_secs: f64,
    /// Improvement the mechanism delivers, %.
    pub improvement_pct: f64,
}

/// Full ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct Ablations {
    /// All rows.
    pub rows: Vec<AblationRow>,
}

fn row(mechanism: &str, workload: &str, with_secs: f64, without_secs: f64) -> AblationRow {
    AblationRow {
        mechanism: mechanism.into(),
        workload: workload.into(),
        with_secs,
        without_secs,
        improvement_pct: improvement_pct(with_secs, without_secs),
    }
}

/// Ablation 1 — the PDC: full Mashup vs the component-count threshold.
fn ablate_pdc() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for w in [srasearch::workflow(), epigenomics::workflow()] {
        let cfg = MashupConfig::aws(8);
        let with = run_strategy(&cfg, &w, Strategy::Mashup);
        let without = run_strategy(&cfg, &w, Strategy::MashupWithoutPdc);
        rows.push(row(
            "pdc",
            &w.name,
            with.makespan_secs,
            without.makespan_secs,
        ));
    }
    rows
}

/// Ablation 2 — checkpointing: an over-cap task with a sane checkpoint
/// margin vs one whose margin leaves almost no usable window (the
/// no-checkpointing limit: nearly all window spent re-reading state).
fn ablate_checkpointing() -> Vec<AblationRow> {
    let build = |margin: f64| -> Workflow {
        let mut b = WorkflowBuilder::new("over-cap");
        b.initial_input_bytes(1e9);
        b.begin_phase();
        let mut profile = TaskProfile::trivial()
            .compute(2400.0)
            .io(1e8, 1e8)
            .memory(2.0)
            .checkpoint(1.0e9);
        // The margin knob is on the engine config; stash it via jitter-free
        // profile and vary the config below instead.
        profile.runtime_jitter = 0.0;
        b.add_task(Task::new("long", 1, profile));
        let _ = margin;
        b.build().expect("valid")
    };
    let w = build(30.0);
    let plan = PlacementPlan::uniform(&w, Platform::Serverless);
    let lean = {
        let mut cfg = MashupConfig::aws(2);
        cfg.checkpoint_margin_secs = 30.0;
        execute(&cfg, &w, &plan, "ckpt-30s")
    };
    let fat = {
        // A pathologically wide margin wastes most of each window — the
        // degenerate end of the checkpointing design space.
        let mut cfg = MashupConfig::aws(2);
        cfg.checkpoint_margin_secs = 700.0;
        execute(&cfg, &w, &plan, "ckpt-700s")
    };
    vec![row(
        "checkpoint-margin-30s-vs-700s",
        "synthetic 40-min task",
        lean.makespan_secs,
        fat.makespan_secs,
    )]
}

/// Ablation 3 — pre-warming: Mashup's prefetch on vs off.
fn ablate_prewarm() -> Vec<AblationRow> {
    let w = epigenomics::workflow();
    let plan = {
        // Fix the plan (wide middle serverless) so only pre-warming varies.
        let mut p = PlacementPlan::uniform(&w, Platform::VmCluster);
        for name in ["Filtercontams", "Sol2sanger", "Fast2bfq", "Map"] {
            let (r, _) = w.task_by_name(name).expect("exists");
            p.set(r, Platform::Serverless);
        }
        p
    };
    let mut on = MashupConfig::aws(8);
    on.prewarm = true;
    let mut off = on.clone();
    off.prewarm = false;
    let with = execute(&on, &w, &plan, "prewarm-on");
    let without = execute(&off, &w, &plan, "prewarm-off");
    vec![AblationRow {
        mechanism: "prewarm (cold-start seconds)".into(),
        workload: w.name.clone(),
        with_secs: with.total_cold_start_secs(),
        without_secs: without.total_cold_start_secs(),
        improvement_pct: improvement_pct(
            with.total_cold_start_secs().max(1e-9),
            without.total_cold_start_secs().max(1e-9),
        ),
    }]
}

/// Ablation 4 — warm-pool sharing for recurring tasks (`code_family`):
/// Mapmerge1/Mapmerge2 sharing microVMs vs not.
fn ablate_warm_family() -> Vec<AblationRow> {
    let shared = epigenomics::workflow();
    let mut split = shared.clone();
    for p in &mut split.phases {
        for t in &mut p.tasks {
            t.profile.code_family = None;
        }
    }
    let plan_for = |w: &Workflow| {
        let mut p = PlacementPlan::uniform(w, Platform::VmCluster);
        for name in ["Mapmerge1", "Mapmerge2"] {
            let (r, _) = w.task_by_name(name).expect("exists");
            p.set(r, Platform::Serverless);
        }
        p
    };
    let mut cfg = MashupConfig::aws(8);
    cfg.prewarm = false; // isolate the family-reuse effect
    let with = execute(&cfg, &shared, &plan_for(&shared), "family-shared");
    let without = execute(&cfg, &split, &plan_for(&split), "family-split");
    let cold = |r: &mashup_core::WorkflowReport| r.task("Mapmerge2").expect("ran").n_cold as f64;
    vec![AblationRow {
        mechanism: "code-family warm reuse (Mapmerge2 cold starts)".into(),
        workload: shared.name.clone(),
        with_secs: cold(&with),
        without_secs: cold(&without),
        improvement_pct: improvement_pct(cold(&with).max(1e-9), cold(&without).max(1e-9)),
    }]
}

/// Ablation 5 — sub-cluster splits on the traditional baseline. Run at 48
/// nodes: splitting halves each task's node share, so it only pays off
/// once the cluster is big enough that isolation beats width (on small
/// clusters it is rightly harmful — which is exactly why the PDC's split
/// search uses measured makespans).
fn ablate_subclusters() -> Vec<AblationRow> {
    let w = srasearch::workflow();
    let cfg = MashupConfig::aws(48);
    let single = run_strategy(&cfg, &w, Strategy::Traditional);
    let split = {
        let tuned = cfg.clone().with_subclusters(2);
        run_strategy(&tuned, &w, Strategy::Traditional)
    };
    vec![row(
        "two-sub-cluster split",
        &w.name,
        split.makespan_secs,
        single.makespan_secs,
    )]
}

/// Runs every ablation. Each study is an independent set of simulations,
/// so they fan out over the sweep workers; row order stays fixed.
pub fn ablations() -> Ablations {
    let studies: Vec<fn() -> Vec<AblationRow>> = vec![
        ablate_pdc,
        ablate_checkpointing,
        ablate_prewarm,
        ablate_warm_family,
        ablate_subclusters,
    ];
    let rows = crate::sweep::par_map(studies, |study| study())
        .into_iter()
        .flatten()
        .collect();
    Ablations { rows }
}

impl Ablations {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["mechanism", "workload", "with", "without", "benefit"]);
        for r in &self.rows {
            t.row(vec![
                r.mechanism.clone(),
                r.workload.clone(),
                format!("{:.1}", r.with_secs),
                format!("{:.1}", r.without_secs),
                pct(r.improvement_pct),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mechanism_helps_or_is_neutral() {
        let a = ablations();
        assert!(a.rows.len() >= 6);
        for r in &a.rows {
            assert!(
                r.improvement_pct > -5.0,
                "{} on {} hurt by {:.1}% ({} vs {})",
                r.mechanism,
                r.workload,
                -r.improvement_pct,
                r.with_secs,
                r.without_secs
            );
        }
        // The headline mechanisms deliver real benefits.
        let pdc = a
            .rows
            .iter()
            .find(|r| r.mechanism == "pdc")
            .expect("pdc row");
        assert!(pdc.improvement_pct >= 0.0);
        let warm = a
            .rows
            .iter()
            .find(|r| r.mechanism.starts_with("code-family"))
            .expect("family row");
        assert!(
            warm.with_secs < warm.without_secs,
            "family reuse cuts cold starts"
        );
    }
}
