//! Optional flight-recorder output for harness runs.
//!
//! When a trace directory is set (`--trace-dir` in the `figures` binary),
//! every [`crate::run_strategy`] call records its execution and writes one
//! deterministic JSONL trace file into the directory. File names are
//! `<workflow>__<strategy>__<n>.jsonl` where `n` is a process-wide counter,
//! so parallel sweep workers (`--jobs N`) never collide. Recording never
//! perturbs results — traced and untraced runs are byte-identical
//! (`tests/determinism.rs` enforces this on the figure outputs).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static DIR: OnceLock<PathBuf> = OnceLock::new();
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Directs all subsequent [`crate::run_strategy`] calls to record their
/// executions as JSONL files under `dir` (created if missing). Can only be
/// set once per process; later calls are ignored.
pub fn set_trace_dir(dir: &Path) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let _ = DIR.set(dir.to_path_buf());
}

/// The configured trace directory, if any.
pub fn trace_dir() -> Option<&'static Path> {
    DIR.get().map(PathBuf::as_path)
}

/// Writes `records` as one JSONL file for (`workflow`, `strategy`) under
/// the configured directory. No-op when tracing is off.
pub(crate) fn write_trace(workflow: &str, strategy: &str, records: &[mashup_core::TraceRecord]) {
    let Some(dir) = trace_dir() else { return };
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = format!("{}__{}__{n}.jsonl", sanitize(workflow), sanitize(strategy));
    let path = dir.join(name);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    std::fs::write(&path, mashup_sim::trace::to_jsonl(records))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_only() {
        assert_eq!(sanitize("1000genome v2/x"), "1000genome-v2-x");
        assert_eq!(sanitize("mashup-wo-pdc"), "mashup-wo-pdc");
    }
}
