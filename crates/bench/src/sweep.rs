//! Scenario-level parallel sweep runner — a thin veneer over the shared
//! worker pool in [`mashup_serve::pool`].
//!
//! Every figure is a grid of *independent* simulated scenarios (workflow ×
//! cluster size × strategy). Each scenario builds and drives its own
//! `Simulation`; runs are internally single-threaded and deterministic,
//! and — since the engine's world state moved from `Rc<RefCell<..>>` to
//! the `Send` [`mashup_sim::Shared`] handles — a whole scenario can execute
//! on any worker thread. The figure sweep and the planning service
//! (`mashup-serve`) share one execution path: [`par_map`] farms a work
//! list over scoped workers and returns results **in input order**, so
//! figure output is byte-identical whatever the worker count.
//!
//! The worker count comes from [`set_jobs`] (the figures binary's
//! `--jobs N`); `0` means one worker per available core.

pub use mashup_serve::pool::{jobs, par_map, set_jobs};

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep contract the figures depend on, exercised through the
    /// re-exported pool: deterministic input-order merge at any worker
    /// count.
    #[test]
    fn sweep_results_are_worker_count_independent() {
        let items: Vec<u64> = (0..48).collect();
        set_jobs(1);
        let serial = par_map(items.clone(), |i| i * 3 + 1);
        set_jobs(6);
        let parallel = par_map(items, |i| i * 3 + 1);
        set_jobs(0);
        assert_eq!(serial, parallel);
        assert_eq!(serial[47], 47 * 3 + 1);
    }
}
