//! # mashup-bench
//!
//! The experiment harness regenerating every table and figure of the
//! Mashup paper's evaluation (§5). Each `figN_*` function runs the
//! relevant strategies on the relevant workflows and returns a
//! serializable result that the `figures` binary prints as the paper
//! reports it (percent improvements over the traditional cluster, per-task
//! overhead breakdowns, placement maps, Pareto points).
//!
//! Absolute numbers come from the simulated substrates and are not
//! expected to match the paper's AWS measurements; the *shapes* — who
//! wins, by roughly what factor, where crossovers fall — are the
//! reproduction targets, recorded against the paper in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod figures;
pub mod plan_cache;
pub mod preflight;
pub mod scale;
pub mod strategies;
pub mod sweep;
pub mod table;
pub mod trace_dir;

pub use ablations::{ablations, AblationRow, Ablations};
pub use chaos::{fig13_adaptive, Fig13, Fig13Row};
pub use figures::*;
pub use plan_cache::{plan_cache, plan_cache_enabled, plan_cache_stats, set_plan_cache_enabled};
pub use preflight::preflight_paper_inputs;
pub use strategies::{run_strategy, run_strategy_traced, Strategy};
pub use sweep::{jobs, par_map, set_jobs};
pub use trace_dir::{set_trace_dir, trace_dir};
