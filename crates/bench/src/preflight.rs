//! Analyzer gate run ahead of the figures harness.
//!
//! Every figures cell consumes the paper workflows under the stock engine
//! configurations; [`preflight_paper_inputs`] runs the static analyzer
//! over exactly those inputs once, up front, so a bad input refuses the
//! whole harness with a readable report instead of panicking mid-figure.
//! The analyzer is read-only — it draws no randomness and touches no
//! simulation state — so the gate cannot perturb any simulated result.

use mashup_analyze::render_pretty;
use mashup_core::{preflight, MashupConfig};
use mashup_workflows::paper_workflows;

/// Statically analyzes every paper workflow under the stock AWS-like
/// configurations the figures use. `Ok(())` when everything is clean;
/// `Err` carries a pretty-rendered diagnostic report naming the offending
/// input.
pub fn preflight_paper_inputs() -> Result<(), String> {
    let configs = [MashupConfig::aws(4), MashupConfig::aws(64)];
    for w in paper_workflows() {
        for cfg in &configs {
            if let Err(e) = preflight(cfg, &w, None) {
                return Err(format!(
                    "workflow '{}' (cluster of {} nodes):\n{}",
                    w.name,
                    cfg.cluster.nodes,
                    render_pretty(&e.diagnostics)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inputs_preflight_clean() {
        assert_eq!(preflight_paper_inputs(), Ok(()));
    }
}
