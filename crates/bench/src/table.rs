//! Minimal aligned-column table printing for the figure harness.

/// A simple text table with a header row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats dollars with four decimals.
pub fn usd(v: f64) -> String {
    format!("${v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        // Aligned: value columns start at the same offset.
        let off2 = lines[2].find('1').expect("value present");
        let off3 = lines[3].find('2').expect("value present");
        assert_eq!(off2, off3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(33.333), "33.3%");
        assert_eq!(usd(0.5), "$0.5000");
    }
}
