//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p mashup-bench --bin figures            # everything
//! cargo run --release -p mashup-bench --bin figures -- fig6    # one figure
//! cargo run --release -p mashup-bench --bin figures -- --json results/
//! cargo run --release -p mashup-bench --bin figures -- --jobs 8
//! cargo run --release -p mashup-bench --bin figures -- --no-plan-cache
//! cargo run --release -p mashup-bench --bin figures -- --trace-dir traces/
//! ```
//!
//! `--jobs N` sets the scenario-sweep worker count (default: one per core);
//! `--no-plan-cache` disables the shared PDC profiling cache; `--trace-dir
//! DIR` additionally records every strategy run as a JSONL flight-recorder
//! trace under DIR. Output is byte-identical for any N, with the cache on
//! or off, and with or without tracing.

// This harness's stdout IS the figure byte-stream and its stderr the
// suite stats — prints are the product here, and the wall-clock reads
// feed those stats only (no simulated quantity sees them).
// lint: allow-file(adhoc-telemetry)
// lint: allow-file(wall-clock)
use mashup_bench as bench;
use serde::Serialize;
use std::io::Write as _;
use std::time::Instant;

fn emit<T: Serialize>(json_dir: Option<&str>, name: &str, value: &T, rendered: String) {
    println!("==== {name} ====");
    println!("{rendered}");
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = format!("{dir}/{name}.json");
        let mut f = std::fs::File::create(&path).expect("create result file");
        let body = serde_json::to_string_pretty(value).expect("serialize result");
        f.write_all(body.as_bytes()).expect("write result file");
        println!("[written {path}]\n");
    }
}

fn main() {
    // Refuse bad inputs before any cell runs. The analyzer is read-only,
    // so a clean pass leaves every simulated result untouched (and prints
    // nothing — figures output must stay byte-identical across runs).
    if let Err(report) = bench::preflight_paper_inputs() {
        eprintln!("figures: static analysis refused the paper inputs\n{report}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_dir = Some(it.next().unwrap_or_else(|| "results".into()));
        } else if a == "--jobs" {
            let n = it
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--jobs requires a number");
                    std::process::exit(2);
                });
            bench::set_jobs(n);
        } else if a == "--no-plan-cache" {
            bench::set_plan_cache_enabled(false);
        } else if a == "--trace-dir" {
            let dir = it.next().unwrap_or_else(|| {
                eprintln!("--trace-dir requires a directory");
                std::process::exit(2);
            });
            bench::set_trace_dir(std::path::Path::new(&dir));
        } else {
            wanted.push(a.to_lowercase());
        }
    }
    let started = Instant::now();
    let all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let want = |key: &str| all || wanted.iter().any(|w| w == key);
    let dir = json_dir.as_deref();

    if want("fig2") {
        let f = bench::fig02_env_choice();
        emit(dir, "fig02_env_choice", &f, f.render());
    }
    if want("fig4a") {
        let f = bench::fig04a_io_overhead();
        emit(dir, "fig04a_io_overhead", &f, f.render());
    }
    if want("fig4b") {
        let f = bench::fig04b_cold_start();
        emit(dir, "fig04b_cold_start", &f, f.render());
    }
    if want("fig4c") {
        let f = bench::fig04c_scaling();
        emit(dir, "fig04c_scaling", &f, f.render());
    }
    if want("fig5") {
        let f = bench::fig05_objectives();
        emit(dir, "fig05_objectives", &f, f.render());
    }
    if want("fig6") {
        let f = bench::fig06_exec_time();
        emit(dir, "fig06_exec_time", &f, f.render());
    }
    if want("fig7") {
        let f = bench::fig07_expense();
        emit(dir, "fig07_expense", &f, f.render());
    }
    if want("fig8") {
        let f = bench::fig08_vm_families();
        emit(dir, "fig08_vm_families", &f, f.render());
    }
    if want("fig9") {
        let f = bench::fig09_placement();
        emit(dir, "fig09_placement", &f, f.render());
    }
    if want("fig10") {
        let f = bench::fig10_sysmetrics();
        emit(dir, "fig10_sysmetrics", &f, f.render());
    }
    if want("fig11") {
        let f = bench::fig11_pareto();
        emit(dir, "fig11_pareto", &f, f.render());
    }
    // Opt-in only — deliberately NOT covered by `all`: the search overlay
    // extends the paper rather than reproducing it, and keeping it out of
    // the default run keeps the golden figure set byte-stable.
    if wanted.iter().any(|w| w == "fig11search") {
        let f = bench::fig11_search();
        emit(dir, "fig11_search", &f, f.render());
    }
    if want("fig12") {
        let f = bench::fig12_managers();
        emit(dir, "fig12_managers", &f, f.render());
    }
    // Opt-in only — deliberately NOT covered by `all`: the chaos cell
    // extends the paper rather than reproducing it, and keeping it out of
    // the default run keeps the golden figure set byte-stable.
    if wanted.iter().any(|w| w == "fig13") {
        let f = bench::fig13_adaptive();
        emit(dir, "fig13_adaptive", &f, f.render());
    }
    if want("inputs") {
        let f = bench::text_input_sizes();
        emit(dir, "text_input_sizes", &f, f.render());
    }
    if want("half") {
        let f = bench::text_half_cluster();
        emit(dir, "text_half_cluster", &f, f.render());
    }
    if want("gcp") {
        let f = bench::text_gcp();
        emit(dir, "text_gcp", &f, f.render());
    }
    if want("overheads") {
        let f = bench::text_overheads();
        emit(dir, "text_overheads", &f, f.render());
    }
    if want("accuracy") {
        let f = bench::text_pdc_accuracy();
        emit(dir, "text_pdc_accuracy", &f, f.render());
    }
    if want("expense") {
        println!("==== expense breakdown (48 nodes) ====");
        println!("{}", bench::expense_summary(48));
    }
    if want("ablations") {
        let f = bench::ablations();
        emit(dir, "ablations", &f, f.render());
    }

    // Suite-level summary: wall time plus what the planning cache did.
    // Stats go to stderr so they never perturb the figure byte-streams.
    let wall = started.elapsed().as_secs_f64();
    if bench::plan_cache_enabled() {
        let s = bench::plan_cache_stats();
        eprintln!(
            "[plan-cache] calibration {}h/{}m  vm-profile {}h/{}m  probes {}h/{}m  \
             ({} entries, {:.1}% hits overall)",
            s.calibration.hits,
            s.calibration.misses,
            s.vm_profile.hits,
            s.vm_profile.misses,
            s.probes.hits,
            s.probes.misses,
            s.entries(),
            if s.hits() + s.misses() == 0 {
                0.0
            } else {
                s.hits() as f64 * 100.0 / (s.hits() + s.misses()) as f64
            },
        );
        eprintln!(
            "[plan-cache] miss-side planning compute: calibration {:.2}s, \
             vm-profile {:.2}s, probes {:.2}s (summed across workers)",
            s.calibration.compute_secs, s.vm_profile.compute_secs, s.probes.compute_secs,
        );
    } else {
        eprintln!("[plan-cache] disabled (--no-plan-cache)");
    }
    eprintln!("[figures] total wall time {wall:.2}s");
}
