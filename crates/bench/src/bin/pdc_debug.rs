//! Prints the PDC's raw numbers for one workflow at one cluster size.
//!
//! ```text
//! cargo run --release -p mashup-bench --bin pdc_debug -- SRAsearch 64
//! ```

// A debugging CLI: stdout is its entire user interface.
// lint: allow-file(adhoc-telemetry)
use mashup_core::{MashupConfig, Pdc};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("SRAsearch");
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let w = match name {
        "1000Genome" => mashup_workflows::genome1000::workflow(),
        "Epigenomics" => mashup_workflows::epigenomics::workflow(),
        _ => mashup_workflows::srasearch::workflow(),
    };
    let cfg = MashupConfig::aws(nodes);
    let pdc = Pdc::new(cfg).decide(&w);
    println!(
        "{} @ {} nodes  (subclusters={}, alpha={:.4}, beta={:.2}, store={:.2e} B/s)",
        w.name, nodes, pdc.subclusters, pdc.factors.alpha, pdc.factors.beta, pdc.factors.store_bps
    );
    for d in &pdc.decisions {
        println!(
            "  {:<18} C={:<5} T_vm={:>9.1}s  T_sl_est={:>9.1}s  probe={:>8.1}s  -> {}{}",
            d.name,
            d.components,
            d.t_vm_secs,
            d.t_serverless_est_secs,
            d.probe_secs,
            d.platform,
            d.forced_vm_reason
                .as_deref()
                .map(|r| format!("  [{r}]"))
                .unwrap_or_default()
        );
    }
}
