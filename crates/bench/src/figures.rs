//! One harness function per paper table/figure. See `EXPERIMENTS.md` for
//! paper-vs-measured numbers.

use crate::strategies::{run_strategy, Strategy};
use crate::sweep::par_map;
use crate::table::{f1, pct, usd, Table};
use mashup_core::{improvement_pct, Mashup, MashupConfig, Objective, Platform};
use mashup_dag::{Task, TaskProfile, Workflow, WorkflowBuilder};
use mashup_workflows::{epigenomics, genome1000, srasearch};
use serde::Serialize;

/// The cluster sizes of the paper's sweeps (Figs. 6, 7, 9).
pub const CLUSTER_SIZES: [usize; 8] = [2, 4, 8, 16, 32, 48, 64, 96];

/// The cluster size of the paper's single-size comparisons (Figs. 8, 12).
pub const DEFAULT_NODES: usize = 48;

fn paper_workflows() -> Vec<Workflow> {
    vec![
        genome1000::workflow(),
        srasearch::workflow(),
        epigenomics::workflow(),
    ]
}

// ---------------------------------------------------------------------------
// Fig. 2 — preferable environment per SRAsearch task
// ---------------------------------------------------------------------------

/// One task's execution time under the three environments, % of the max.
#[derive(Debug, Clone, Serialize)]
pub struct Fig02Row {
    /// Task name.
    pub task: String,
    /// Serverless execution time, % of the row max.
    pub serverless_pct: f64,
    /// 4-node cluster, % of the row max.
    pub nodes4_pct: f64,
    /// 64-node cluster, % of the row max.
    pub nodes64_pct: f64,
}

/// Fig. 2 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig02 {
    /// Per-task rows.
    pub rows: Vec<Fig02Row>,
}

/// Regenerates Fig. 2: per-task SRAsearch execution time on serverless vs a
/// 4-node vs a 64-node cluster (as % of each task's max).
pub fn fig02_env_choice() -> Fig02 {
    let w = srasearch::workflow();
    let sl = run_strategy(&MashupConfig::aws(4), &w, Strategy::ServerlessOnly);
    let vm4 = run_strategy(&MashupConfig::aws(4), &w, Strategy::Traditional);
    let vm64 = run_strategy(&MashupConfig::aws(64), &w, Strategy::Traditional);
    let rows = w
        .task_refs()
        .map(|r| {
            let name = &w.task(r).name;
            let t_sl = sl.task(name).expect("task ran").makespan_secs();
            let t_4 = vm4.task(name).expect("task ran").makespan_secs();
            let t_64 = vm64.task(name).expect("task ran").makespan_secs();
            let max = t_sl.max(t_4).max(t_64).max(1e-12);
            Fig02Row {
                task: name.clone(),
                serverless_pct: t_sl / max * 100.0,
                nodes4_pct: t_4 / max * 100.0,
                nodes64_pct: t_64 / max * 100.0,
            }
        })
        .collect();
    Fig02 { rows }
}

impl Fig02 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["task", "serverless", "4 nodes", "64 nodes"]);
        for r in &self.rows {
            t.row(vec![
                r.task.clone(),
                pct(r.serverless_pct),
                pct(r.nodes4_pct),
                pct(r.nodes64_pct),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — serverless overheads
// ---------------------------------------------------------------------------

/// One task's overhead share.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Task name.
    pub task: String,
    /// The overhead as % of the task's busy time.
    pub share_pct: f64,
}

/// Fig. 4(a)/(b) results.
#[derive(Debug, Clone, Serialize)]
pub struct Fig04ab {
    /// Which overhead (`"io"` or `"cold-start"`).
    pub metric: String,
    /// Per-task rows.
    pub rows: Vec<OverheadRow>,
}

/// Regenerates Fig. 4(a): I/O time share of serverless execution for
/// Frequency (1000Genome), Map (Epigenomics), and Individual (1000Genome).
pub fn fig04a_io_overhead() -> Fig04ab {
    let rows = overhead_rows(
        &[
            ("1000Genome", "Frequency"),
            ("Epigenomics", "Map"),
            ("1000Genome", "Individual"),
        ],
        |t| t.io_fraction(),
    );
    Fig04ab {
        metric: "io".into(),
        rows,
    }
}

/// Regenerates Fig. 4(b): cold-start share for Bowtie2 (SRAsearch), Map
/// (Epigenomics), and Chr21 (Epigenomics).
pub fn fig04b_cold_start() -> Fig04ab {
    let rows = overhead_rows(
        &[
            ("SRAsearch", "Bowtie2"),
            ("Epigenomics", "Map"),
            ("Epigenomics", "Chr21"),
        ],
        |t| t.cold_start_fraction(),
    );
    Fig04ab {
        metric: "cold-start".into(),
        rows,
    }
}

fn overhead_rows(
    targets: &[(&str, &str)],
    metric: impl Fn(&mashup_core::TaskReport) -> f64,
) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for w in paper_workflows() {
        let wanted: Vec<&str> = targets
            .iter()
            .filter(|(wf, _)| *wf == w.name)
            .map(|(_, t)| *t)
            .collect();
        if wanted.is_empty() {
            continue;
        }
        let report = run_strategy(&MashupConfig::aws(4), &w, Strategy::ServerlessOnly);
        for task in wanted {
            let tr = report.task(task).expect("task ran");
            rows.push(OverheadRow {
                task: task.to_string(),
                share_pct: metric(tr) * 100.0,
            });
        }
    }
    // Preserve the order requested.
    rows.sort_by_key(|r| {
        targets
            .iter()
            .position(|(_, t)| *t == r.task)
            .expect("requested task")
    });
    rows
}

impl Fig04ab {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["task", &format!("{} % of busy time", self.metric)]);
        for r in &self.rows {
            t.row(vec![r.task.clone(), pct(r.share_pct)]);
        }
        t.render()
    }
}

/// Fig. 4(c): scaling time vs component count.
#[derive(Debug, Clone, Serialize)]
pub struct Fig04c {
    /// Component counts swept.
    pub components: Vec<usize>,
    /// Per-task series of scaling seconds, keyed by task name.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Regenerates Fig. 4(c): serverless scaling time against component count
/// (100–1500) for tasks with the Individual / Frequency / Map profiles.
pub fn fig04c_scaling() -> Fig04c {
    let counts = vec![100usize, 500, 1000, 1500];
    let profiles: Vec<(String, TaskProfile)> = {
        let g = genome1000::workflow();
        let e = epigenomics::workflow();
        vec![
            (
                "Individual".into(),
                g.task_by_name("Individual")
                    .expect("exists")
                    .1
                    .profile
                    .clone(),
            ),
            (
                "Frequency".into(),
                g.task_by_name("Frequency")
                    .expect("exists")
                    .1
                    .profile
                    .clone(),
            ),
            (
                "Map".into(),
                e.task_by_name("Map").expect("exists").1.profile.clone(),
            ),
        ]
    };
    let mut series = Vec::new();
    for (name, profile) in profiles {
        let mut points = Vec::new();
        for &c in &counts {
            let mut b = WorkflowBuilder::new(format!("scaling-{name}-{c}"));
            b.initial_input_bytes(profile.input_bytes * c as f64);
            b.begin_phase();
            b.add_task(Task::new(name.clone(), c, profile.clone()));
            let w = b.build().expect("valid");
            let report = run_strategy(&MashupConfig::aws(4), &w, Strategy::ServerlessOnly);
            points.push(report.tasks[0].scaling_secs);
        }
        series.push((name, points));
    }
    Fig04c {
        components: counts,
        series,
    }
}

impl Fig04c {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut header = vec!["task".to_string()];
        header.extend(self.components.iter().map(|c| format!("C={c}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        for (name, points) in &self.series {
            let mut row = vec![name.clone()];
            row.extend(points.iter().map(|&p| format!("{p:.1}s")));
            t.row(row);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 5 — optimization objective
// ---------------------------------------------------------------------------

/// One objective's outcome, % of the max across objectives.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05Row {
    /// Objective label.
    pub objective: String,
    /// Execution time, % of max.
    pub time_pct: f64,
    /// Expense, % of max.
    pub expense_pct: f64,
}

/// Fig. 5 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05 {
    /// Per-objective rows.
    pub rows: Vec<Fig05Row>,
}

/// Regenerates Fig. 5: Mashup on SRAsearch under the three optimization
/// objectives (execution time / expense / both).
pub fn fig05_objectives() -> Fig05 {
    let w = srasearch::workflow();
    let cfg = MashupConfig::aws(DEFAULT_NODES);
    let outcomes: Vec<(String, f64, f64)> = par_map(
        vec![
            ("time", Objective::ExecutionTime),
            ("expense", Objective::Expense),
            ("both", Objective::Both),
        ],
        |(label, obj)| {
            let mut engine = Mashup::new(cfg.clone()).with_objective(obj);
            if let Some(cache) = crate::plan_cache::plan_cache() {
                engine = engine.with_cache(cache);
            }
            let tracer = if crate::trace_dir::trace_dir().is_some() {
                mashup_core::Tracer::new()
            } else {
                mashup_core::Tracer::off()
            };
            let o = engine.with_tracer(tracer.clone()).run(&w);
            if tracer.is_on() {
                crate::trace_dir::write_trace(
                    &o.report.workflow,
                    &format!("mashup-{label}"),
                    &tracer.take(),
                );
            }
            (
                label.to_string(),
                o.report.makespan_secs,
                o.report.expense.total(),
            )
        },
    );
    let max_t = outcomes.iter().map(|o| o.1).fold(0.0, f64::max).max(1e-12);
    let max_e = outcomes.iter().map(|o| o.2).fold(0.0, f64::max).max(1e-12);
    Fig05 {
        rows: outcomes
            .into_iter()
            .map(|(objective, t, e)| Fig05Row {
                objective,
                time_pct: t / max_t * 100.0,
                expense_pct: e / max_e * 100.0,
            })
            .collect(),
    }
}

impl Fig05 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["objective", "exec time (% max)", "expense (% max)"]);
        for r in &self.rows {
            t.row(vec![
                r.objective.clone(),
                pct(r.time_pct),
                pct(r.expense_pct),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Figs. 6 & 7 — improvement over the traditional cluster across sizes
// ---------------------------------------------------------------------------

/// Improvement sweep result (Figs. 6 and 7 share the shape).
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// `"time"` or `"expense"`.
    pub metric: String,
    /// Cluster sizes swept.
    pub sizes: Vec<usize>,
    /// Per-workflow improvement % series over the traditional cluster.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Regenerates Fig. 6: Mashup's execution-time improvement over the
/// traditional cluster for every workflow and cluster size.
pub fn fig06_exec_time() -> SweepResult {
    sweep("time", |mashup, base| {
        improvement_pct(mashup.makespan_secs, base.makespan_secs)
    })
}

/// Regenerates Fig. 7: Mashup's expense improvement over the traditional
/// cluster for every workflow and cluster size.
pub fn fig07_expense() -> SweepResult {
    sweep("expense", |mashup, base| {
        improvement_pct(mashup.expense.total(), base.expense.total())
    })
}

fn sweep(
    metric: &str,
    score: impl Fn(&mashup_core::WorkflowReport, &mashup_core::WorkflowReport) -> f64 + Sync,
) -> SweepResult {
    // Every (workflow, size) cell is an independent pair of simulations;
    // fan the whole grid out and regroup in order afterwards.
    let workflows = paper_workflows();
    let cells: Vec<(usize, usize)> = (0..workflows.len())
        .flat_map(|wi| (0..CLUSTER_SIZES.len()).map(move |si| (wi, si)))
        .collect();
    let points = par_map(cells, |(wi, si)| {
        let w = &workflows[wi];
        let cfg = MashupConfig::aws(CLUSTER_SIZES[si]);
        let base = run_strategy(&cfg, w, Strategy::TraditionalTuned);
        let mashup = run_strategy(&cfg, w, Strategy::Mashup);
        score(&mashup, &base)
    });
    let series = workflows
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let start = wi * CLUSTER_SIZES.len();
            (
                w.name.clone(),
                points[start..start + CLUSTER_SIZES.len()].to_vec(),
            )
        })
        .collect();
    SweepResult {
        metric: metric.into(),
        sizes: CLUSTER_SIZES.to_vec(),
        series,
    }
}

impl SweepResult {
    /// Mean improvement per workflow.
    pub fn averages(&self) -> Vec<(String, f64)> {
        self.series
            .iter()
            .map(|(name, pts)| {
                (
                    name.clone(),
                    pts.iter().sum::<f64>() / pts.len().max(1) as f64,
                )
            })
            .collect()
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut header = vec!["workflow".to_string()];
        header.extend(self.sizes.iter().map(|s| format!("{s}n")));
        header.push("avg".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        for (name, pts) in &self.series {
            let mut row = vec![name.clone()];
            row.extend(pts.iter().map(|&p| pct(p)));
            row.push(pct(pts.iter().sum::<f64>() / pts.len().max(1) as f64));
            t.row(row);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — cheap and expensive VM families
// ---------------------------------------------------------------------------

/// One (workflow, family) improvement pair.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08Row {
    /// Workflow name.
    pub workflow: String,
    /// VM family label.
    pub family: String,
    /// Time improvement % over the same-family traditional cluster.
    pub time_improvement_pct: f64,
    /// Expense improvement %.
    pub expense_improvement_pct: f64,
}

/// Fig. 8 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08 {
    /// All rows.
    pub rows: Vec<Fig08Row>,
}

/// Regenerates Fig. 8: Mashup with the cheap (m5-like) and expensive
/// (r5b-like) VM families on a 48-node cluster.
pub fn fig08_vm_families() -> Fig08 {
    let mut cells = Vec::new();
    for w in [genome1000::workflow(), srasearch::workflow()] {
        for (family, cfg) in [
            ("cheap (m5)", MashupConfig::aws_cheap(DEFAULT_NODES)),
            (
                "expensive (r5b)",
                MashupConfig::aws_expensive(DEFAULT_NODES),
            ),
        ] {
            cells.push((w.clone(), family, cfg));
        }
    }
    let rows = par_map(cells, |(w, family, cfg)| {
        let base = run_strategy(&cfg, &w, Strategy::TraditionalTuned);
        let mashup = run_strategy(&cfg, &w, Strategy::Mashup);
        Fig08Row {
            workflow: w.name.clone(),
            family: family.into(),
            time_improvement_pct: improvement_pct(mashup.makespan_secs, base.makespan_secs),
            expense_improvement_pct: improvement_pct(mashup.expense.total(), base.expense.total()),
        }
    });
    Fig08 { rows }
}

impl Fig08 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workflow", "family", "time improv.", "expense improv."]);
        for r in &self.rows {
            t.row(vec![
                r.workflow.clone(),
                r.family.clone(),
                pct(r.time_improvement_pct),
                pct(r.expense_improvement_pct),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — placement maps
// ---------------------------------------------------------------------------

/// Placement map for one workflow: rows are strategies/cluster sizes,
/// columns are tasks, cells are platforms.
#[derive(Debug, Clone, Serialize)]
pub struct Fig09Workflow {
    /// Workflow name.
    pub workflow: String,
    /// Task names in DAG order.
    pub tasks: Vec<String>,
    /// `(row label, placements)` — `true` = serverless (the paper's green).
    pub rows: Vec<(String, Vec<bool>)>,
}

/// Fig. 9 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig09 {
    /// One map per workflow.
    pub workflows: Vec<Fig09Workflow>,
}

/// Regenerates Fig. 9: the placement each strategy chooses for every task —
/// the w/o-PDC row plus the PDC's choice at each cluster size.
pub fn fig09_placement() -> Fig09 {
    let wfs = paper_workflows();
    // One work item per map row: the w/o-PDC plan or one PDC decision.
    let items: Vec<(usize, Option<usize>)> = (0..wfs.len())
        .flat_map(|wi| {
            std::iter::once((wi, None))
                .chain((0..CLUSTER_SIZES.len()).map(move |si| (wi, Some(si))))
        })
        .collect();
    let rows_flat: Vec<(String, Vec<bool>)> = par_map(items, |(wi, si)| {
        let w = &wfs[wi];
        match si {
            None => {
                // w/o PDC at the default size.
                let cfg = MashupConfig::aws(DEFAULT_NODES);
                let naive = mashup_core::plan_without_pdc(&cfg, w);
                (
                    "w/o PDC".to_string(),
                    w.task_refs()
                        .map(|r| naive.platform(r) == Ok(Platform::Serverless))
                        .collect(),
                )
            }
            Some(si) => {
                let n = CLUSTER_SIZES[si];
                let pdc = crate::plan_cache::cached_pdc(MashupConfig::aws(n)).decide(w);
                (
                    format!("{n} nodes"),
                    w.task_refs()
                        .map(|r| pdc.plan.platform(r) == Ok(Platform::Serverless))
                        .collect(),
                )
            }
        }
    });
    let rows_per_wf = 1 + CLUSTER_SIZES.len();
    let workflows = wfs
        .iter()
        .enumerate()
        .map(|(wi, w)| Fig09Workflow {
            workflow: w.name.clone(),
            tasks: w.task_refs().map(|r| w.task(r).name.clone()).collect(),
            rows: rows_flat[wi * rows_per_wf..(wi + 1) * rows_per_wf].to_vec(),
        })
        .collect();
    Fig09 { workflows }
}

impl Fig09 {
    /// Renders the paper-style maps (S = serverless/green, V = VM/blue).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for wf in &self.workflows {
            out.push_str(&format!("\n{}:\n", wf.workflow));
            let mut header = vec!["placement".to_string()];
            header.extend(wf.tasks.clone());
            let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let mut t = Table::new(&header_refs);
            for (label, cells) in &wf.rows {
                let mut row = vec![label.clone()];
                row.extend(cells.iter().map(|&s| if s { "S" } else { "V" }.to_string()));
                t.row(row);
            }
            out.push_str(&t.render());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 10 — system metrics (IPC, network, memory bandwidth)
// ---------------------------------------------------------------------------

/// Synthesized system-metric traces for one task on both platforms.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Task {
    /// Task label (may include workflow context).
    pub task: String,
    /// Normalized IPC on the cluster (1.0 = reference core, degraded by
    /// co-residency contention).
    pub ipc_vm: f64,
    /// Normalized IPC inside a serverless function.
    pub ipc_serverless: f64,
    /// Fraction of the task's serverless busy time spent on network I/O.
    pub net_share_serverless: f64,
    /// Fraction of the task's cluster busy time spent on network I/O.
    pub net_share_vm: f64,
}

/// Fig. 10 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// Per-task metric summaries.
    pub tasks: Vec<Fig10Task>,
}

/// Regenerates Fig. 10's system-metric comparison for the five tasks the
/// paper plots: effective IPC per platform and the network-time share.
///
/// IPC excludes plain timesharing (sharing a core halves throughput but
/// not per-instruction efficiency): the VM-side IPC is the reciprocal of
/// the memory-pressure *thrash* multiplier at a 96-node cluster (the size
/// regime where the paper discusses these placements), and the
/// serverless-side IPC is the reciprocal of the profile's slowdown. The
/// network-time shares come from executed runs. The paper reads all of
/// these off hardware counters; here they come from the model's own
/// mechanisms.
pub fn fig10_sysmetrics() -> Fig10 {
    let targets = [
        ("1000Genome", "Individual"),
        ("1000Genome", "Individual-Merge"),
        ("SRAsearch", "FasterQ-Dump"),
        ("SRAsearch", "Merge1"),
        ("Epigenomics", "FastQSplit"),
    ];
    let nodes = 96usize;
    let mut tasks = Vec::new();
    for w in paper_workflows() {
        let wanted: Vec<&str> = targets
            .iter()
            .filter(|(wf, _)| *wf == w.name)
            .map(|(_, t)| *t)
            .collect();
        if wanted.is_empty() {
            continue;
        }
        let cfg = MashupConfig::aws(nodes);
        let vm = run_strategy(&cfg, &w, Strategy::Traditional);
        let sl = run_strategy(&cfg, &w, Strategy::ServerlessOnly);
        for name in wanted {
            let (_, task) = w.task_by_name(name).expect("exists");
            let vm_t = vm.task(name).expect("ran");
            let sl_t = sl.task(name).expect("ran");
            let instance = &cfg.cluster.instance;
            let load = task.components.div_ceil(nodes);
            let factor = mashup_cloud::VmCluster::timeshare_factor(
                load,
                instance.cores,
                task.profile.memory_gb,
                instance.memory_gb,
                task.profile.vm_local_contention,
            );
            let oversub = (load as f64 / instance.cores as f64).max(1.0);
            let thrash = factor / oversub;
            tasks.push(Fig10Task {
                task: format!("{} ({})", name, w.name),
                ipc_vm: 1.0 / thrash.max(1e-12),
                ipc_serverless: 1.0 / task.profile.serverless_slowdown,
                net_share_serverless: sl_t.io_fraction(),
                net_share_vm: vm_t.io_fraction(),
            });
        }
    }
    Fig10 { tasks }
}

impl Fig10 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "task",
            "IPC (VM)",
            "IPC (serverless)",
            "net share (VM)",
            "net share (serverless)",
        ]);
        for r in &self.tasks {
            t.row(vec![
                r.task.clone(),
                format!("{:.2}", r.ipc_vm),
                format!("{:.2}", r.ipc_serverless),
                pct(r.net_share_vm * 100.0),
                pct(r.net_share_serverless * 100.0),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 11 — best of both worlds scatter
// ---------------------------------------------------------------------------

/// One strategy's normalized (time, expense) point for one workflow.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Point {
    /// Workflow name.
    pub workflow: String,
    /// Strategy label.
    pub strategy: String,
    /// Execution time as % of the workflow max.
    pub time_pct: f64,
    /// Expense as % of the workflow max.
    pub expense_pct: f64,
}

/// Fig. 11 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// All points.
    pub points: Vec<Fig11Point>,
}

/// Regenerates Fig. 11: the time-vs-expense scatter of serverless-only,
/// VM cluster, and Mashup for each workflow (smaller is better). Uses a
/// 16-node cluster — the mid-size regime where the hybrid's
/// best-of-both-worlds effect is clearest on our substrate.
pub fn fig11_pareto() -> Fig11 {
    let wfs = paper_workflows();
    const STRATS: [(&str, Strategy); 3] = [
        ("serverless", Strategy::ServerlessOnly),
        ("vm-cluster", Strategy::TraditionalTuned),
        ("mashup", Strategy::Mashup),
    ];
    let cells: Vec<(usize, usize)> = (0..wfs.len())
        .flat_map(|wi| (0..STRATS.len()).map(move |si| (wi, si)))
        .collect();
    let reports = par_map(cells, |(wi, si)| {
        run_strategy(&MashupConfig::aws(16), &wfs[wi], STRATS[si].1)
    });
    let mut points = Vec::new();
    for (wi, w) in wfs.iter().enumerate() {
        let entries: Vec<_> = STRATS
            .iter()
            .enumerate()
            .map(|(si, &(label, _))| (label, &reports[wi * STRATS.len() + si]))
            .collect();
        let max_t = entries
            .iter()
            .map(|(_, r)| r.makespan_secs)
            .fold(0.0, f64::max)
            .max(1e-12);
        let max_e = entries
            .iter()
            .map(|(_, r)| r.expense.total())
            .fold(0.0, f64::max)
            .max(1e-12);
        for (label, r) in entries {
            points.push(Fig11Point {
                workflow: w.name.clone(),
                strategy: label.into(),
                time_pct: r.makespan_secs / max_t * 100.0,
                expense_pct: r.expense.total() / max_e * 100.0,
            });
        }
    }
    Fig11 { points }
}

impl Fig11 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workflow", "strategy", "time (% max)", "expense (% max)"]);
        for p in &self.points {
            t.row(vec![
                p.workflow.clone(),
                p.strategy.clone(),
                pct(p.time_pct),
                pct(p.expense_pct),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 11 extension — searched Pareto front vs the strategy points
// ---------------------------------------------------------------------------

/// One absolute (time, expense) point of the Fig. 11 search overlay.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11SearchPoint {
    /// Workflow name.
    pub workflow: String,
    /// Point label: a strategy name, or a searched-candidate summary such
    /// as `"fuse[A→B] size[C:8GB]"`.
    pub label: String,
    /// Measured end-to-end makespan, seconds.
    pub makespan_secs: f64,
    /// Measured total expense, dollars.
    pub expense_dollars: f64,
}

/// Fig. 11 search-overlay result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Search {
    /// Candidate budget each per-workflow sweep ran under.
    pub budget: usize,
    /// The measured Pareto front the sweep found, per workflow.
    pub front: Vec<Fig11SearchPoint>,
    /// The Fig. 11 strategy points, in absolute units.
    pub strategies: Vec<Fig11SearchPoint>,
    /// Workflows whose searched front weakly dominates (matches or beats
    /// on both axes) every one of their strategy points.
    pub dominated_workflows: Vec<String>,
}

/// Extends Fig. 11 with the Pareto plan search: for each paper workflow,
/// sweeps the fusion × per-task-sizing candidate space in the Fig. 11
/// regime (16 nodes) and overlays the measured front on the strategy
/// scatter, in absolute units so dominance is checkable. Opt-in in the
/// `figures` binary (`fig11search`) — it is an extension of the paper, not
/// a reproduction, so it stays out of the default golden set.
pub fn fig11_search() -> Fig11Search {
    const BUDGET: usize = 200;
    const STRATS: [(&str, Strategy); 3] = [
        ("serverless", Strategy::ServerlessOnly),
        ("vm-cluster", Strategy::TraditionalTuned),
        ("mashup", Strategy::Mashup),
    ];
    let cfg = MashupConfig::aws(16);
    let wfs = paper_workflows();
    let cells: Vec<(usize, usize)> = (0..wfs.len())
        .flat_map(|wi| (0..STRATS.len()).map(move |si| (wi, si)))
        .collect();
    let reports = par_map(cells, |(wi, si)| run_strategy(&cfg, &wfs[wi], STRATS[si].1));
    let strategies: Vec<Fig11SearchPoint> = (0..wfs.len())
        .flat_map(|wi| {
            let reports = &reports;
            let wfs = &wfs;
            (0..STRATS.len()).map(move |si| {
                let r = &reports[wi * STRATS.len() + si];
                Fig11SearchPoint {
                    workflow: wfs[wi].name.clone(),
                    label: STRATS[si].0.into(),
                    makespan_secs: r.makespan_secs,
                    expense_dollars: r.expense.total(),
                }
            })
        })
        .collect();

    // The sweeps parallelize internally (candidate evaluation fans out on
    // the shared pool), so run the workflows one after another.
    let mut front = Vec::new();
    let mut dominated_workflows = Vec::new();
    for w in &wfs {
        let outcome = match crate::plan_cache::plan_cache() {
            Some(cache) => mashup_serve::pareto_sweep_with(&cfg, w, BUDGET, cache),
            None => mashup_serve::pareto_sweep(&cfg, w, BUDGET),
        };
        let covered = strategies.iter().filter(|s| s.workflow == w.name).all(|s| {
            outcome.front.iter().any(|f| {
                f.makespan_secs <= s.makespan_secs && f.expense_dollars <= s.expense_dollars
            })
        });
        if covered {
            dominated_workflows.push(w.name.clone());
        }
        front.extend(outcome.front.into_iter().map(|f| Fig11SearchPoint {
            workflow: w.name.clone(),
            label: f.label,
            makespan_secs: f.makespan_secs,
            expense_dollars: f.expense_dollars,
        }));
    }
    Fig11Search {
        budget: BUDGET,
        front,
        strategies,
        dominated_workflows,
    }
}

impl Fig11Search {
    /// Renders the overlay table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workflow", "point", "label", "time (s)", "expense"]);
        for p in &self.strategies {
            t.row(vec![
                p.workflow.clone(),
                "strategy".into(),
                p.label.clone(),
                f1(p.makespan_secs),
                usd(p.expense_dollars),
            ]);
        }
        for p in &self.front {
            t.row(vec![
                p.workflow.clone(),
                "front".into(),
                p.label.clone(),
                f1(p.makespan_secs),
                usd(p.expense_dollars),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "front covers every strategy point on: {}\n",
            if self.dominated_workflows.is_empty() {
                "(none)".into()
            } else {
                self.dominated_workflows.join(", ")
            }
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 12 — against Pegasus and Kepler
// ---------------------------------------------------------------------------

/// One (workflow, engine) improvement pair over the traditional cluster.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Workflow name.
    pub workflow: String,
    /// Engine label.
    pub engine: String,
    /// Time improvement % over the traditional cluster.
    pub time_improvement_pct: f64,
    /// Expense improvement %.
    pub expense_improvement_pct: f64,
}

/// Fig. 12 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    /// All rows.
    pub rows: Vec<Fig12Row>,
    /// Mashup's average time improvement over the better of Pegasus/Kepler
    /// per workflow, averaged (the paper's headline 34 %).
    pub avg_time_improvement_over_managers_pct: f64,
    /// Same for expense (the paper's headline 43 %).
    pub avg_expense_improvement_over_managers_pct: f64,
}

/// Regenerates Fig. 12: Kepler-like, Pegasus-like, and Mashup on a 48-node
/// cluster, as improvement over the plain traditional execution.
pub fn fig12_managers() -> Fig12 {
    let wfs = paper_workflows();
    const STRATS: [Strategy; 4] = [
        Strategy::Traditional,
        Strategy::Kepler,
        Strategy::Pegasus,
        Strategy::Mashup,
    ];
    let cells: Vec<(usize, usize)> = (0..wfs.len())
        .flat_map(|wi| (0..STRATS.len()).map(move |si| (wi, si)))
        .collect();
    let reports = par_map(cells, |(wi, si)| {
        run_strategy(&MashupConfig::aws(DEFAULT_NODES), &wfs[wi], STRATS[si])
    });
    let mut rows = Vec::new();
    let mut time_over = Vec::new();
    let mut cost_over = Vec::new();
    for (wi, w) in wfs.iter().enumerate() {
        let base = &reports[wi * STRATS.len()];
        let kepler = &reports[wi * STRATS.len() + 1];
        let pegasus = &reports[wi * STRATS.len() + 2];
        let mashup = &reports[wi * STRATS.len() + 3];
        for (engine, r) in [("kepler", kepler), ("pegasus", pegasus), ("mashup", mashup)] {
            rows.push(Fig12Row {
                workflow: w.name.clone(),
                engine: engine.into(),
                time_improvement_pct: improvement_pct(r.makespan_secs, base.makespan_secs),
                expense_improvement_pct: improvement_pct(r.expense.total(), base.expense.total()),
            });
        }
        let best_mgr_time = kepler.makespan_secs.min(pegasus.makespan_secs);
        let best_mgr_cost = kepler.expense.total().min(pegasus.expense.total());
        time_over.push(improvement_pct(mashup.makespan_secs, best_mgr_time));
        cost_over.push(improvement_pct(mashup.expense.total(), best_mgr_cost));
    }
    Fig12 {
        rows,
        avg_time_improvement_over_managers_pct: time_over.iter().sum::<f64>()
            / time_over.len() as f64,
        avg_expense_improvement_over_managers_pct: cost_over.iter().sum::<f64>()
            / cost_over.len() as f64,
    }
}

impl Fig12 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workflow", "engine", "time improv.", "expense improv."]);
        for r in &self.rows {
            t.row(vec![
                r.workflow.clone(),
                r.engine.clone(),
                pct(r.time_improvement_pct),
                pct(r.expense_improvement_pct),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "mashup vs best manager (avg): {} time, {} expense\n",
            pct(self.avg_time_improvement_over_managers_pct),
            pct(self.avg_expense_improvement_over_managers_pct)
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// §5 text experiments
// ---------------------------------------------------------------------------

/// Input-size sensitivity result (§5 "Impact of workflow size").
#[derive(Debug, Clone, Serialize)]
pub struct TextInputSizes {
    /// `(scale, time improvement %, expense improvement %)` per input.
    pub rows: Vec<(f64, f64, f64)>,
}

/// Regenerates the §5 input-size study: SRAsearch at four representative
/// input scales (~5–8.4 TB).
pub fn text_input_sizes() -> TextInputSizes {
    let rows = par_map(mashup_workflows::INPUT_SCALES.to_vec(), |scale| {
        let w = srasearch::workflow_scaled(scale);
        let cfg = MashupConfig::aws(DEFAULT_NODES);
        let base = run_strategy(&cfg, &w, Strategy::TraditionalTuned);
        let mashup = run_strategy(&cfg, &w, Strategy::Mashup);
        (
            scale,
            improvement_pct(mashup.makespan_secs, base.makespan_secs),
            improvement_pct(mashup.expense.total(), base.expense.total()),
        )
    });
    TextInputSizes { rows }
}

impl TextInputSizes {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["input scale", "time improv.", "expense improv."]);
        for &(s, ti, ei) in &self.rows {
            t.row(vec![format!("{s:.2}x"), pct(ti), pct(ei)]);
        }
        t.render()
    }
}

/// Half-cluster comparison result (§5: 48-node Mashup vs 96-node cluster).
#[derive(Debug, Clone, Serialize)]
pub struct TextHalfCluster {
    /// Mashup's makespan on the half-size cluster.
    pub mashup_half_secs: f64,
    /// Traditional makespan on the double-size cluster.
    pub traditional_full_secs: f64,
    /// Time improvement %.
    pub time_improvement_pct: f64,
    /// Expense improvement %.
    pub expense_improvement_pct: f64,
}

/// Regenerates the §5 claim that Mashup on a 48-node cluster beats a 96-node
/// traditional execution of SRAsearch on both time and cost.
pub fn text_half_cluster() -> TextHalfCluster {
    let w = srasearch::workflow();
    let mashup = run_strategy(&MashupConfig::aws(48), &w, Strategy::Mashup);
    let traditional = run_strategy(&MashupConfig::aws(96), &w, Strategy::TraditionalTuned);
    TextHalfCluster {
        mashup_half_secs: mashup.makespan_secs,
        traditional_full_secs: traditional.makespan_secs,
        time_improvement_pct: improvement_pct(mashup.makespan_secs, traditional.makespan_secs),
        expense_improvement_pct: improvement_pct(
            mashup.expense.total(),
            traditional.expense.total(),
        ),
    }
}

impl TextHalfCluster {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "mashup@48 nodes: {}s vs traditional@96 nodes: {}s -> {} time, {} expense\n",
            f1(self.mashup_half_secs),
            f1(self.traditional_full_secs),
            pct(self.time_improvement_pct),
            pct(self.expense_improvement_pct)
        )
    }
}

/// GCP-like portability result (§5).
#[derive(Debug, Clone, Serialize)]
pub struct TextGcp {
    /// `(workflow, with-profiling time %, with-profiling cost %,
    /// without-profiling time %, without-profiling cost %)`.
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

/// Regenerates the §5 portability study: Mashup (and Mashup w/o the
/// profiling PDC) on a GCP-like provider with 16 nodes.
pub fn text_gcp() -> TextGcp {
    let rows = [genome1000::workflow(), srasearch::workflow()]
        .into_iter()
        .map(|w| {
            let cfg = MashupConfig::gcp(16);
            let base = run_strategy(&cfg, &w, Strategy::TraditionalTuned);
            let with = run_strategy(&cfg, &w, Strategy::Mashup);
            let without = run_strategy(&cfg, &w, Strategy::MashupWithoutPdc);
            (
                w.name.clone(),
                improvement_pct(with.makespan_secs, base.makespan_secs),
                improvement_pct(with.expense.total(), base.expense.total()),
                improvement_pct(without.makespan_secs, base.makespan_secs),
                improvement_pct(without.expense.total(), base.expense.total()),
            )
        })
        .collect();
    TextGcp { rows }
}

impl TextGcp {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "workflow",
            "time (profiled)",
            "cost (profiled)",
            "time (no profiling)",
            "cost (no profiling)",
        ]);
        for (w, t1, c1, t2, c2) in &self.rows {
            t.row(vec![w.clone(), pct(*t1), pct(*c1), pct(*t2), pct(*c2)]);
        }
        t.render()
    }
}

/// Overhead-reduction result (§5: Mashup vs w/o PDC vs serverless-only).
#[derive(Debug, Clone, Serialize)]
pub struct TextOverheads {
    /// `(workflow, cold-start reduction %, I/O reduction %, scaling
    /// reduction %)` of Mashup vs Mashup w/o PDC.
    pub vs_wo_pdc: Vec<(String, f64, f64, f64)>,
    /// Serverless-only's overhead multiple of w/o PDC (cold, io, scaling),
    /// averaged across workflows (the paper's ~1.3×).
    pub serverless_only_multiple: (f64, f64, f64),
}

/// Regenerates the §5 overhead analysis: how much cold-start, I/O, and
/// scaling time the PDC removes, and how much worse serverless-only is.
pub fn text_overheads() -> TextOverheads {
    let mut vs_wo_pdc = Vec::new();
    let mut multiples = Vec::new();
    for w in paper_workflows() {
        let cfg = MashupConfig::aws(DEFAULT_NODES);
        let mashup = run_strategy(&cfg, &w, Strategy::Mashup);
        let wo = run_strategy(&cfg, &w, Strategy::MashupWithoutPdc);
        let sl = run_strategy(&cfg, &w, Strategy::ServerlessOnly);
        let red = |ours: f64, base: f64| {
            if base <= 0.0 {
                0.0
            } else {
                (1.0 - ours / base) * 100.0
            }
        };
        vs_wo_pdc.push((
            w.name.clone(),
            red(mashup.total_cold_start_secs(), wo.total_cold_start_secs()),
            red(mashup.total_io_secs(), wo.total_io_secs()),
            red(mashup.total_scaling_secs(), wo.total_scaling_secs()),
        ));
        let ratio = |a: f64, b: f64| if b <= 0.0 { 1.0 } else { a / b };
        multiples.push((
            ratio(sl.total_cold_start_secs(), wo.total_cold_start_secs()),
            ratio(sl.total_io_secs(), wo.total_io_secs()),
            ratio(sl.total_scaling_secs(), wo.total_scaling_secs()),
        ));
    }
    let n = multiples.len() as f64;
    let serverless_only_multiple = (
        multiples.iter().map(|m| m.0).sum::<f64>() / n,
        multiples.iter().map(|m| m.1).sum::<f64>() / n,
        multiples.iter().map(|m| m.2).sum::<f64>() / n,
    );
    TextOverheads {
        vs_wo_pdc,
        serverless_only_multiple,
    }
}

impl TextOverheads {
    /// Renders the analysis.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workflow", "cold-start red.", "I/O red.", "scaling red."]);
        for (w, c, i, s) in &self.vs_wo_pdc {
            t.row(vec![w.clone(), pct(*c), pct(*i), pct(*s)]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "serverless-only vs w/o PDC multiples: cold {:.2}x, io {:.2}x, scaling {:.2}x\n",
            self.serverless_only_multiple.0,
            self.serverless_only_multiple.1,
            self.serverless_only_multiple.2
        ));
        out
    }
}

/// PDC estimation accuracy result (§5: "more than 95 % accurate").
#[derive(Debug, Clone, Serialize)]
pub struct TextPdcAccuracy {
    /// `(workflow, task, estimated secs, actual secs, accuracy %)` for
    /// every task the PDC estimated (forced tasks excluded).
    pub rows: Vec<(String, String, f64, f64, f64)>,
    /// Fraction of tasks where the PDC's choice matches the measured
    /// per-task optimum.
    pub placement_agreement_pct: f64,
    /// Mean estimation accuracy.
    pub mean_accuracy_pct: f64,
}

/// Measures a task's serverless execution time in isolation (its own
/// single-task workflow), matching the scope of the PDC's Eq. 1 estimate.
fn isolated_serverless_secs(task: &Task, cfg: &MashupConfig) -> f64 {
    let mut b = WorkflowBuilder::new(format!("isolated-{}", task.name));
    b.initial_input_bytes(task.profile.input_bytes * task.components as f64);
    b.begin_phase();
    b.add_task(Task::new(
        task.name.clone(),
        task.components,
        task.profile.clone(),
    ));
    let w = b.build().expect("valid");
    run_strategy(cfg, &w, Strategy::ServerlessOnly).tasks[0].makespan_secs()
}

/// Regenerates the §5 accuracy analysis: the PDC's serverless estimates
/// against the actually-measured serverless task times (isolated runs, the
/// estimate's scope), plus agreement with the per-task optimum from
/// exhaustive (both-platform) measurement.
pub fn text_pdc_accuracy() -> TextPdcAccuracy {
    let mut rows = Vec::new();
    let mut agree = 0usize;
    let mut total = 0usize;
    for w in paper_workflows() {
        let cfg = MashupConfig::aws(DEFAULT_NODES);
        let pdc = crate::plan_cache::cached_pdc(cfg.clone()).decide(&w);
        let vm = run_strategy(&cfg, &w, Strategy::TraditionalTuned);
        for d in &pdc.decisions {
            if d.forced_vm_reason.is_some() {
                continue;
            }
            let (_, task) = w.task_by_name(&d.name).expect("exists");
            let actual = isolated_serverless_secs(task, &cfg);
            let accuracy = (1.0 - (d.t_serverless_est_secs - actual).abs() / actual.max(1e-12))
                .max(0.0)
                * 100.0;
            rows.push((
                w.name.clone(),
                d.name.clone(),
                d.t_serverless_est_secs,
                actual,
                accuracy,
            ));
            // Exhaustive optimum from the two uniform runs.
            let vm_actual = vm.task(&d.name).expect("ran").makespan_secs();
            let optimal = if actual < vm_actual {
                Platform::Serverless
            } else {
                Platform::VmCluster
            };
            total += 1;
            if optimal == d.platform {
                agree += 1;
            }
        }
    }
    let mean = rows.iter().map(|r| r.4).sum::<f64>() / rows.len().max(1) as f64;
    TextPdcAccuracy {
        rows,
        placement_agreement_pct: agree as f64 / total.max(1) as f64 * 100.0,
        mean_accuracy_pct: mean,
    }
}

impl TextPdcAccuracy {
    /// Renders the analysis.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workflow", "task", "estimated", "actual", "accuracy"]);
        for (w, task, est, act, acc) in &self.rows {
            t.row(vec![
                w.clone(),
                task.clone(),
                format!("{est:.1}s"),
                format!("{act:.1}s"),
                pct(*acc),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "mean estimate accuracy {}; placement agreement with exhaustive optimum {}\n",
            pct(self.mean_accuracy_pct),
            pct(self.placement_agreement_pct)
        ));
        out
    }
}

/// Expense breakdown rows for context (used by the figures binary).
pub fn expense_summary(nodes: usize) -> String {
    let mut t = Table::new(&["workflow", "strategy", "makespan", "vm", "faas", "storage"]);
    for w in paper_workflows() {
        let cfg = MashupConfig::aws(nodes);
        for s in [
            Strategy::TraditionalTuned,
            Strategy::ServerlessOnly,
            Strategy::Mashup,
        ] {
            let r = run_strategy(&cfg, &w, s);
            t.row(vec![
                w.name.clone(),
                s.label().into(),
                format!("{:.0}s", r.makespan_secs),
                usd(r.expense.vm_dollars),
                usd(r.expense.faas_dollars),
                usd(r.expense.storage_dollars),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02_runs_and_covers_all_tasks() {
        let f = fig02_env_choice();
        assert_eq!(f.rows.len(), 5);
        for r in &f.rows {
            let max = r.serverless_pct.max(r.nodes4_pct).max(r.nodes64_pct);
            assert!((max - 100.0).abs() < 1e-6, "{r:?}");
        }
        // The paper's crossover: FasterQ-Dump beats 4 nodes on serverless
        // but loses to 64 nodes.
        let dump = f
            .rows
            .iter()
            .find(|r| r.task == "FasterQ-Dump")
            .expect("present");
        assert!(dump.serverless_pct < dump.nodes4_pct);
        assert!(dump.nodes64_pct < dump.serverless_pct * 2.0);
        assert!(f.render().contains("FasterQ-Dump"));
    }

    #[test]
    fn fig04c_scaling_is_monotonic_and_code_independent() {
        let f = fig04c_scaling();
        for (name, pts) in &f.series {
            for w in pts.windows(2) {
                assert!(w[1] >= w[0] - 1e-6, "{name}: {pts:?}");
            }
        }
        // The paper's key observation: scaling time is (largely)
        // independent of the task code — all series agree within noise.
        for i in 0..f.components.len() {
            let vals: Vec<f64> = f.series.iter().map(|(_, p)| p[i]).collect();
            let spread = vals.iter().fold(0.0f64, |a, &b| a.max(b))
                - vals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            assert!(spread < 5.0, "C={}: {vals:?}", f.components[i]);
        }
    }

    #[test]
    fn sweep_averages_match_series() {
        let s = SweepResult {
            metric: "time".into(),
            sizes: vec![2, 4],
            series: vec![("w".into(), vec![10.0, 30.0])],
        };
        assert_eq!(s.averages(), vec![("w".to_string(), 20.0)]);
        let rendered = s.render();
        assert!(rendered.contains("2n"));
        assert!(rendered.contains("20.0%"));
    }

    #[test]
    fn fig05_objective_study_shape() {
        let f = fig05_objectives();
        assert_eq!(f.rows.len(), 3);
        let by = |name: &str| {
            f.rows
                .iter()
                .find(|r| r.objective == name)
                .expect("row present")
        };
        // The time objective is never slower than the expense objective,
        // and the expense objective is never dearer than the time one.
        assert!(by("time").time_pct <= by("expense").time_pct + 1e-6);
        assert!(by("expense").expense_pct <= by("time").expense_pct + 1e-6);
    }
}
