//! Synthetic workflow generation.
//!
//! Generates random — but always valid — workflows exhibiting the paper's
//! three connection dynamics (fan-out, fan-in, strong connection) with
//! controllable size and resource mix. Used by property tests, robustness
//! tests, and the ablation benches to exercise the engine beyond the three
//! paper workflows.

use mashup_dag::{DependencyPattern, Task, TaskProfile, Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of phases (≥ 1).
    pub phases: usize,
    /// Tasks per phase range (inclusive).
    pub tasks_per_phase: (usize, usize),
    /// Component-count choices tasks draw from.
    pub component_choices: Vec<usize>,
    /// Per-component compute-seconds range.
    pub compute_secs: (f64, f64),
    /// Per-component I/O bytes range (each direction).
    pub io_bytes: (f64, f64),
    /// Serverless slowdown range (values < 1 favour serverless).
    pub slowdown: (f64, f64),
    /// Probability a task is marked recurring.
    pub recurring_prob: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            phases: 4,
            tasks_per_phase: (1, 3),
            component_choices: vec![1, 2, 8, 32, 128, 512],
            compute_secs: (1.0, 120.0),
            io_bytes: (1.0e6, 5.0e8),
            slowdown: (0.7, 2.5),
            recurring_prob: 0.1,
        }
    }
}

/// Generates a random valid workflow from `cfg` and `seed`.
///
/// Every non-initial task depends on at least one task of the previous
/// phase; the dependency pattern is chosen to be compatible with the two
/// component counts (AllToAll always is; OneToOne / fan-in / fan-out are
/// used when the counts allow).
pub fn generate(cfg: &SyntheticConfig, seed: u64) -> Workflow {
    assert!(cfg.phases >= 1);
    assert!(cfg.tasks_per_phase.0 >= 1 && cfg.tasks_per_phase.0 <= cfg.tasks_per_phase.1);
    assert!(!cfg.component_choices.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = WorkflowBuilder::new(format!("synthetic-{seed}"));
    b.initial_input_bytes(rng.gen_range(1.0e9..1.0e12));

    let mut prev: Vec<(mashup_dag::TaskRef, usize)> = Vec::new();
    let mut id = 0usize;
    for pi in 0..cfg.phases {
        b.begin_phase();
        let n_tasks = rng.gen_range(cfg.tasks_per_phase.0..=cfg.tasks_per_phase.1);
        let mut current = Vec::with_capacity(n_tasks);
        for _ in 0..n_tasks {
            let comps = cfg.component_choices[rng.gen_range(0..cfg.component_choices.len())];
            let profile = TaskProfile::trivial()
                .compute(rng.gen_range(cfg.compute_secs.0..=cfg.compute_secs.1))
                .slowdown(rng.gen_range(cfg.slowdown.0..=cfg.slowdown.1))
                .io(
                    rng.gen_range(cfg.io_bytes.0..=cfg.io_bytes.1),
                    rng.gen_range(cfg.io_bytes.0..=cfg.io_bytes.1),
                )
                .memory(rng.gen_range(0.5..2.9))
                .contention(rng.gen_range(0.0..0.15))
                .jitter(rng.gen_range(0.0..0.08))
                .recurring(rng.gen::<f64>() < cfg.recurring_prob)
                .checkpoint(rng.gen_range(1.0e6..1.0e9));
            let t = b.add_task(Task::new(format!("task-{id}"), comps, profile));
            id += 1;
            if pi > 0 {
                let (producer, pc) = prev[rng.gen_range(0..prev.len())];
                let pattern = pick_pattern(&mut rng, pc, comps);
                b.depend(t, producer, pattern);
            }
            current.push((t, comps));
        }
        prev = current;
    }
    b.build().expect("generator only emits valid workflows")
}

fn pick_pattern(rng: &mut StdRng, producer: usize, consumer: usize) -> DependencyPattern {
    let mut options = vec![DependencyPattern::AllToAll];
    if producer == consumer {
        options.push(DependencyPattern::OneToOne);
    }
    if consumer.is_multiple_of(producer) {
        options.push(DependencyPattern::FanOutBlocks);
    }
    if producer.is_multiple_of(consumer) {
        options.push(DependencyPattern::FanInBlocks);
    }
    options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::validate;

    #[test]
    fn generated_workflows_are_valid() {
        for seed in 0..50 {
            let w = generate(&SyntheticConfig::default(), seed);
            validate(&w).expect("generator output must validate");
            assert!(w.task_count() >= 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SyntheticConfig::default(), 42);
        let b = generate(&SyntheticConfig::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::default(), 1);
        let b = generate(&SyntheticConfig::default(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_phase_count() {
        let cfg = SyntheticConfig {
            phases: 7,
            ..Default::default()
        };
        let w = generate(&cfg, 9);
        assert_eq!(w.phases.len(), 7);
    }

    #[test]
    fn single_phase_workflows_have_no_deps() {
        let cfg = SyntheticConfig {
            phases: 1,
            ..Default::default()
        };
        let w = generate(&cfg, 3);
        for r in w.task_refs() {
            assert!(w.task(r).deps.is_empty());
        }
    }
}
