//! The Epigenomics workflow (paper Fig. 1, middle).
//!
//! Nine tasks in nine chained phases, 2,007 components, ~5 TB of data:
//!
//! * **FastQSplit** (2): consumes >35 % of the workflow's execution time and
//!   is the task the paper singles out as "greatly benefited by execution
//!   on serverless functions" — isolated microVMs run it at better
//!   effective IPC, and it is long enough to need checkpoint chains.
//! * **Filtercontams / Sol2sanger / Fast2bfq** (500 each): the wide middle;
//!   massively parallel, modest per-component work — serverless territory
//!   until clusters get very large.
//! * **Map** (500): reads *and* writes heavily — the highest I/O overhead
//!   of Fig. 4(a).
//! * **Mapmerge1** (2) / **Mapmerge2** (1): short, *frequently re-appearing*
//!   merges — the warm-pool exception of §3 exists for this shape.
//! * **Chr21** (1): a single ~40-minute component; exceeds the FaaS time
//!   cap, so serverless execution needs checkpoint/restart chains, and its
//!   cold start is negligible relative to runtime (Fig. 4(b)).
//! * **Pileup** (1): final consolidation.

use mashup_dag::{DependencyPattern, Task, TaskProfile, Workflow, WorkflowBuilder};

/// Builds Epigenomics at input scale 1.0 (the paper's default dataset).
pub fn workflow() -> Workflow {
    workflow_scaled(1.0)
}

/// Builds Epigenomics with I/O volumes and compute scaled by `scale`.
pub fn workflow_scaled(scale: f64) -> Workflow {
    assert!(scale > 0.0 && scale.is_finite());
    let mut b = WorkflowBuilder::new("Epigenomics");
    b.initial_input_bytes(5.0e12 * scale); // ~5 TB

    b.begin_phase();
    let split = b.add_task(Task::new(
        "FastQSplit",
        2,
        TaskProfile::trivial()
            .compute(2500.0 * scale)
            .slowdown(0.55) // the paper's serverless-friendly heavyweight
            .io(4.0e9 * scale, 1.0e9 * scale)
            .memory(2.5)
            .jitter(0.04)
            .checkpoint(1.0e9),
    ));

    b.begin_phase();
    let filter = b.add_task(Task::new(
        "Filtercontams",
        500,
        TaskProfile::trivial()
            .compute(20.0 * scale)
            .slowdown(1.15)
            .io(5.0e7 * scale, 5.0e7 * scale)
            .memory(1.0)
            .contention(2.0)
            .jitter(0.05)
            .checkpoint(2.0e7),
    ));
    b.depend(filter, split, DependencyPattern::FanOutBlocks);

    b.begin_phase();
    let sol = b.add_task(Task::new(
        "Sol2sanger",
        500,
        TaskProfile::trivial()
            .compute(15.0 * scale)
            .slowdown(1.15)
            .io(5.0e7 * scale, 5.0e7 * scale)
            .memory(1.0)
            .contention(2.0)
            .jitter(0.05)
            .checkpoint(2.0e7),
    ));
    b.depend(sol, filter, DependencyPattern::OneToOne);

    b.begin_phase();
    let bfq = b.add_task(Task::new(
        "Fast2bfq",
        500,
        TaskProfile::trivial()
            .compute(12.0 * scale)
            .slowdown(1.15)
            .io(5.0e7 * scale, 4.0e7 * scale)
            .memory(1.0)
            .contention(2.0)
            .jitter(0.05)
            .checkpoint(2.0e7),
    ));
    b.depend(bfq, sol, DependencyPattern::OneToOne);

    b.begin_phase();
    let map = b.add_task(Task::new(
        "Map",
        500,
        TaskProfile::trivial()
            .compute(40.0 * scale)
            .slowdown(1.3)
            // Both directions heavy: the Fig. 4(a) worst case.
            .io(1.0e8 * scale, 2.0e7 * scale)
            .memory(1.2)
            .contention(2.0)
            .jitter(0.05)
            .checkpoint(5.0e7),
    ));
    b.depend(map, bfq, DependencyPattern::OneToOne);

    b.begin_phase();
    let mm1 = b.add_task(Task::new(
        "Mapmerge1",
        2,
        TaskProfile::trivial()
            .compute(3.0 * scale)
            .slowdown(1.0)
            .io(5.0e9 * scale, 1.0e9 * scale)
            .memory(2.0)
            .jitter(0.05)
            .recurring(true) // the §3 warm-pool exception shape
            .family("Mapmerge")
            .checkpoint(5.0e8),
    ));
    b.depend(mm1, map, DependencyPattern::FanInBlocks);

    b.begin_phase();
    let mm2 = b.add_task(Task::new(
        "Mapmerge2",
        1,
        TaskProfile::trivial()
            .compute(3.0 * scale)
            .slowdown(1.0)
            .io(2.0e9 * scale, 1.5e9 * scale)
            .memory(2.0)
            .jitter(0.05)
            .recurring(true)
            .family("Mapmerge")
            .checkpoint(5.0e8),
    ));
    b.depend(mm2, mm1, DependencyPattern::AllToAll);

    b.begin_phase();
    let chr21 = b.add_task(Task::new(
        "Chr21",
        1,
        TaskProfile::trivial()
            .compute(2400.0 * scale) // ~40 min: crosses the FaaS time cap
            .slowdown(1.05)
            .io(1.5e9 * scale, 1.5e9 * scale)
            .memory(2.5)
            .jitter(0.04)
            .checkpoint(1.2e9),
    ));
    b.depend(chr21, mm2, DependencyPattern::AllToAll);

    b.begin_phase();
    let pileup = b.add_task(Task::new(
        "Pileup",
        1,
        TaskProfile::trivial()
            .compute(600.0 * scale)
            .slowdown(1.05)
            .io(1.5e9 * scale, 5.0e8 * scale)
            .memory(2.0)
            .jitter(0.04)
            .checkpoint(6.0e8),
    ));
    b.depend(pileup, chr21, DependencyPattern::AllToAll);

    b.build().expect("Epigenomics definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let w = workflow();
        assert_eq!(w.name, "Epigenomics");
        // Paper §4: 9 tasks, 2,007 components, 9 phases (Fig. 1).
        assert_eq!(w.task_count(), 9);
        assert_eq!(w.component_count(), 2007);
        assert_eq!(w.phases.len(), 9);
    }

    #[test]
    fn fastqsplit_dominates_sequential_work() {
        let w = workflow();
        let (_, split) = w.task_by_name("FastQSplit").expect("exists");
        let split_work = split.profile.compute_secs_vm * split.components as f64;
        // Paper: FastQSplit is >35 % of the workflow execution time. On the
        // critical path (per-phase max component time) it dominates even
        // more clearly.
        assert!(split.profile.compute_secs_vm / w.critical_path_secs() > 0.35);
        assert!(split_work > 0.0);
    }

    #[test]
    fn chr21_exceeds_faas_time_cap() {
        let w = workflow();
        let (_, chr) = w.task_by_name("Chr21").expect("exists");
        assert!(chr.profile.compute_secs_serverless() > 900.0);
        assert_eq!(chr.components, 1);
    }

    #[test]
    fn mapmerges_are_recurring_short_tasks() {
        let w = workflow();
        for name in ["Mapmerge1", "Mapmerge2"] {
            let (_, t) = w.task_by_name(name).expect("exists");
            assert!(t.profile.recurring, "{name} should be recurring");
            assert!(t.profile.compute_secs_vm < 5.0);
        }
    }

    #[test]
    fn chain_structure_is_one_task_per_phase() {
        let w = workflow();
        for p in &w.phases {
            assert_eq!(p.tasks.len(), 1);
        }
    }
}
