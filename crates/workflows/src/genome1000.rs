//! The 1000Genome workflow (paper Fig. 1, left).
//!
//! Five tasks, 2,506 components, ~600 GB of initial input:
//!
//! * Phase 1 — **Individual** (1,252 components): per-chromosome-slice
//!   variant extraction. Calibration: compute-bound with a strong VM IPC
//!   advantage (paper Fig. 10: higher IPC on the cluster), so large
//!   clusters win while small clusters lose to serverless parallelism.
//! * Phase 2 — **Individual-Merge** (1) and **Sifting** (1): both pull
//!   sizeable inputs through the master NIC *simultaneously* on a cluster,
//!   contending for bandwidth (paper §5); in isolation inside microVMs they
//!   run at better effective IPC, so serverless wins — but only the PDC
//!   can see that.
//! * Phase 3 — **Mutation-Overlap** (626) and **Frequency** (626):
//!   Mutation-Overlap is modestly sized and massively parallel (serverless
//!   territory); Frequency is write-heavy — its outputs crawl through the
//!   remote store, so a 64-node cluster beats serverless roughly 2×
//!   (paper §3, Fig. 4(a)).

use mashup_dag::{DependencyPattern, Task, TaskProfile, Workflow, WorkflowBuilder};

/// Builds 1000Genome at input scale 1.0 (the paper's default dataset).
pub fn workflow() -> Workflow {
    workflow_scaled(1.0)
}

/// Builds 1000Genome with all I/O volumes and compute scaled by `scale`.
pub fn workflow_scaled(scale: f64) -> Workflow {
    assert!(scale > 0.0 && scale.is_finite());
    let mut b = WorkflowBuilder::new("1000Genome");
    b.initial_input_bytes(6.0e11 * scale); // ~600 GB

    // Phase 1.
    b.begin_phase();
    let individual = b.add_task(Task::new(
        "Individual",
        1252,
        TaskProfile::trivial()
            .compute(25.0 * scale)
            .slowdown(1.5) // VM IPC advantage (Fig. 10)
            .io(1.0e7 * scale, 2.0e6 * scale)
            .memory(0.8)
            .contention(2.0)
            .jitter(0.04)
            .checkpoint(2.0e8),
    ));

    // Phase 2: the master-NIC-contention pair.
    b.begin_phase();
    let merge = b.add_task(Task::new(
        "Individual-Merge",
        1,
        TaskProfile::trivial()
            .compute(300.0 * scale)
            .slowdown(0.62) // isolated microVM runs at better effective IPC
            .io(2.5e9 * scale, 2.0e8 * scale)
            .memory(2.5)
            .jitter(0.04)
            .checkpoint(1.0e9),
    ));
    let sifting = b.add_task(Task::new(
        "Sifting",
        1,
        TaskProfile::trivial()
            .compute(220.0 * scale)
            .slowdown(0.66)
            .io(2.5e9 * scale, 5.0e7 * scale)
            .memory(2.0)
            .jitter(0.04)
            .checkpoint(8.0e8),
    ));
    b.depend(merge, individual, DependencyPattern::AllToAll);
    b.depend(sifting, individual, DependencyPattern::AllToAll);

    // Phase 3.
    b.begin_phase();
    let overlap = b.add_task(Task::new(
        "Mutation-Overlap",
        626,
        TaskProfile::trivial()
            .compute(25.0 * scale)
            .slowdown(1.15)
            .io(3.0e7 * scale, 2.0e7 * scale)
            .memory(1.0)
            .contention(2.0)
            .jitter(0.04)
            .checkpoint(1.0e7),
    ));
    let frequency = b.add_task(Task::new(
        "Frequency",
        626,
        TaskProfile::trivial()
            .compute(25.0 * scale)
            .slowdown(1.4)
            // Write-heavy: ~313 GB of outputs crawl through the remote
            // store on serverless but ride the scalable intra-cluster
            // fabric on the VM side.
            .io(3.0e7 * scale, 5.0e8 * scale)
            .memory(1.0)
            .contention(2.0)
            .jitter(0.04)
            .checkpoint(1.0e7),
    ));
    for consumer in [overlap, frequency] {
        b.depend(consumer, merge, DependencyPattern::AllToAll);
        b.depend(consumer, sifting, DependencyPattern::AllToAll);
    }

    b.build().expect("1000Genome definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let w = workflow();
        assert_eq!(w.name, "1000Genome");
        // Paper §4: 5 tasks, 2,506 components.
        assert_eq!(w.task_count(), 5);
        assert_eq!(w.component_count(), 2506);
        assert_eq!(w.phases.len(), 3);
        assert_eq!(w.phases[0].tasks.len(), 1);
        assert_eq!(w.phases[1].tasks.len(), 2);
        assert_eq!(w.phases[2].tasks.len(), 2);
        let (_, ind) = w.task_by_name("Individual").expect("exists");
        assert_eq!(ind.components, 1252);
        let (_, mo) = w.task_by_name("Mutation-Overlap").expect("exists");
        assert_eq!(mo.components, 626);
    }

    #[test]
    fn phase2_fan_in_covers_all_individual_components() {
        let w = workflow();
        let (merge_ref, _) = w.task_by_name("Individual-Merge").expect("exists");
        let deps = w.component_deps(merge_ref, 0);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].1.len(), 1252); // fan-in over every component
    }

    #[test]
    fn scaling_scales_io_and_compute() {
        let w1 = workflow_scaled(1.0);
        let w2 = workflow_scaled(2.0);
        let (_, a) = w1.task_by_name("Individual").expect("exists");
        let (_, b) = w2.task_by_name("Individual").expect("exists");
        assert!((b.profile.compute_secs_vm - 2.0 * a.profile.compute_secs_vm).abs() < 1e-9);
        assert!((b.profile.input_bytes - 2.0 * a.profile.input_bytes).abs() < 1e-9);
    }

    #[test]
    fn frequency_is_write_heavy() {
        let w = workflow();
        let (_, f) = w.task_by_name("Frequency").expect("exists");
        assert!(f.profile.output_bytes > 10.0 * f.profile.input_bytes);
    }
}
