//! The SRAsearch workflow (paper Fig. 1, right).
//!
//! Five tasks, 404 components, ~6 TB of sequence archives:
//!
//! * Phase 1 — **FasterQ-Dump** (200): archive extraction; serverless beats
//!   a 4-node cluster (wave serialization) but loses to 64 nodes (paper
//!   Fig. 2's crossover example).
//! * Phase 1 — **Bowtie2-Build** (1): index construction; long, single,
//!   compute-bound — VM territory at any size.
//! * Phase 2 — **Bowtie2** (200): *short-running* alignment; cold start is
//!   ~40 % of its serverless execution time (paper Fig. 4(b)).
//! * Phase 3 — **Merge1** (2): its two components contend on a shared
//!   master; the paper's two-sub-cluster optimization exists for this task.
//! * Phase 4 — **Merge2** (1): final consolidation.

use mashup_dag::{DependencyPattern, Task, TaskProfile, Workflow, WorkflowBuilder};

/// Builds SRAsearch at input scale 1.0 (the paper's default dataset).
pub fn workflow() -> Workflow {
    workflow_scaled(1.0)
}

/// Builds SRAsearch with I/O volumes and compute scaled by `scale`
/// (the paper's §5 input-size study spans ~5 TB to 8.4 TB, i.e. scales
/// roughly 0.83–1.4 of the default 6 TB).
pub fn workflow_scaled(scale: f64) -> Workflow {
    assert!(scale > 0.0 && scale.is_finite());
    let mut b = WorkflowBuilder::new("SRAsearch");
    b.initial_input_bytes(6.0e12 * scale); // ~6 TB of archives

    // Phase 1.
    b.begin_phase();
    let dump = b.add_task(Task::new(
        "FasterQ-Dump",
        200,
        TaskProfile::trivial()
            .compute(60.0 * scale)
            .slowdown(1.3)
            .io(3.0e8 * scale, 5.0e7 * scale)
            .memory(2.0)
            .contention(2.0)
            .jitter(0.05)
            .checkpoint(5.0e8),
    ));
    let build = b.add_task(Task::new(
        "Bowtie2-Build",
        1,
        TaskProfile::trivial()
            .compute(120.0 * scale)
            .slowdown(1.05)
            .io(1.0e9 * scale, 3.0e9 * scale)
            .memory(2.8)
            .jitter(0.04)
            .checkpoint(1.0e9),
    ));

    // Phase 2: short-running, highly concurrent alignment.
    b.begin_phase();
    let bowtie = b.add_task(Task::new(
        "Bowtie2",
        200,
        TaskProfile::trivial()
            .compute(1.5 * scale)
            .slowdown(1.0)
            .io(5.0e7 * scale, 5.0e7 * scale)
            .memory(2.5)
            .contention(2.0)
            .jitter(0.05)
            .checkpoint(2.0e7),
    ));
    b.depend(bowtie, dump, DependencyPattern::OneToOne);
    b.depend(bowtie, build, DependencyPattern::AllToAll);

    // Phase 3: two large merges that fight over one master NIC.
    b.begin_phase();
    let merge1 = b.add_task(Task::new(
        "Merge1",
        2,
        TaskProfile::trivial()
            .compute(150.0 * scale)
            .slowdown(1.15)
            .io(5.0e9 * scale, 1.0e9 * scale)
            .memory(2.8)
            .jitter(0.04)
            .checkpoint(1.2e9),
    ));
    b.depend(merge1, bowtie, DependencyPattern::FanInBlocks);

    // Phase 4.
    b.begin_phase();
    let merge2 = b.add_task(Task::new(
        "Merge2",
        1,
        TaskProfile::trivial()
            .compute(100.0 * scale)
            .slowdown(1.1)
            .io(2.0e9 * scale, 1.0e9 * scale)
            .memory(2.5)
            .jitter(0.04)
            .checkpoint(8.0e8),
    ));
    b.depend(merge2, merge1, DependencyPattern::AllToAll);

    b.build().expect("SRAsearch definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let w = workflow();
        assert_eq!(w.name, "SRAsearch");
        // Paper §4: 5 tasks, 404 components.
        assert_eq!(w.task_count(), 5);
        assert_eq!(w.component_count(), 404);
        assert_eq!(w.phases.len(), 4);
        let (_, dump) = w.task_by_name("FasterQ-Dump").expect("exists");
        assert_eq!(dump.components, 200);
        let (_, m1) = w.task_by_name("Merge1").expect("exists");
        assert_eq!(m1.components, 2);
    }

    #[test]
    fn bowtie2_is_short_running() {
        let w = workflow();
        let (_, b) = w.task_by_name("Bowtie2").expect("exists");
        // Short enough that a ~1.5 s cold start is a large fraction.
        assert!(b.profile.compute_secs_vm < 5.0);
    }

    #[test]
    fn merge1_fan_in_splits_components_evenly() {
        let w = workflow();
        let (m1, _) = w.task_by_name("Merge1").expect("exists");
        let deps0 = w.component_deps(m1, 0);
        let deps1 = w.component_deps(m1, 1);
        assert_eq!(deps0[0].1.len(), 100);
        assert_eq!(deps1[0].1.len(), 100);
        assert_eq!(deps0[0].1[0], 0);
        assert_eq!(deps1[0].1[0], 100);
    }

    #[test]
    fn input_scaling_covers_paper_range() {
        // 5 TB to 8.4 TB relative to the 6 TB default.
        for scale in [0.83, 1.0, 1.17, 1.4] {
            let w = workflow_scaled(scale);
            assert_eq!(w.component_count(), 404);
            assert!(w.initial_input_bytes > 0.0);
        }
    }
}
