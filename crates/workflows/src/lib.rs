//! # mashup-workflows
//!
//! The three HPC workflows the Mashup paper evaluates — [`genome1000`],
//! [`srasearch`], and [`epigenomics`] — with the exact task/component
//! structure of the paper's Fig. 1, plus a [`synthetic`] generator for
//! stress and property testing.
//!
//! Each task carries a calibrated `TaskProfile` standing in for the real
//! executable (see `DESIGN.md` §Substitutions). The calibration encodes the
//! paper's *observed behaviours* — which task is IPC-bound, write-heavy,
//! short-running, recurring, or over the FaaS time cap — rather than its
//! absolute runtimes; the per-task doc comments in each module state which
//! paper observation every constant encodes.

#![warn(missing_docs)]

pub mod epigenomics;
pub mod genome1000;
pub mod srasearch;
pub mod synthetic;

pub use synthetic::{generate, SyntheticConfig};

use mashup_dag::Workflow;

/// The three paper workflows at default input scale, in the order the paper
/// presents them.
pub fn paper_workflows() -> Vec<Workflow> {
    vec![
        genome1000::workflow(),
        srasearch::workflow(),
        epigenomics::workflow(),
    ]
}

/// Representative input scales for the §5 input-size sensitivity study
/// (SRAsearch inputs spanning ~5 TB to ~8.4 TB around the 6 TB default).
pub const INPUT_SCALES: [f64; 4] = [0.83, 1.0, 1.17, 1.4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workflows_have_paper_counts() {
        let ws = paper_workflows();
        assert_eq!(ws.len(), 3);
        let counts: Vec<(usize, usize)> = ws
            .iter()
            .map(|w| (w.task_count(), w.component_count()))
            .collect();
        assert_eq!(counts, vec![(5, 2506), (5, 404), (9, 2007)]);
    }

    #[test]
    fn workflows_serialize_to_json() {
        for w in paper_workflows() {
            let json = mashup_dag::to_json(&w);
            let back = mashup_dag::from_json(&json).expect("round trip");
            assert_eq!(w, back);
        }
    }
}
