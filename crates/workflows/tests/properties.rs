//! Property-based tests over the workflow definitions.

use mashup_dag::validate;
use mashup_workflows::{epigenomics, generate, genome1000, srasearch, SyntheticConfig};
use proptest::prelude::*;

proptest! {
    /// The paper workflows stay valid (and keep their structure) under any
    /// reasonable input scale.
    #[test]
    fn scaled_paper_workflows_are_valid(scale in 0.1f64..5.0) {
        for w in [
            genome1000::workflow_scaled(scale),
            srasearch::workflow_scaled(scale),
            epigenomics::workflow_scaled(scale),
        ] {
            validate(&w).expect("scaled workflow valid");
            prop_assert!(w.component_count() == 2506 || w.component_count() == 404
                || w.component_count() == 2007);
            // Scaling never changes structure, only magnitudes.
            prop_assert!(w.total_vm_compute_secs() > 0.0);
        }
    }

    /// Scaling is linear in compute and I/O.
    #[test]
    fn scaling_is_linear(scale in 0.2f64..4.0) {
        let base = srasearch::workflow_scaled(1.0);
        let scaled = srasearch::workflow_scaled(scale);
        for (r_base, r_scaled) in base.task_refs().zip(scaled.task_refs()) {
            let a = &base.task(r_base).profile;
            let b = &scaled.task(r_scaled).profile;
            prop_assert!((b.compute_secs_vm - scale * a.compute_secs_vm).abs() < 1e-9);
            prop_assert!((b.input_bytes - scale * a.input_bytes).abs() < 1e-6);
            prop_assert!((b.output_bytes - scale * a.output_bytes).abs() < 1e-6);
            // Platform characteristics do not scale with input size.
            prop_assert_eq!(b.serverless_slowdown, a.serverless_slowdown);
            prop_assert_eq!(b.memory_gb, a.memory_gb);
        }
    }

    /// The synthetic generator's outputs always validate and respect the
    /// requested shape, for any seed.
    #[test]
    fn generator_respects_shape(seed in any::<u64>(), phases in 1usize..6) {
        let cfg = SyntheticConfig { phases, ..Default::default() };
        let w = generate(&cfg, seed);
        validate(&w).expect("generated workflow valid");
        prop_assert_eq!(w.phases.len(), phases);
        for r in w.task_refs() {
            let t = w.task(r);
            prop_assert!(cfg.component_choices.contains(&t.components));
            prop_assert!(t.profile.compute_secs_vm >= cfg.compute_secs.0);
            prop_assert!(t.profile.compute_secs_vm <= cfg.compute_secs.1);
        }
    }

    /// Every component of every paper workflow has resolvable dependencies
    /// (pattern expansion stays in range across the whole DAG).
    #[test]
    fn component_dependencies_resolve(which in 0usize..3) {
        let w = match which {
            0 => genome1000::workflow(),
            1 => srasearch::workflow(),
            _ => epigenomics::workflow(),
        };
        for r in w.task_refs() {
            let t = w.task(r);
            for comp in [0, t.components / 2, t.components - 1] {
                for (producer, comps) in w.component_deps(r, comp) {
                    let p = w.task(producer);
                    prop_assert!(!comps.is_empty());
                    for c in comps {
                        prop_assert!(c < p.components);
                    }
                }
            }
        }
    }
}
