//! Placement types, re-exported from `mashup-dag`.
//!
//! [`Platform`], [`PlacementPlan`], and [`UnassignedTask`] moved to
//! `mashup-dag` so that plan-consuming crates (notably `mashup-analyze`)
//! can reason about placements without depending on the engine. This shim
//! keeps the historical `mashup_core::placement` paths working.

pub use mashup_dag::{PlacementPlan, Platform, UnassignedTask};
