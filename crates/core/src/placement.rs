//! Placement plans: which platform runs each task.

use mashup_dag::{TaskRef, Workflow};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The two execution platforms of the hybrid environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Traditional VM-based cluster.
    VmCluster,
    /// Serverless (FaaS) platform.
    Serverless,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::VmCluster => write!(f, "VM"),
            Platform::Serverless => write!(f, "serverless"),
        }
    }
}

/// A complete task-to-platform assignment for one workflow.
///
/// Serialized as a list of `(task, platform)` pairs (JSON maps need string
/// keys, and `TaskRef` is a struct).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "Vec<(TaskRef, Platform)>", into = "Vec<(TaskRef, Platform)>")]
pub struct PlacementPlan {
    assignments: BTreeMap<TaskRef, Platform>,
}

impl From<Vec<(TaskRef, Platform)>> for PlacementPlan {
    fn from(v: Vec<(TaskRef, Platform)>) -> Self {
        PlacementPlan {
            assignments: v.into_iter().collect(),
        }
    }
}

impl From<PlacementPlan> for Vec<(TaskRef, Platform)> {
    fn from(p: PlacementPlan) -> Self {
        p.assignments.into_iter().collect()
    }
}

impl PlacementPlan {
    /// An empty plan.
    pub fn new() -> Self {
        PlacementPlan {
            assignments: BTreeMap::new(),
        }
    }

    /// A plan putting every task of `w` on `platform`.
    pub fn uniform(w: &Workflow, platform: Platform) -> Self {
        let mut plan = Self::new();
        for r in w.task_refs() {
            plan.set(r, platform);
        }
        plan
    }

    /// Assigns a task.
    pub fn set(&mut self, task: TaskRef, platform: Platform) {
        self.assignments.insert(task, platform);
    }

    /// The platform of `task`. Panics if unassigned (plans produced by the
    /// PDC or `uniform` always cover every task).
    pub fn platform(&self, task: TaskRef) -> Platform {
        *self
            .assignments
            .get(&task)
            .unwrap_or_else(|| panic!("no placement for task {task}"))
    }

    /// True when every task of `w` has an assignment.
    pub fn covers(&self, w: &Workflow) -> bool {
        w.task_refs().all(|r| self.assignments.contains_key(&r))
    }

    /// Number of tasks assigned to `platform`.
    pub fn count(&self, platform: Platform) -> usize {
        self.assignments
            .values()
            .filter(|&&p| p == platform)
            .count()
    }

    /// True if at least one task runs on the VM cluster.
    pub fn uses_cluster(&self) -> bool {
        self.count(Platform::VmCluster) > 0
    }

    /// True if at least one task runs serverless.
    pub fn uses_serverless(&self) -> bool {
        self.count(Platform::Serverless) > 0
    }

    /// Iterates over `(task, platform)` in task order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskRef, Platform)> + '_ {
        self.assignments.iter().map(|(&r, &p)| (r, p))
    }
}

impl Default for PlacementPlan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{Task, TaskProfile, WorkflowBuilder};

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(Task::new("A", 2, TaskProfile::trivial()));
        b.add_task(Task::new("B", 3, TaskProfile::trivial()));
        b.build().expect("valid")
    }

    #[test]
    fn uniform_covers_all_tasks() {
        let w = wf();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        assert!(plan.covers(&w));
        assert_eq!(plan.count(Platform::Serverless), 2);
        assert!(!plan.uses_cluster());
        assert!(plan.uses_serverless());
    }

    #[test]
    fn set_overrides() {
        let w = wf();
        let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        plan.set(TaskRef::new(0, 1), Platform::Serverless);
        assert_eq!(plan.platform(TaskRef::new(0, 0)), Platform::VmCluster);
        assert_eq!(plan.platform(TaskRef::new(0, 1)), Platform::Serverless);
        assert!(plan.uses_cluster() && plan.uses_serverless());
    }

    #[test]
    #[should_panic(expected = "no placement")]
    fn missing_assignment_panics() {
        let plan = PlacementPlan::new();
        plan.platform(TaskRef::new(0, 0));
    }

    #[test]
    fn serde_round_trip() {
        let w = wf();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: PlacementPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn platform_display() {
        assert_eq!(Platform::VmCluster.to_string(), "VM");
        assert_eq!(Platform::Serverless.to_string(), "serverless");
    }
}
