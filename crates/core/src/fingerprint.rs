//! Stable 128-bit content fingerprints for planning-cache keys.
//!
//! The planning cache (see [`crate::cache`]) memoizes simulated profiling
//! work across sweep cells, so its keys must capture *exactly* the inputs
//! that determine a profiling result: the workflow structure, the task
//! profiles, and the planning-relevant slices of the configuration. Keys
//! are split per profiling stage — the VM pass is keyed only by
//! cluster-affecting knobs, serverless probes only by FaaS/storage
//! behaviour, calibration by its own inputs — so a pricing-only or
//! objective-only sweep reuses 100 % of the simulated profiling and a
//! node-count sweep still reuses every probe.
//!
//! The hash is a hand-rolled two-lane FNV-1a variant with cross-lane
//! mixing: deterministic across runs and platforms (no `RandomState`),
//! with 128 bits so accidental collisions are out of the picture for the
//! cache sizes involved (thousands of entries). Floats are hashed by their
//! IEEE-754 bit patterns, so keys distinguish exactly the values the
//! simulation distinguishes.

use mashup_cloud::{ClusterConfig, FaasConfig, StorageConfig};
use mashup_dag::{Task, TaskProfile, Workflow};

const SEED_LO: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
const SEED_HI: u64 = 0x6c62_272e_07bb_0142; // FNV-1a 128-bit basis half
const PRIME: u64 = 0x0000_0100_0000_01b3; // FNV-1a 64-bit prime

/// Incremental 128-bit hasher. Write every field that influences the keyed
/// computation; finish with [`digest`](Fingerprinter::digest).
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    lo: u64,
    hi: u64,
}

impl Fingerprinter {
    /// A fresh hasher, domain-separated by `tag` so different key kinds
    /// never collide even over identical field sequences.
    pub fn new(tag: &str) -> Self {
        let mut f = Fingerprinter {
            lo: SEED_LO,
            hi: SEED_HI,
        };
        f.write_str(tag);
        f
    }

    /// Hashes one byte into both lanes (lanes use different rotations, and
    /// each absorbs the other every step, so the pair acts as one wide
    /// state rather than two independent 64-bit hashes).
    fn write_byte(&mut self, b: u8) {
        self.lo = (self.lo ^ b as u64).wrapping_mul(PRIME);
        self.hi = (self.hi ^ (b as u64).rotate_left(17)).wrapping_mul(PRIME);
        self.hi ^= self.lo.rotate_left(29);
    }

    /// Hashes a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Hashes a length-prefixed string (prefix prevents concatenation
    /// ambiguity between adjacent strings).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Hashes a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `usize` (widened, so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes an `f64` by bit pattern (distinguishes `-0.0` from `0.0` and
    /// every NaN payload — exactly the distinctions `f64` arithmetic can
    /// observe or the config can carry).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hashes a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_byte(v as u8);
    }

    /// Final 128-bit digest.
    pub fn digest(mut self) -> u128 {
        // Finalization rounds diffuse the last written bytes.
        for _ in 0..4 {
            self.write_byte(0xa5);
        }
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// Types that can contribute their planning-relevant content to a key.
pub trait Fingerprint {
    /// Writes every field that can change a planning result into `f`.
    fn fingerprint(&self, f: &mut Fingerprinter);

    /// Convenience: a standalone digest under a domain tag.
    fn fingerprint_digest(&self, tag: &str) -> u128 {
        let mut f = Fingerprinter::new(tag);
        self.fingerprint(&mut f);
        f.digest()
    }
}

impl Fingerprint for TaskProfile {
    fn fingerprint(&self, f: &mut Fingerprinter) {
        f.write_f64(self.compute_secs_vm);
        f.write_f64(self.serverless_slowdown);
        f.write_f64(self.input_bytes);
        f.write_f64(self.output_bytes);
        f.write_f64(self.memory_gb);
        f.write_f64(self.vm_local_contention);
        f.write_f64(self.runtime_jitter);
        f.write_bool(self.recurring);
        f.write_f64(self.checkpoint_bytes);
        match &self.code_family {
            None => f.write_bool(false),
            Some(fam) => {
                f.write_bool(true);
                f.write_str(fam);
            }
        }
    }
}

impl Fingerprint for Task {
    fn fingerprint(&self, f: &mut Fingerprinter) {
        f.write_str(&self.name);
        f.write_usize(self.components);
        self.profile.fingerprint(f);
        f.write_usize(self.deps.len());
        for d in &self.deps {
            f.write_usize(d.producer.phase);
            f.write_usize(d.producer.task);
            f.write_str(&format!("{:?}", d.pattern));
        }
    }
}

impl Fingerprint for Workflow {
    fn fingerprint(&self, f: &mut Fingerprinter) {
        f.write_str(&self.name);
        f.write_f64(self.initial_input_bytes);
        f.write_usize(self.phases.len());
        for p in &self.phases {
            f.write_usize(p.tasks.len());
            for t in &p.tasks {
                t.fingerprint(f);
            }
        }
    }
}

impl Fingerprint for ClusterConfig {
    fn fingerprint(&self, f: &mut Fingerprinter) {
        let i = &self.instance;
        f.write_str(&i.name);
        f.write_f64(i.price_per_hour); // VM-pass expense is priced at charge time
        f.write_usize(i.cores);
        f.write_f64(i.memory_gb);
        f.write_f64(i.core_speed);
        f.write_f64(i.node_nic_bps);
        f.write_f64(i.master_nic_bps);
        f.write_f64(i.wan_bps);
        f.write_usize(self.nodes);
        f.write_f64(self.provision_secs);
        // `subclusters` is deliberately omitted: the VM profiling pass
        // overrides it with each candidate split, so the configured value
        // never reaches the simulation.
    }
}

impl Fingerprint for FaasConfig {
    /// Behavioural fields only: `price_per_hour` is excluded because probe
    /// and calibration runs never read their own expense (the busy-seconds
    /// they report are quantities), so a FaaS-pricing sweep can reuse them.
    fn fingerprint(&self, f: &mut Fingerprinter) {
        f.write_f64(self.memory_gb);
        f.write_f64(self.timeout_secs);
        f.write_f64(self.cold_start_secs.0);
        f.write_f64(self.cold_start_secs.1);
        f.write_f64(self.warm_start_secs);
        f.write_f64(self.keep_alive_secs);
        f.write_usize(self.burst_capacity);
        f.write_f64(self.ramp_per_sec);
        f.write_f64(self.per_function_bps);
        f.write_f64(self.core_speed);
        f.write_f64(self.failure_prob);
    }
}

impl Fingerprint for StorageConfig {
    /// Behavioural fields only; the three price knobs are excluded for the
    /// same reason as [`FaasConfig`]'s.
    fn fingerprint(&self, f: &mut Fingerprinter) {
        f.write_f64(self.aggregate_bps);
        f.write_f64(self.request_latency_secs);
        f.write_usize(self.replicas);
        f.write_f64(self.get_failure_prob);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MashupConfig;
    use mashup_dag::{Task, TaskProfile, WorkflowBuilder};

    fn wf(name: &str, compute: f64) -> Workflow {
        let mut b = WorkflowBuilder::new(name);
        b.begin_phase();
        b.add_task(Task::new("t", 4, TaskProfile::trivial().compute(compute)));
        b.build().expect("valid")
    }

    #[test]
    fn digests_are_deterministic_and_tag_separated() {
        let w = wf("w", 1.0);
        assert_eq!(w.fingerprint_digest("a"), w.fingerprint_digest("a"));
        assert_ne!(w.fingerprint_digest("a"), w.fingerprint_digest("b"));
    }

    #[test]
    fn every_profile_field_perturbs_the_digest() {
        let base = TaskProfile::trivial();
        let variants = [
            base.clone().compute(2.0),
            base.clone().slowdown(1.1),
            base.clone().io(1.0, 0.0),
            base.clone().io(0.0, 1.0),
            base.clone().memory(1.0),
            base.clone().contention(0.5),
            base.clone().jitter(0.1),
            base.clone().recurring(true),
            base.clone().checkpoint(1.0),
            base.clone().family("fam"),
        ];
        let d0 = base.fingerprint_digest("p");
        let mut seen = vec![d0];
        for v in &variants {
            let d = v.fingerprint_digest("p");
            assert!(!seen.contains(&d), "collision for {v:?}");
            seen.push(d);
        }
    }

    #[test]
    fn workflow_structure_is_captured() {
        assert_ne!(
            wf("w", 1.0).fingerprint_digest("w"),
            wf("w", 2.0).fingerprint_digest("w")
        );
        assert_ne!(
            wf("a", 1.0).fingerprint_digest("w"),
            wf("b", 1.0).fingerprint_digest("w")
        );
    }

    #[test]
    fn faas_price_is_excluded_but_behaviour_included() {
        let cfg = MashupConfig::aws(4);
        let mut priced = cfg.provider.faas.clone();
        priced.price_per_hour *= 10.0;
        assert_eq!(
            cfg.provider.faas.fingerprint_digest("f"),
            priced.fingerprint_digest("f")
        );
        let mut slower = cfg.provider.faas.clone();
        slower.core_speed *= 0.5;
        assert_ne!(
            cfg.provider.faas.fingerprint_digest("f"),
            slower.fingerprint_digest("f")
        );
    }

    #[test]
    fn cluster_price_is_included() {
        let cfg = MashupConfig::aws(4);
        let mut priced = cfg.cluster.clone();
        priced.instance.price_per_hour *= 10.0;
        assert_ne!(
            cfg.cluster.fingerprint_digest("c"),
            priced.fingerprint_digest("c")
        );
        // But the sub-cluster split is overridden by the profiling loop.
        let split = cfg.cluster.clone().with_subclusters(4);
        assert_eq!(
            cfg.cluster.fingerprint_digest("c"),
            split.fingerprint_digest("c")
        );
    }
}
