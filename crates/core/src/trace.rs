//! The trace-invariant oracle: semantic checks over recorded executions.
//!
//! A flight-recorder trace ([`mashup_sim::trace`]) is a complete account of
//! what the simulated platforms did. This module replays that account
//! against the *rules* the platforms are supposed to obey and reports every
//! divergence as a [`Violation`] with a stable machine-readable code:
//!
//! * [`PRECEDENCE`] — no task starts before all of its producers finished
//!   and (when the data crosses the platform boundary) before their outputs
//!   landed in the object store;
//! * [`CAPACITY`] — serverless components fit the function memory cap, and
//!   the per-(sub-cluster, node) VM load reconstructed from the trace
//!   matches what the cluster recorded, with timeshare factors inside the
//!   work-conserving/thrash bounds;
//! * [`CKPT_WINDOW`] — checkpoints land before the invocation's hard
//!   deadline, and every resume restores exactly the remaining compute the
//!   last successful checkpoint recorded (a resume without any prior
//!   checkpoint is a violation);
//! * [`WARM_START`] — an invocation recorded as warm must be explainable by
//!   a live warm-pool entry (an earlier completion within the keep-alive
//!   window, or a pre-warmed microVM), mirroring the platform's LIFO pool;
//! * [`COST`] — GB-seconds, VM node-seconds (including per-node spot
//!   settlements), and storage charges recomputed from the trace reconcile
//!   with the report's expense to within 1e-9;
//! * [`REPLAN`] — every replan is sized to exactly the capacity surviving
//!   the preemptions recorded so far, and no component starts (or retries
//!   onto) a node after its spot reclaim;
//! * [`FAULT_ATTRIB`] — every retry chains to an injected cause: a compute
//!   retry to an earlier spot preemption with the same fault id, a storage
//!   retry to an earlier fault-window activation with the same fault id.
//!
//! The oracle is pure: it never touches a simulation, so it can check
//! golden traces from disk as easily as freshly recorded ones.

use crate::config::MashupConfig;
use crate::report::WorkflowReport;
use mashup_cloud::VmCluster;
use mashup_dag::Workflow;
use mashup_sim::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;

/// A task started before its producers' outputs were readable.
pub const PRECEDENCE: &str = "T-PRECEDENCE";
/// Memory/core accounting diverged from the configured instance or cap.
pub const CAPACITY: &str = "T-CAPACITY";
/// Checkpoint/resume math broke the timeout-window contract.
pub const CKPT_WINDOW: &str = "T-CKPT-WINDOW";
/// A warm start had no live warm-pool entry to explain it.
pub const WARM_START: &str = "T-WARM-START";
/// Expense recomputed from the trace diverged from the report.
pub const COST: &str = "T-COST";
/// A replan's capacity diverged from the surviving nodes, or work landed on
/// a reclaimed node.
pub const REPLAN: &str = "T-REPLAN";
/// A retry or migration had no injected fault to explain it.
pub const FAULT_ATTRIB: &str = "T-FAULT-ATTRIB";

const EPS: f64 = 1e-9;

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable machine-readable code (one of the module constants).
    pub code: &'static str,
    /// Sequence number of the record that exposed the violation (0 when the
    /// violation is about the trace as a whole, e.g. cost reconciliation).
    pub seq: u64,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @seq {}: {}", self.code, self.seq, self.detail)
    }
}

/// Checks every invariant against `records` (one workflow execution traced
/// at flow level or above), returning all violations found. An empty vector
/// means the trace is internally consistent with `cfg`, `workflow`, and the
/// run's `report`.
pub fn check(
    cfg: &MashupConfig,
    workflow: &Workflow,
    report: &WorkflowReport,
    records: &[TraceRecord],
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_precedence(workflow, records, &mut out);
    check_capacity(cfg, records, &mut out);
    check_ckpt_window(records, &mut out);
    check_warm_start(cfg, records, &mut out);
    check_cost(cfg, report, records, &mut out);
    check_replan(cfg, records, &mut out);
    check_fault_attrib(records, &mut out);
    out
}

/// Producer outputs must be readable before a consumer task starts: the
/// producer's `TaskEnd` (and, when its output went through the store, the
/// first `ObjectPut` of `out:<producer>`) must precede the consumer's
/// `TaskStart` in the trace order. Tasks absent from the trace (e.g. a
/// baseline that renamed them) are skipped — absence is not evidence.
fn check_precedence(workflow: &Workflow, records: &[TraceRecord], out: &mut Vec<Violation>) {
    let mut start_seq: BTreeMap<&str, u64> = BTreeMap::new();
    let mut end_seq: BTreeMap<&str, u64> = BTreeMap::new();
    let mut put_seq: BTreeMap<&str, u64> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::TaskStart { task, .. } => {
                start_seq.entry(task).or_insert(r.seq);
            }
            TraceEvent::TaskEnd { task } => {
                end_seq.entry(task).or_insert(r.seq);
            }
            TraceEvent::ObjectPut { key, .. } => {
                if let Some(name) = key.strip_prefix("out:") {
                    put_seq.entry(name).or_insert(r.seq);
                }
            }
            _ => {}
        }
    }
    for r in workflow.task_refs() {
        let t = workflow.task(r);
        let Some(&consumer_start) = start_seq.get(t.name.as_str()) else {
            continue;
        };
        for dep in &t.deps {
            let p = &workflow.task(dep.producer).name;
            if !start_seq.contains_key(p.as_str()) {
                continue; // producer never traced under this name
            }
            match end_seq.get(p.as_str()) {
                None => out.push(Violation {
                    code: PRECEDENCE,
                    seq: consumer_start,
                    detail: format!("'{}' started but its producer '{p}' never ended", t.name),
                }),
                Some(&e) if e >= consumer_start => out.push(Violation {
                    code: PRECEDENCE,
                    seq: consumer_start,
                    detail: format!(
                        "'{}' started (seq {consumer_start}) before its producer '{p}' \
                         ended (seq {e})",
                        t.name
                    ),
                }),
                _ => {}
            }
            if let Some(&ps) = put_seq.get(p.as_str()) {
                if ps >= consumer_start {
                    out.push(Violation {
                        code: PRECEDENCE,
                        seq: consumer_start,
                        detail: format!(
                            "'{}' started (seq {consumer_start}) before '{p}' uploaded \
                             its output (seq {ps})",
                            t.name
                        ),
                    });
                }
            }
        }
    }
}

/// Serverless segments must fit the function memory cap; VM component loads
/// reconstructed from start/end pairs must match the loads the cluster
/// recorded, with timeshare factors inside
/// `[max(1, load/cores), max(1, load/cores) × MAX_THRASH]`.
fn check_capacity(cfg: &MashupConfig, records: &[TraceRecord], out: &mut Vec<Violation>) {
    let fn_cap = cfg.provider.faas.memory_gb;
    let cores = cfg.cluster.instance.cores;
    let mut loads: BTreeMap<(usize, usize), i64> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::SegmentStart { task, mem_gb, .. } if *mem_gb > fn_cap + EPS => {
                out.push(Violation {
                    code: CAPACITY,
                    seq: r.seq,
                    detail: format!(
                        "segment of '{task}' holds {mem_gb} GiB but functions \
                         cap at {fn_cap} GiB"
                    ),
                });
            }
            TraceEvent::VmCompStart {
                task,
                sub,
                node,
                load,
                factor,
                ..
            } => {
                let l = loads.entry((*sub, *node)).or_insert(0);
                *l += 1;
                if *l != *load as i64 {
                    out.push(Violation {
                        code: CAPACITY,
                        seq: r.seq,
                        detail: format!(
                            "'{task}' on sub {sub} node {node}: recorded load {load} \
                             but the trace reconstructs {l}"
                        ),
                    });
                    // Trust the recorded value from here on so one corruption
                    // does not cascade into a violation per later component.
                    *l = *load as i64;
                }
                let oversub = (*load as f64 / cores as f64).max(1.0);
                if *factor < oversub - EPS || *factor > oversub * VmCluster::MAX_THRASH + EPS {
                    out.push(Violation {
                        code: CAPACITY,
                        seq: r.seq,
                        detail: format!(
                            "'{task}' timeshare factor {factor} outside \
                             [{oversub}, {}] for load {load} on {cores} cores",
                            oversub * VmCluster::MAX_THRASH
                        ),
                    });
                }
            }
            TraceEvent::VmCompEnd { task, sub, node } => {
                let l = loads.entry((*sub, *node)).or_insert(0);
                *l -= 1;
                if *l < 0 {
                    out.push(Violation {
                        code: CAPACITY,
                        seq: r.seq,
                        detail: format!(
                            "'{task}' ended on sub {sub} node {node} with no live \
                             component (load went negative)"
                        ),
                    });
                    *l = 0;
                }
            }
            _ => {}
        }
    }
}

/// Checkpoints must land before the owning invocation's hard deadline, and
/// every resume must restore exactly what the last successful checkpoint of
/// its (task, chain) recorded.
fn check_ckpt_window(records: &[TraceRecord], out: &mut Vec<Violation>) {
    let mut deadline_of: BTreeMap<u64, f64> = BTreeMap::new();
    let mut last_remaining: BTreeMap<(String, u32), f64> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::FnStart {
                id, deadline_secs, ..
            } => {
                deadline_of.insert(*id, *deadline_secs);
            }
            TraceEvent::Checkpoint {
                task,
                chain,
                inv,
                remaining_secs,
                ..
            } => {
                match deadline_of.get(inv) {
                    None => out.push(Violation {
                        code: CKPT_WINDOW,
                        seq: r.seq,
                        detail: format!(
                            "checkpoint of '{task}' chain {chain} references unknown \
                             invocation {inv}"
                        ),
                    }),
                    Some(&d) if r.t_secs > d + EPS => out.push(Violation {
                        code: CKPT_WINDOW,
                        seq: r.seq,
                        detail: format!(
                            "checkpoint of '{task}' chain {chain} at t={} is past \
                             invocation {inv}'s deadline {d}",
                            r.t_secs
                        ),
                    }),
                    _ => {}
                }
                last_remaining.insert((task.clone(), *chain), *remaining_secs);
            }
            TraceEvent::CheckpointResume {
                task,
                chain,
                remaining_secs,
                ..
            } => match last_remaining.get(&(task.clone(), *chain)) {
                None => out.push(Violation {
                    code: CKPT_WINDOW,
                    seq: r.seq,
                    detail: format!(
                        "'{task}' chain {chain} resumed from a checkpoint but none \
                         was ever recorded"
                    ),
                }),
                Some(&rem) if (rem - *remaining_secs).abs() > EPS => out.push(Violation {
                    code: CKPT_WINDOW,
                    seq: r.seq,
                    detail: format!(
                        "'{task}' chain {chain} resumed {remaining_secs} s of compute \
                         but the last checkpoint recorded {rem} s"
                    ),
                }),
                _ => {}
            },
            _ => {}
        }
    }
}

/// Every warm start must be explainable by a live pool entry: a prior
/// completion of the same code identity within the keep-alive window, or a
/// pre-warmed microVM that was ready and unexpired. The reconstruction
/// mirrors the platform's pool exactly (LIFO, pushes in time order, expired
/// entries pruned at take time).
fn check_warm_start(cfg: &MashupConfig, records: &[TraceRecord], out: &mut Vec<Violation>) {
    let keep_alive = cfg.provider.faas.keep_alive_secs;
    // Per code identity: live expiry stack + pre-warm entries not yet ready.
    let mut pools: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut pending: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new(); // (warm_at, expires)
    let mut code_of: BTreeMap<u64, String> = BTreeMap::new();

    // Moves pre-warm entries that became ready by `t` into the live pool,
    // in readiness order (they were pushed at their warm-at instants).
    fn flush(pool: &mut Vec<f64>, pending: &mut Vec<(f64, f64)>, t: f64) {
        let mut ready: Vec<(f64, f64)> = Vec::new();
        pending.retain(|&(warm_at, expires)| {
            if warm_at <= t {
                ready.push((warm_at, expires));
                false
            } else {
                true
            }
        });
        ready.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite warm-at"));
        pool.extend(ready.into_iter().map(|(_, expires)| expires));
    }

    for r in records {
        match &r.event {
            TraceEvent::FnPrewarm {
                code,
                warm_secs,
                expires_secs,
                ..
            } => {
                pending
                    .entry(code.clone())
                    .or_default()
                    .push((*warm_secs, *expires_secs));
            }
            TraceEvent::FnStart { id, code, cold, .. } => {
                code_of.insert(*id, code.clone());
                let pool = pools.entry(code.clone()).or_default();
                flush(pool, pending.entry(code.clone()).or_default(), r.t_secs);
                // The platform prunes expired entries on every take, cold or
                // warm, so mirror that before deciding availability.
                pool.retain(|&expires| expires > r.t_secs);
                if !cold && pool.pop().is_none() {
                    out.push(Violation {
                        code: WARM_START,
                        seq: r.seq,
                        detail: format!(
                            "invocation {id} of '{code}' started warm at t={} with no \
                             live warm-pool entry",
                            r.t_secs
                        ),
                    });
                }
            }
            TraceEvent::FnEnd { id, .. } => {
                if let Some(code) = code_of.get(id) {
                    let pool = pools.entry(code.clone()).or_default();
                    flush(pool, pending.entry(code.clone()).or_default(), r.t_secs);
                    pool.push(r.t_secs + keep_alive);
                }
            }
            _ => {}
        }
    }
}

/// Recomputes the run's expense from the trace — function-seconds billed at
/// completion/kill/pre-warm, VM node-seconds at billing stops, storage
/// occupancy from object lifetimes, and request charges from GET/PUT
/// batches — and reconciles each component with the report to within 1e-9.
/// The accumulation mirrors the cost meter's order of operations so the
/// comparison is exact, not approximate.
fn check_cost(
    cfg: &MashupConfig,
    report: &WorkflowReport,
    records: &[TraceRecord],
    out: &mut Vec<Violation>,
) {
    let faas_price = cfg.provider.faas.price_per_hour;
    let vm_price = cfg.cluster.instance.price_per_hour;
    let st = &cfg.provider.storage;
    const SECS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;

    let mut faas_dollars = 0.0;
    let mut vm_dollars = 0.0;
    let mut byte_seconds = 0.0;
    let mut request_dollars = 0.0;
    let mut live_objects: BTreeMap<String, (f64, f64)> = BTreeMap::new(); // key -> (bytes, put_t)

    for r in records {
        match &r.event {
            TraceEvent::FnEnd { billed_secs, .. } | TraceEvent::FnKill { billed_secs, .. } => {
                faas_dollars += billed_secs / 3600.0 * faas_price;
            }
            TraceEvent::FnPrewarm { latency_secs, .. } => {
                faas_dollars += latency_secs / 3600.0 * faas_price;
            }
            TraceEvent::BillingStop { node_seconds } => {
                vm_dollars += node_seconds / 3600.0 * vm_price;
            }
            TraceEvent::SpotBill { dollars, .. } => {
                vm_dollars += dollars;
            }
            TraceEvent::StoreGet {
                requests, retried, ..
            } => {
                request_dollars += *requests as f64 * st.price_per_get;
                if *retried {
                    request_dollars += *requests as f64 * st.price_per_get;
                }
            }
            TraceEvent::StorePut {
                requests, replicas, ..
            } => {
                request_dollars += (*requests * *replicas) as f64 * st.price_per_put;
            }
            TraceEvent::ObjectPut { key, bytes } => {
                // Overwrites settle the old object's occupancy first.
                if let Some((old_bytes, put_t)) = live_objects.remove(key) {
                    byte_seconds += old_bytes * st.replicas as f64 * (r.t_secs - put_t).max(0.0);
                }
                live_objects.insert(key.clone(), (*bytes, r.t_secs));
            }
            TraceEvent::ObjectRemove { key } => {
                if let Some((bytes, put_t)) = live_objects.remove(key) {
                    byte_seconds += bytes * st.replicas as f64 * (r.t_secs - put_t).max(0.0);
                }
            }
            _ => {}
        }
    }

    let storage_dollars =
        byte_seconds / 1e9 / SECS_PER_MONTH * st.price_per_gb_month + request_dollars;
    let checks = [
        ("faas", faas_dollars, report.expense.faas_dollars),
        ("vm", vm_dollars, report.expense.vm_dollars),
        ("storage", storage_dollars, report.expense.storage_dollars),
    ];
    for (what, recomputed, reported) in checks {
        if (recomputed - reported).abs() > 1e-9 {
            out.push(Violation {
                code: COST,
                seq: 0,
                detail: format!(
                    "{what} dollars recomputed from the trace ({recomputed}) do not \
                     reconcile with the report ({reported})"
                ),
            });
        }
    }
}

/// Replans must be consistent with surviving capacity: every `Replan`
/// record's `nodes_after` equals the configured node count minus the spot
/// preemptions recorded before it, and once a node is reclaimed no later
/// component starts — or retries onto — it.
fn check_replan(cfg: &MashupConfig, records: &[TraceRecord], out: &mut Vec<Violation>) {
    let nodes = cfg.cluster.nodes;
    let mut preempted: std::collections::BTreeSet<(usize, usize)> = Default::default();
    for r in records {
        match &r.event {
            TraceEvent::SpotPreempt { sub, node, .. } => {
                preempted.insert((*sub, *node));
            }
            TraceEvent::Replan {
                nodes_after, phase, ..
            } => {
                let surviving = nodes - preempted.len().min(nodes);
                if *nodes_after != surviving {
                    out.push(Violation {
                        code: REPLAN,
                        seq: r.seq,
                        detail: format!(
                            "replan at phase {phase} sized for {nodes_after} nodes but \
                             {} of {nodes} were reclaimed ({surviving} survive)",
                            preempted.len()
                        ),
                    });
                }
            }
            TraceEvent::VmCompStart {
                task, sub, node, ..
            } if preempted.contains(&(*sub, *node)) => {
                out.push(Violation {
                    code: REPLAN,
                    seq: r.seq,
                    detail: format!(
                        "'{task}' started a component on sub {sub} node {node} after \
                         that node was reclaimed"
                    ),
                });
            }
            TraceEvent::CompRetry {
                task, sub, node, ..
            } if preempted.contains(&(*sub, *node)) => {
                out.push(Violation {
                    code: REPLAN,
                    seq: r.seq,
                    detail: format!(
                        "'{task}' retried onto sub {sub} node {node}, which was \
                         already reclaimed"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// Every retry must chain to an injected cause that precedes it in the
/// trace: a `CompRetry` to a `SpotPreempt` with the same fault id, a
/// `FaultRetry` to a `FaultInjected` with the same fault id. An unexplained
/// retry means the platforms did recovery work no fault asked for.
fn check_fault_attrib(records: &[TraceRecord], out: &mut Vec<Violation>) {
    let mut preempt_ids: std::collections::BTreeSet<u64> = Default::default();
    let mut injected_ids: std::collections::BTreeSet<u64> = Default::default();
    for r in records {
        match &r.event {
            TraceEvent::SpotPreempt { id, .. } => {
                preempt_ids.insert(*id);
            }
            TraceEvent::FaultInjected { id, .. } => {
                injected_ids.insert(*id);
            }
            TraceEvent::CompRetry { id, task, .. } if !preempt_ids.contains(id) => {
                out.push(Violation {
                    code: FAULT_ATTRIB,
                    seq: r.seq,
                    detail: format!(
                        "'{task}' retried citing fault {id}, but no preemption \
                         with that id precedes it"
                    ),
                });
            }
            TraceEvent::FaultRetry { id, op } if !injected_ids.contains(id) => {
                out.push(Violation {
                    code: FAULT_ATTRIB,
                    seq: r.seq,
                    detail: format!(
                        "a storage {op} retried citing fault {id}, but no fault \
                         window with that id was activated before it"
                    ),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_traced;
    use crate::placement::{PlacementPlan, Platform};
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};
    use mashup_sim::Tracer;

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("oracle-wf");
        b.initial_input_bytes(1.0e9);
        b.begin_phase();
        let a = b.add_task(Task::new(
            "wide",
            64,
            TaskProfile::trivial().compute(5.0).io(1.0e7, 1.0e7),
        ));
        b.begin_phase();
        let m = b.add_task(Task::new(
            "merge",
            1,
            TaskProfile::trivial().compute(10.0).io(6.4e8, 1.0e7),
        ));
        b.depend(m, a, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    fn traced(
        plan_platform: Platform,
    ) -> (MashupConfig, Workflow, WorkflowReport, Vec<TraceRecord>) {
        let cfg = MashupConfig::aws(4);
        let w = wf();
        let plan = PlacementPlan::uniform(&w, plan_platform);
        let tracer = Tracer::new();
        let report = execute_traced(&cfg, &w, &plan, "test", &tracer);
        let records = tracer.take();
        (cfg, w, report, records)
    }

    #[test]
    fn clean_serverless_run_has_no_violations() {
        let (cfg, w, report, records) = traced(Platform::Serverless);
        assert!(!records.is_empty());
        let v = check(&cfg, &w, &report, &records);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clean_vm_run_has_no_violations() {
        let (cfg, w, report, records) = traced(Platform::VmCluster);
        let v = check(&cfg, &w, &report, &records);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reordered_task_start_is_a_precedence_violation() {
        let (cfg, w, report, mut records) = traced(Platform::VmCluster);
        // Move the consumer's start before the producer's end by swapping
        // their sequence numbers.
        let start = records
            .iter()
            .position(|r| matches!(&r.event, TraceEvent::TaskStart { task, .. } if task == "merge"))
            .expect("merge started");
        let end = records
            .iter()
            .position(|r| matches!(&r.event, TraceEvent::TaskEnd { task } if task == "wide"))
            .expect("wide ended");
        let (s, e) = (records[start].seq, records[end].seq);
        records[start].seq = e;
        records[end].seq = s;
        let v = check(&cfg, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == PRECEDENCE), "{v:?}");
    }

    #[test]
    fn inflated_vm_load_is_a_capacity_violation() {
        let (cfg, w, report, mut records) = traced(Platform::VmCluster);
        let r = records
            .iter_mut()
            .find(|r| matches!(&r.event, TraceEvent::VmCompStart { .. }))
            .expect("vm components ran");
        if let TraceEvent::VmCompStart { load, .. } = &mut r.event {
            *load += 7;
        }
        let v = check(&cfg, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == CAPACITY), "{v:?}");
    }

    #[test]
    fn scaled_billing_is_a_cost_violation() {
        let (cfg, w, report, mut records) = traced(Platform::Serverless);
        let r = records
            .iter_mut()
            .find(|r| matches!(&r.event, TraceEvent::FnEnd { .. }))
            .expect("functions completed");
        if let TraceEvent::FnEnd { billed_secs, .. } = &mut r.event {
            *billed_secs *= 2.0;
        }
        let v = check(&cfg, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == COST), "{v:?}");
    }

    #[test]
    fn flipped_cold_flag_is_a_warm_start_violation() {
        let (cfg, w, report, mut records) = traced(Platform::Serverless);
        let r = records
            .iter_mut()
            .find(|r| matches!(&r.event, TraceEvent::FnStart { cold: true, .. }))
            .expect("cold starts happened");
        if let TraceEvent::FnStart { cold, .. } = &mut r.event {
            *cold = false;
        }
        let v = check(&cfg, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == WARM_START), "{v:?}");
    }

    /// An all-VM run under a single scheduled preemption with the adaptive
    /// controller on: exercises retries, spot billing, and a replan.
    fn traced_chaos() -> (MashupConfig, Workflow, WorkflowReport, Vec<TraceRecord>) {
        let mut cfg = MashupConfig::aws(4);
        let mut plan = mashup_cloud::FaultPlan::empty(5);
        plan.faults.push(mashup_cloud::Fault::Preempt {
            at_secs: 3.0,
            node: 1,
        });
        cfg.chaos = Some(crate::chaos::ChaosSpec::new(plan).with_adaptive(true));
        let w = wf();
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let tracer = Tracer::new();
        let report = execute_traced(&cfg, &w, &plan, "test", &tracer);
        (cfg, w, report, tracer.take())
    }

    #[test]
    fn clean_chaos_run_has_no_violations() {
        let (cfg, w, report, records) = traced_chaos();
        assert!(
            records
                .iter()
                .any(|r| matches!(&r.event, TraceEvent::SpotPreempt { .. })),
            "the scheduled preemption must appear in the trace"
        );
        assert!(
            records
                .iter()
                .any(|r| matches!(&r.event, TraceEvent::Replan { .. })),
            "capacity loss must trigger a replan at the phase boundary"
        );
        let v = check(&cfg, &w, &report, &records);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn oversized_replan_is_a_replan_violation() {
        let (cfg, w, report, mut records) = traced_chaos();
        let r = records
            .iter_mut()
            .find(|r| matches!(&r.event, TraceEvent::Replan { .. }))
            .expect("a replan was recorded");
        if let TraceEvent::Replan { nodes_after, .. } = &mut r.event {
            *nodes_after += 1; // claims capacity the preemption removed
        }
        let v = check(&cfg, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == REPLAN), "{v:?}");
    }

    #[test]
    fn retry_on_a_reclaimed_node_is_a_replan_violation() {
        let (cfg, w, report, mut records) = traced_chaos();
        let reclaimed = records
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::SpotPreempt { sub, node, .. } => Some((*sub, *node)),
                _ => None,
            })
            .expect("a preemption was recorded");
        let r = records
            .iter_mut()
            .find(|r| matches!(&r.event, TraceEvent::CompRetry { .. }))
            .expect("the preemption forced retries");
        if let TraceEvent::CompRetry { sub, node, .. } = &mut r.event {
            (*sub, *node) = reclaimed;
        }
        let v = check(&cfg, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == REPLAN), "{v:?}");
    }

    #[test]
    fn unattributed_retries_are_fault_attrib_violations() {
        let (cfg, w, report, mut records) = traced_chaos();
        // Point a real retry at a fault id that was never injected.
        let r = records
            .iter_mut()
            .find(|r| matches!(&r.event, TraceEvent::CompRetry { .. }))
            .expect("the preemption forced retries");
        if let TraceEvent::CompRetry { id, .. } = &mut r.event {
            *id += 40;
        }
        // And append a storage retry with no fault window behind it.
        let last = records.last().expect("nonempty trace");
        records.push(TraceRecord {
            seq: last.seq + 1,
            t_secs: last.t_secs,
            event: TraceEvent::FaultRetry {
                id: 7,
                op: "get".into(),
            },
        });
        let v = check(&cfg, &w, &report, &records);
        let hits = v.iter().filter(|v| v.code == FAULT_ATTRIB).count();
        assert_eq!(hits, 2, "{v:?}");
    }

    #[test]
    fn resume_without_checkpoint_is_a_window_violation() {
        let cfg = MashupConfig::aws(4);
        let mut shortened = cfg.clone();
        // A 100 s cap with 150 s of compute forces a checkpoint chain.
        shortened.provider.faas.timeout_secs = 100.0;
        let mut b = WorkflowBuilder::new("ckpt-wf");
        b.initial_input_bytes(1.0e6);
        b.begin_phase();
        b.add_task(Task::new(
            "long",
            2,
            TaskProfile::trivial().compute(150.0).checkpoint(5.0e7),
        ));
        let w = b.build().expect("valid");
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let tracer = Tracer::new();
        let report = execute_traced(&shortened, &w, &plan, "test", &tracer);
        let mut records = tracer.take();
        assert!(
            records
                .iter()
                .any(|r| matches!(&r.event, TraceEvent::CheckpointResume { .. })),
            "the shortened cap must force a resume"
        );
        let clean = check(&shortened, &w, &report, &records);
        assert!(clean.is_empty(), "{clean:?}");
        // Drop every checkpoint record: resumes now restore unrecorded state.
        records.retain(|r| !matches!(&r.event, TraceEvent::Checkpoint { .. }));
        let v = check(&shortened, &w, &report, &records);
        assert!(v.iter().any(|v| v.code == CKPT_WINDOW), "{v:?}");
    }
}
