//! # mashup-core
//!
//! The Mashup engine — the primary contribution of *"Mashup: Making
//! Serverless Computing Useful for HPC Workflows via Hybrid Execution"*
//! (PPoPP '22) — reimplemented over simulated cloud substrates:
//!
//! * [`Pdc`] — the Placement Decision Controller: a full VM profiling pass,
//!   single-component serverless probes, the Eq. 1/2 analytical models with
//!   autonomously calibrated factors, and the Algorithm 1 decision rules
//!   (conservative cold-start penalty, memory and short-task forcing, the
//!   recurring-task warm-pool exception, alternative objectives);
//! * [`execute`] — the hybrid executor: phase-ordered execution across the
//!   VM cluster and the serverless platform with store-mediated data
//!   exchange, checkpointing across the FaaS time cap, and pre-warming;
//! * [`Mashup`] — the one-call engine combining both;
//! * [`plan_without_pdc`] — the paper's "Mashup w/o PDC" baseline design;
//! * [`trace::check`] — the trace-invariant oracle: replays a recorded
//!   execution ([`Tracer`]) against precedence, capacity, checkpoint-window,
//!   warm-start, and cost-reconciliation rules.
//!
//! Reports ([`WorkflowReport`], [`TaskReport`], [`PdcReport`]) carry the
//! makespan, expense, placement, and overhead decomposition (cold start,
//! I/O, scaling, checkpoints) that the paper's evaluation figures analyse.

#![warn(missing_docs)]

mod analysis;
mod cache;
pub mod chaos;
mod config;
mod engine;
mod exec;
mod fingerprint;
mod naive;
pub mod pareto;
mod pdc;
mod placement;
mod report;
pub mod trace;

pub use analysis::{engine_params, preflight};
pub use cache::{
    CacheStats, PhaseProfileEntry, PlanCache, ProbeEntry, SectionStats, VmProfileEntry,
};
pub use chaos::ChaosSpec;
pub use config::{CloudEnv, MashupConfig, Sizing, MEMORY_TIERS_GB};
pub use engine::{Mashup, MashupOutcome};
pub use exec::{
    execute, execute_in, execute_sized, execute_traced, try_execute, try_execute_in,
    try_execute_sized, try_execute_sized_traced, try_execute_traced,
};
pub use fingerprint::{Fingerprint, Fingerprinter};
pub use mashup_analyze::{AnalysisError, Code, Diagnostic, Location, Severity};
pub use mashup_sim::{KillReason, TraceEvent, TraceRecord, Tracer};
pub use naive::plan_without_pdc;
pub use pdc::{
    calibrate, estimate_serverless_time, fit_gamma, ModelFactors, Objective, Pdc, PdcReport,
    ReplanStats, TaskDecision,
};
pub use placement::{PlacementPlan, Platform, UnassignedTask};
pub use report::{improvement_pct, TaskReport, WorkflowReport};
pub use trace::Violation;
