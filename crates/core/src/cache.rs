//! The content-addressed planning cache.
//!
//! `Pdc::decide` does three kinds of simulated profiling work per call —
//! calibration micro-batches, full VM profiling passes (the k ∈ {1,2,4}
//! sub-cluster search), and one single-component serverless probe per task.
//! Across a figure sweep, neighbouring cells differ in a knob (node count,
//! pricing, objective, input scale) that leaves most of that work
//! identical. [`PlanCache`] memoizes each stage under a content fingerprint
//! of exactly the inputs that determine it (see [`crate::fingerprint`]):
//!
//! * **calibration** — seed + FaaS/storage behaviour + checkpoint margin;
//! * **VM profiling** — workflow + cluster shape (incl. instance price:
//!   VM expense is accrued at charge time) + seed;
//! * **probes** — seed + task phase/name/profile + FaaS/storage behaviour +
//!   checkpoint margin — *not* the cluster, so node-count sweeps reuse all
//!   probes, and *not* prices, so pricing sweeps reuse everything.
//!
//! Memoization is pure: the same key always maps to the same stored value
//! (the profiling simulations are seed-deterministic), values are cloned
//! out, and every decision step downstream of the cached stages is
//! recomputed per call — so reports are bit-identical with the cache on,
//! off, or shared between any number of sweep workers.
//!
//! The cache is sharded (`RwLock` per shard, keyed by the low fingerprint
//! bits) and shared across threads behind an `Arc`; hit/miss/entry counts
//! and per-stage compute time are tracked for the `figures` summary line.

use crate::pdc::ModelFactors;
use mashup_cloud::Expense;
use serde::{Deserialize, Serialize};
// Shard maps are keyed by content fingerprints and never order-iterated,
// so iteration order cannot leak into simulated results.
// lint: allow(hash-collections)
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
// Wall-clock time feeds the hit/miss observability counters only; no
// simulated quantity reads it.
// lint: allow(wall-clock)
use std::time::Instant;

const SHARDS: usize = 16;

/// The memoized result of the VM profiling stage (all candidate
/// sub-cluster splits, reduced).
#[derive(Debug, Clone, PartialEq)]
pub struct VmProfileEntry {
    /// Each task's best cluster-side makespan across the splits, indexed by
    /// flat task id (phase-major order, matching `Workflow::task_refs`).
    pub best_task_vm: Vec<f64>,
    /// The winning sub-cluster split.
    pub subclusters: usize,
    /// Makespan of the winning profiling pass, seconds.
    pub vm_makespan_secs: f64,
    /// Total expense of all profiling passes.
    pub expense: Expense,
}

/// The memoized result of profiling one phase in isolation (the
/// incremental-replan analogue of the full VM profiling pass): per-task
/// best cluster-side makespans across the k ∈ {1,2,4} splits, for the
/// tasks of a single phase started together at t = 0.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfileEntry {
    /// Best makespan per task, indexed by position within the phase.
    pub task_secs: Vec<f64>,
    /// Total expense of the scoped profiling passes.
    pub expense: Expense,
}

/// The memoized result of one single-component serverless probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEntry {
    /// Probe wall time, seconds.
    pub probe_secs: f64,
    /// Busy function-seconds of the probe environment.
    pub probe_busy_secs: f64,
}

/// One stage's map plus its counters.
struct Section<V> {
    shards: Vec<RwLock<HashMap<u128, V>>>, // lint: allow(hash-collections)
    hits: AtomicU64,
    misses: AtomicU64,
    compute_nanos: AtomicU64,
}

impl<V: Clone> Section<V> {
    fn new() -> Self {
        Section {
            // lint: allow(hash-collections)
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compute_nanos: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss. The computation runs *outside* the shard lock (it is a whole
    /// simulation); on a concurrent race the first inserted value wins —
    /// harmless, because equal keys always compute equal values.
    fn get_or_compute(&self, key: u128, compute: impl FnOnce() -> V) -> V {
        let shard = &self.shards[key as usize % SHARDS];
        if let Some(v) = shard.read().expect("cache shard lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        let start = Instant::now(); // lint: allow(wall-clock)
        let v = compute();
        self.compute_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .write()
            .expect("cache shard lock")
            .entry(key)
            .or_insert(v)
            .clone()
    }

    fn stats(&self) -> SectionStats {
        SectionStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard lock").len() as u64)
                .sum(),
            compute_secs: self.compute_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }
}

/// Hit/miss/entry counters and miss-side compute time for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SectionStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the profiling simulation.
    pub misses: u64,
    /// Distinct keys currently stored.
    pub entries: u64,
    /// Wall time spent computing misses, seconds (summed across workers).
    pub compute_secs: f64,
}

impl SectionStats {
    /// Hit fraction in percent (0 when the stage was never queried).
    pub fn hit_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }
}

/// A point-in-time snapshot of all stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Calibration micro-batch stage.
    pub calibration: SectionStats,
    /// VM profiling-pass stage.
    pub vm_profile: SectionStats,
    /// Per-task serverless probe stage.
    pub probes: SectionStats,
    /// Scoped per-phase profiling stage (incremental replan).
    #[serde(default)]
    pub phase_profiles: SectionStats,
}

impl CacheStats {
    /// Total hits across stages.
    pub fn hits(&self) -> u64 {
        self.calibration.hits + self.vm_profile.hits + self.probes.hits + self.phase_profiles.hits
    }

    /// Total misses across stages.
    pub fn misses(&self) -> u64 {
        self.calibration.misses
            + self.vm_profile.misses
            + self.probes.misses
            + self.phase_profiles.misses
    }

    /// Total stored entries across stages.
    pub fn entries(&self) -> u64 {
        self.calibration.entries
            + self.vm_profile.entries
            + self.probes.entries
            + self.phase_profiles.entries
    }

    /// Total miss-side compute seconds across stages.
    pub fn compute_secs(&self) -> f64 {
        self.calibration.compute_secs
            + self.vm_profile.compute_secs
            + self.probes.compute_secs
            + self.phase_profiles.compute_secs
    }
}

/// The concurrent planning cache. Share one instance (behind an `Arc`)
/// across all sweep workers; see the module docs for the key scheme.
pub struct PlanCache {
    calibration: Section<ModelFactors>,
    vm_profile: Section<VmProfileEntry>,
    probes: Section<ProbeEntry>,
    phase_profiles: Section<PhaseProfileEntry>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            calibration: Section::new(),
            vm_profile: Section::new(),
            probes: Section::new(),
            phase_profiles: Section::new(),
        }
    }

    /// Calibration factors for `key`, computing on a miss.
    pub fn calibration(&self, key: u128, compute: impl FnOnce() -> ModelFactors) -> ModelFactors {
        self.calibration.get_or_compute(key, compute)
    }

    /// VM profiling result for `key`, computing on a miss.
    pub fn vm_profile(
        &self,
        key: u128,
        compute: impl FnOnce() -> VmProfileEntry,
    ) -> VmProfileEntry {
        self.vm_profile.get_or_compute(key, compute)
    }

    /// Probe result for `key`, computing on a miss.
    pub fn probe(&self, key: u128, compute: impl FnOnce() -> ProbeEntry) -> ProbeEntry {
        self.probes.get_or_compute(key, compute)
    }

    /// Scoped phase-profiling result for `key`, computing on a miss.
    pub fn phase_profile(
        &self,
        key: u128,
        compute: impl FnOnce() -> PhaseProfileEntry,
    ) -> PhaseProfileEntry {
        self.phase_profiles.get_or_compute(key, compute)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            calibration: self.calibration.stats(),
            vm_profile: self.vm_profile.stats(),
            probes: self.probes.stats(),
            phase_profiles: self.phase_profiles.stats(),
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factors(alpha: f64) -> ModelFactors {
        ModelFactors {
            alpha,
            beta: 1.0,
            gamma: 1.0,
            store_bps: 1e9,
            burst: 64,
        }
    }

    #[test]
    fn hit_returns_stored_value_without_recompute() {
        let cache = PlanCache::new();
        let a = cache.calibration(7, || factors(1.0));
        let b = cache.calibration(7, || panic!("must not recompute on a hit"));
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!(s.calibration.hits, 1);
        assert_eq!(s.calibration.misses, 1);
        assert_eq!(s.calibration.entries, 1);
    }

    #[test]
    fn distinct_keys_store_distinct_entries() {
        let cache = PlanCache::new();
        for k in 0..100u128 {
            cache.probe(k, || ProbeEntry {
                probe_secs: k as f64,
                probe_busy_secs: 0.0,
            });
        }
        assert_eq!(cache.stats().probes.entries, 100);
        assert_eq!(cache.probe(42, || unreachable!()).probe_secs, 42.0);
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let cache = std::sync::Arc::new(PlanCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = cache.clone();
                s.spawn(move || {
                    for k in 0..50u128 {
                        c.probe(k, || ProbeEntry {
                            probe_secs: (k * 2) as f64,
                            probe_busy_secs: 1.0,
                        });
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.probes.entries, 50);
        assert_eq!(s.probes.hits + s.probes.misses, 200);
        for k in 0..50u128 {
            assert_eq!(cache.probe(k, || unreachable!()).probe_secs, (k * 2) as f64);
        }
    }

    #[test]
    fn stats_percentages_and_totals() {
        let cache = PlanCache::new();
        cache.calibration(1, || factors(0.1));
        cache.calibration(1, || factors(0.1));
        cache.calibration(1, || factors(0.1));
        let s = cache.stats();
        assert!((s.calibration.hit_pct() - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.entries(), 1);
        assert_eq!(SectionStats::default().hit_pct(), 0.0);
    }
}
