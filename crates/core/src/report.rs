//! Execution reports: makespan, expense, and overhead decomposition.

use crate::placement::{PlacementPlan, Platform};
use mashup_cloud::Expense;
use serde::{Deserialize, Serialize};

/// Per-task execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Where the task ran.
    pub platform: Platform,
    /// Phase index.
    pub phase: usize,
    /// Component count.
    pub components: usize,
    /// Submission instant, seconds into the run.
    pub start_secs: f64,
    /// Completion instant.
    pub end_secs: f64,
    /// Sum of per-component compute wall time.
    pub compute_secs: f64,
    /// Sum of per-component I/O wall time.
    pub io_secs: f64,
    /// Total cold-start latency paid (0 for VM runs).
    pub cold_start_secs: f64,
    /// Scaling time (first-to-last function start; 0 for VM runs).
    pub scaling_secs: f64,
    /// Checkpoint/restart cycles (0 for VM runs).
    pub checkpoints: u64,
    /// Cold starts (0 for VM runs).
    pub n_cold: u64,
    /// Warm starts (0 for VM runs).
    pub n_warm: u64,
}

impl TaskReport {
    /// Wall-clock makespan of the task.
    pub fn makespan_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }

    /// Cold start time as a fraction of total busy time (the Fig. 4(b)
    /// metric). Zero when the task did no work.
    pub fn cold_start_fraction(&self) -> f64 {
        let busy = self.compute_secs + self.io_secs + self.cold_start_secs;
        if busy <= 0.0 {
            0.0
        } else {
            self.cold_start_secs / busy
        }
    }

    /// I/O time as a fraction of total busy time (the Fig. 4(a) metric).
    pub fn io_fraction(&self) -> f64 {
        let busy = self.compute_secs + self.io_secs + self.cold_start_secs;
        if busy <= 0.0 {
            0.0
        } else {
            self.io_secs / busy
        }
    }
}

/// Whole-workflow execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowReport {
    /// Workflow name.
    pub workflow: String,
    /// Strategy label (e.g. `"mashup"`, `"traditional"`).
    pub strategy: String,
    /// Cluster size used (0 for serverless-only).
    pub cluster_nodes: usize,
    /// End-to-end makespan in seconds.
    pub makespan_secs: f64,
    /// Expense breakdown in dollars.
    pub expense: Expense,
    /// The placement executed.
    pub plan: PlacementPlan,
    /// Per-task records in execution order.
    pub tasks: Vec<TaskReport>,
}

impl WorkflowReport {
    /// Total cold-start seconds across tasks.
    pub fn total_cold_start_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.cold_start_secs).sum()
    }

    /// Total I/O seconds across tasks.
    pub fn total_io_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.io_secs).sum()
    }

    /// Total scaling seconds across tasks.
    pub fn total_scaling_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.scaling_secs).sum()
    }

    /// Total checkpoints taken.
    pub fn total_checkpoints(&self) -> u64 {
        self.tasks.iter().map(|t| t.checkpoints).sum()
    }

    /// The record for a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// The paper's headline metric: percentage improvement of `ours` over
/// `baseline` — `(1 - ours/baseline) × 100` (§4). Positive is better.
pub fn improvement_pct(ours: f64, baseline: f64) -> f64 {
    assert!(baseline > 0.0, "baseline must be positive");
    (1.0 - ours / baseline) * 100.0
}

impl WorkflowReport {
    /// Renders an ASCII Gantt chart of the run: one row per task, `#` for
    /// VM execution and `s` for serverless, over a `width`-column timeline.
    ///
    /// ```text
    /// FasterQ-Dump  [ssssssss............]  0.0-160.2s serverless
    /// Bowtie2-Build [######..............]  0.0-121.4s VM
    /// ```
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width >= 10, "gantt needs at least 10 columns");
        let total = self.makespan_secs.max(1e-9);
        let name_w = self
            .tasks
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let mut rows: Vec<&TaskReport> = self.tasks.iter().collect();
        rows.sort_by(|a, b| {
            a.start_secs
                .total_cmp(&b.start_secs)
                .then(a.name.cmp(&b.name))
        });
        for t in rows {
            let begin = ((t.start_secs / total) * width as f64).floor() as usize;
            let end = ((t.end_secs / total) * width as f64).ceil() as usize;
            let begin = begin.min(width.saturating_sub(1));
            let end = end.clamp(begin + 1, width);
            let fill = match t.platform {
                Platform::VmCluster => '#',
                Platform::Serverless => 's',
            };
            let mut bar = String::with_capacity(width);
            for i in 0..width {
                bar.push(if i >= begin && i < end { fill } else { '.' });
            }
            out.push_str(&format!(
                "{:<name_w$} [{bar}] {:>8.1}-{:<8.1}s {}\n",
                t.name, t.start_secs, t.end_secs, t.platform
            ));
        }
        out.push_str(&format!(
            "{:<name_w$} makespan {:.1}s, ${:.4}\n",
            self.strategy,
            self.makespan_secs,
            self.expense.total()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(compute: f64, io: f64, cold: f64) -> TaskReport {
        TaskReport {
            name: "t".into(),
            platform: Platform::Serverless,
            phase: 0,
            components: 1,
            start_secs: 0.0,
            end_secs: compute + io + cold,
            compute_secs: compute,
            io_secs: io,
            cold_start_secs: cold,
            scaling_secs: 0.0,
            checkpoints: 0,
            n_cold: 1,
            n_warm: 0,
        }
    }

    #[test]
    fn fractions() {
        let t = task(6.0, 2.0, 2.0);
        assert!((t.cold_start_fraction() - 0.2).abs() < 1e-12);
        assert!((t.io_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(t.makespan_secs(), 10.0);
    }

    #[test]
    fn empty_task_fractions_are_zero() {
        let t = task(0.0, 0.0, 0.0);
        assert_eq!(t.cold_start_fraction(), 0.0);
        assert_eq!(t.io_fraction(), 0.0);
    }

    #[test]
    fn improvement_matches_paper_formula() {
        // Mashup at 66 vs baseline 100 -> 34 % improvement.
        assert!((improvement_pct(66.0, 100.0) - 34.0).abs() < 1e-12);
        // Worse than baseline is negative.
        assert!(improvement_pct(120.0, 100.0) < 0.0);
    }

    #[test]
    fn gantt_renders_bars_in_start_order() {
        let mut t1 = task(10.0, 0.0, 0.0);
        t1.name = "early".into();
        t1.platform = Platform::VmCluster;
        let mut t2 = task(5.0, 0.0, 0.0);
        t2.name = "late".into();
        t2.start_secs = 10.0;
        t2.end_secs = 20.0;
        let r = WorkflowReport {
            workflow: "w".into(),
            strategy: "mashup".into(),
            cluster_nodes: 4,
            makespan_secs: 20.0,
            expense: Expense::default(),
            plan: PlacementPlan::new(),
            tasks: vec![t2.clone(), t1.clone()],
        };
        let g = r.render_gantt(20);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("early"), "{g}");
        assert!(lines[1].starts_with("late"), "{g}");
        let bar_of = |line: &str| -> String {
            line.split('[')
                .nth(1)
                .expect("bar")
                .split(']')
                .next()
                .expect("bar")
                .to_string()
        };
        // early: VM '#' bar; late: serverless 's' bar.
        let early_bar = bar_of(lines[0]);
        let late_bar = bar_of(lines[1]);
        assert!(early_bar.contains('#') && !early_bar.contains('s'), "{g}");
        assert!(late_bar.contains('s') && !late_bar.contains('#'), "{g}");
        // The late bar starts at or after the midpoint.
        let first_fill = late_bar.find('s').expect("filled");
        assert!(first_fill >= 10, "{late_bar}");
        assert!(g.contains("makespan 20.0s"));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn gantt_rejects_tiny_width() {
        let r = WorkflowReport {
            workflow: "w".into(),
            strategy: "s".into(),
            cluster_nodes: 1,
            makespan_secs: 1.0,
            expense: Expense::default(),
            plan: PlacementPlan::new(),
            tasks: vec![],
        };
        let _ = r.render_gantt(3);
    }

    #[test]
    fn report_aggregates() {
        let r = WorkflowReport {
            workflow: "w".into(),
            strategy: "mashup".into(),
            cluster_nodes: 4,
            makespan_secs: 100.0,
            expense: Expense::default(),
            plan: PlacementPlan::new(),
            tasks: vec![task(1.0, 2.0, 3.0), task(4.0, 5.0, 6.0)],
        };
        assert_eq!(r.total_cold_start_secs(), 9.0);
        assert_eq!(r.total_io_secs(), 7.0);
        assert!(r.task("t").is_some());
        assert!(r.task("missing").is_none());
    }
}
