//! The top-level Mashup engine: PDC + hybrid execution in one call.

use crate::cache::PlanCache;
use crate::config::MashupConfig;
use crate::exec::try_execute_traced;
use crate::naive::plan_without_pdc;
use crate::pdc::{Objective, Pdc, PdcReport};
use crate::report::WorkflowReport;
use mashup_analyze::AnalysisError;
use mashup_dag::Workflow;
use mashup_sim::Tracer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The result of a full Mashup run: the PDC's reasoning plus the hybrid
/// execution it drove.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MashupOutcome {
    /// The PDC's calibration, per-task decisions, and profiling costs.
    pub pdc: PdcReport,
    /// The production hybrid execution.
    pub report: WorkflowReport,
}

/// The Mashup workflow engine.
///
/// # Example
/// ```
/// use mashup_core::{Mashup, MashupConfig};
/// use mashup_dag::{Task, TaskProfile, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("demo");
/// b.initial_input_bytes(1.0e6);
/// b.begin_phase();
/// b.add_task(Task::new("wide", 64, TaskProfile::trivial().compute(5.0)));
/// let workflow = b.build().expect("valid");
///
/// let outcome = Mashup::new(MashupConfig::aws(2)).run(&workflow);
/// assert!(outcome.report.makespan_secs > 0.0);
/// ```
pub struct Mashup {
    cfg: MashupConfig,
    objective: Objective,
    cache: Option<Arc<PlanCache>>,
    tracer: Tracer,
}

impl Mashup {
    /// Creates an engine optimizing execution time (the paper's default).
    pub fn new(cfg: MashupConfig) -> Self {
        Mashup {
            cfg,
            objective: Objective::ExecutionTime,
            cache: None,
            tracer: Tracer::off(),
        }
    }

    /// Builder-style: records the run into `tracer` — PDC decision
    /// provenance plus the production execution's full event stream.
    /// Emission never touches simulated state, so reports are identical
    /// with or without a recorder attached.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Builder-style: changes the PDC objective (Fig. 5 study).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Builder-style: memoizes the PDC's profiling stages in `cache`
    /// (shareable across engines and threads; see [`PlanCache`]).
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &MashupConfig {
        &self.cfg
    }

    /// Full pipeline: PDC profiling + decision, then hybrid execution on
    /// the VM configuration the PDC found best.
    ///
    /// Panics when the analyzer refuses the inputs; use [`Mashup::try_run`]
    /// for a typed refusal.
    pub fn run(&self, workflow: &Workflow) -> MashupOutcome {
        self.try_run(workflow).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Mashup::run`], but refuses error-diagnosed inputs with a
    /// typed [`AnalysisError`] instead of panicking mid-simulation.
    pub fn try_run(&self, workflow: &Workflow) -> Result<MashupOutcome, AnalysisError> {
        let mut pdc = Pdc::new(self.cfg.clone())
            .with_objective(self.objective)
            .with_tracer(self.tracer.clone());
        if let Some(cache) = &self.cache {
            pdc = pdc.with_cache(cache.clone());
        }
        let pdc = pdc.try_decide(workflow)?;
        let tuned = self.cfg.clone().with_subclusters(pdc.subclusters);
        let report = try_execute_traced(&tuned, workflow, &pdc.plan, "mashup", &self.tracer)?;
        Ok(MashupOutcome { pdc, report })
    }

    /// Executes with the w/o-PDC threshold plan (paper's "Mashup w/o PDC").
    ///
    /// Panics when the analyzer refuses the inputs; use
    /// [`Mashup::try_run_without_pdc`] for a typed refusal.
    pub fn run_without_pdc(&self, workflow: &Workflow) -> WorkflowReport {
        self.try_run_without_pdc(workflow)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Mashup::run_without_pdc`], but refuses error-diagnosed inputs
    /// with a typed [`AnalysisError`] instead of panicking mid-simulation.
    pub fn try_run_without_pdc(
        &self,
        workflow: &Workflow,
    ) -> Result<WorkflowReport, AnalysisError> {
        let plan = plan_without_pdc(&self.cfg, workflow);
        try_execute_traced(&self.cfg, workflow, &plan, "mashup-wo-pdc", &self.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("mix");
        b.initial_input_bytes(1.0e9);
        b.begin_phase();
        let wide = b.add_task(Task::new(
            "wide",
            128,
            TaskProfile::trivial().compute(8.0).io(1e6, 1e6),
        ));
        b.begin_phase();
        let merge = b.add_task(Task::new(
            "merge",
            1,
            TaskProfile::trivial()
                .compute(60.0)
                .slowdown(1.3)
                .io(1.28e8, 1e6),
        ));
        b.depend(merge, wide, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    #[test]
    fn mashup_beats_or_matches_both_pure_strategies_on_small_clusters() {
        let w = wf();
        let cfg = MashupConfig::aws(2);
        let outcome = Mashup::new(cfg.clone()).run(&w);
        let traditional = crate::exec::execute(
            &cfg,
            &w,
            &crate::placement::PlacementPlan::uniform(&w, crate::placement::Platform::VmCluster),
            "traditional",
        );
        // 128 components on 4 slots is wave-bound; hybrid must win.
        assert!(
            outcome.report.makespan_secs < traditional.makespan_secs,
            "mashup {} vs traditional {}",
            outcome.report.makespan_secs,
            traditional.makespan_secs
        );
    }

    #[test]
    fn outcome_contains_consistent_plan() {
        let w = wf();
        let outcome = Mashup::new(MashupConfig::aws(2)).run(&w);
        assert!(outcome.pdc.plan.covers(&w));
        assert_eq!(outcome.report.plan, outcome.pdc.plan);
        assert_eq!(outcome.report.strategy, "mashup");
        assert_eq!(outcome.report.tasks.len(), 2);
    }

    #[test]
    fn cached_runs_match_uncached_runs_exactly() {
        let w = wf();
        let cfg = MashupConfig::aws(2);
        let uncached = Mashup::new(cfg.clone()).run(&w);
        let cache = Arc::new(PlanCache::new());
        let cold = Mashup::new(cfg.clone()).with_cache(cache.clone()).run(&w);
        let warm = Mashup::new(cfg).with_cache(cache.clone()).run(&w);
        assert_eq!(uncached, cold);
        assert_eq!(uncached, warm);
        let stats = cache.stats();
        assert!(stats.hits() > 0, "warm run must hit the cache");
        assert_eq!(stats.misses(), stats.entries());
    }

    #[test]
    fn without_pdc_uses_threshold_plan() {
        let w = wf();
        let report = Mashup::new(MashupConfig::aws(2)).run_without_pdc(&w);
        assert_eq!(report.strategy, "mashup-wo-pdc");
        let wide = report.task("wide").expect("exists");
        assert_eq!(wide.platform, crate::placement::Platform::Serverless);
        let merge = report.task("merge").expect("exists");
        assert_eq!(merge.platform, crate::placement::Platform::VmCluster);
    }
}
