//! Pareto plan search: the candidate space over fusion rewrites and
//! per-task memory tiers, and the pure search machinery (enumeration,
//! deduplication, branch-and-bound pruning, dominance filtering).
//!
//! A *candidate* is a pair of deviations from the paper's baseline engine:
//! a disjoint subset of Costless-style fusion rewrites ([`fusable_pairs`])
//! and a sparse set of per-task memory-tier overrides (ICPS-style
//! right-sizing over [`MEMORY_TIERS_GB`](crate::MEMORY_TIERS_GB)). The
//! baseline candidate — no fusions, every task at the provider's base
//! tier — reproduces the unmodified engine bit-for-bit.
//!
//! This module is deliberately simulation-free: it enumerates, fingerprints,
//! bounds, and filters. Driving candidates through the PDC in parallel and
//! executing front survivors lives in `mashup-serve`'s sweep driver, so the
//! search core stays cheap to test exhaustively.

use crate::config::{tier_key, MashupConfig, Sizing};
use crate::fingerprint::Fingerprinter;
use crate::pdc::PdcReport;
use crate::placement::Platform;
use mashup_dag::{fusable_pairs, fuse, FusionCandidate, TaskRef, Workflow};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The search space of one workflow: its fusable pairs and the memory-tier
/// menu (the provider's base tier is always on the menu).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The base (unfused) workflow.
    pub base: Workflow,
    /// Fusable producer/consumer pairs of `base`, phase-major producer
    /// order (the enumeration and fingerprint order).
    pub pairs: Vec<FusionCandidate>,
    /// Tier menu in GiB, ascending.
    pub tiers: Vec<f64>,
    /// Index of the provider's base tier within `tiers`.
    pub base_tier: usize,
}

impl SearchSpace {
    /// Builds the space for `workflow` under `cfg`'s provider.
    pub fn new(cfg: &MashupConfig, workflow: &Workflow) -> Self {
        let base_gb = cfg.provider.faas.memory_gb;
        let mut tiers: Vec<f64> = crate::config::MEMORY_TIERS_GB.to_vec();
        if !tiers.iter().any(|&t| tier_key(t) == tier_key(base_gb)) {
            tiers.push(base_gb);
            tiers.sort_by(|a, b| a.partial_cmp(b).expect("tiers are finite"));
        }
        let base_tier = tiers
            .iter()
            .position(|&t| tier_key(t) == tier_key(base_gb))
            .expect("base tier is on the menu");
        SearchSpace {
            base: workflow.clone(),
            pairs: fusable_pairs(workflow),
            tiers,
            base_tier,
        }
    }

    /// Size of the full (unbudgeted) space: disjoint fusion subsets are
    /// counted loosely as `2^pairs`, tier assignments exactly.
    pub fn nominal_size(&self) -> f64 {
        let tier_choices = self.tiers.len() as f64;
        2f64.powi(self.pairs.len() as i32) * tier_choices.powi(self.base.task_count() as i32)
    }
}

/// One point of the search space: fusion-pair indices (into
/// [`SearchSpace::pairs`], ascending, mutually disjoint) plus sparse tier
/// overrides `(base flat task id, tier menu index)`, ascending by task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Applied fusion rewrites.
    pub fusion: Vec<usize>,
    /// Tasks moved off the base tier.
    pub tier_devs: Vec<(usize, usize)>,
}

impl Candidate {
    /// The baseline engine: nothing fused, everything at the base tier.
    pub fn base() -> Self {
        Candidate {
            fusion: Vec::new(),
            tier_devs: Vec::new(),
        }
    }

    /// Edit distance from the baseline (the enumeration wave this
    /// candidate belongs to).
    pub fn radius(&self) -> usize {
        self.fusion.len() + self.tier_devs.len()
    }

    /// Human-readable summary, e.g. `"fuse[A→B] size[C:8.0GB]"`.
    pub fn describe(&self, space: &SearchSpace) -> String {
        let mut parts = Vec::new();
        for &i in &self.fusion {
            let p = space.pairs[i];
            parts.push(format!(
                "fuse[{}→{}]",
                space.base.task(p.producer).name,
                space.base.task(p.consumer).name
            ));
        }
        for &(flat, ti) in &self.tier_devs {
            let name = space.base.arena().name(flat);
            parts.push(format!("size[{}:{}GB]", name, space.tiers[ti]));
        }
        if parts.is_empty() {
            "base".into()
        } else {
            parts.join(" ")
        }
    }
}

/// A candidate made concrete: the fused workflow and its per-task sizing,
/// plus a fingerprint of the *materialized* configuration (two candidates
/// that alias to the same fused workflow and sizing — e.g. a tier override
/// on either side of a fused pair — share a fingerprint).
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The (possibly fused) workflow to plan and execute.
    pub workflow: Workflow,
    /// Memory tier per flat task of `workflow`.
    pub sizing: Sizing,
    /// Dedupe key over the fused structure and tier assignment.
    pub fingerprint: u128,
}

/// Builds the concrete workflow + sizing for `cand`. Candidates produced by
/// [`enumerate`] always materialize (their fusion subsets are disjoint by
/// construction); a merged task takes the largest tier assigned to any of
/// its constituents.
pub fn materialize(space: &SearchSpace, cfg: &MashupConfig, cand: &Candidate) -> Materialized {
    let pairs: Vec<FusionCandidate> = cand.fusion.iter().map(|&i| space.pairs[i]).collect();
    let workflow = if pairs.is_empty() {
        space.base.clone()
    } else {
        fuse(&space.base, &pairs).expect("enumerated fusion subsets are disjoint")
    };
    let mut sizing = Sizing::base(cfg, &workflow);
    let mut merged: BTreeMap<usize, f64> = BTreeMap::new();
    for &(flat, ti) in &cand.tier_devs {
        let fused_flat = fused_flat_of(space, cand, flat, &workflow);
        let gb = space.tiers[ti];
        merged
            .entry(fused_flat)
            .and_modify(|t| *t = t.max(gb))
            .or_insert(gb);
    }
    for (fused_flat, gb) in &merged {
        sizing.tiers_gb[*fused_flat] = *gb;
    }
    let mut f = Fingerprinter::new("pareto-candidate-v1");
    f.write_str(&workflow.name);
    f.write_usize(workflow.task_count());
    for flat in 0..workflow.task_count() {
        f.write_str(workflow.arena().name(flat));
        f.write_u64(tier_key(sizing.tier(flat)) as u64);
    }
    Materialized {
        workflow,
        sizing,
        fingerprint: f.digest(),
    }
}

/// Where a base task landed in the fused workflow.
fn fused_flat_of(
    space: &SearchSpace,
    cand: &Candidate,
    base_flat: usize,
    fused: &Workflow,
) -> usize {
    let r = space.base.arena().task_ref(base_flat);
    let name = cand
        .fusion
        .iter()
        .map(|&i| space.pairs[i])
        .find(|p| p.producer == r || p.consumer == r)
        .map(|p| {
            format!(
                "{}+{}",
                space.base.task(p.producer).name,
                space.base.task(p.consumer).name
            )
        })
        .unwrap_or_else(|| space.base.task(r).name.clone());
    fused
        .arena()
        .flat_by_name(&name)
        .expect("fused workflow contains every surviving task")
}

/// Radius-ordered candidate enumeration, capped at `budget` candidates.
///
/// Wave `r` holds every candidate at edit distance `r` from the baseline;
/// within a wave, fusion-heavier candidates come first (structural rewrites
/// shrink the workflow and are the interesting deviations), then pair
/// subsets lexicographically, then override positions and tier choices
/// lexicographically. The order is a pure function of the space, so sweeps
/// are reproducible across processes and thread counts.
pub fn enumerate(space: &SearchSpace, budget: usize) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    if budget == 0 {
        return out;
    }
    let n_tasks = space.base.task_count();
    let n_pairs = space.pairs.len();
    let non_base: Vec<usize> = (0..space.tiers.len())
        .filter(|&i| i != space.base_tier)
        .collect();
    let max_radius = n_pairs + n_tasks;
    for radius in 0..=max_radius {
        for k in (0..=radius.min(n_pairs)).rev() {
            let devs = radius - k;
            if devs > n_tasks {
                continue;
            }
            let stopped = !combos(n_pairs, k, &mut |pair_set| {
                if !pairs_disjoint(space, pair_set) {
                    return true;
                }
                combos(n_tasks, devs, &mut |task_set| {
                    assignments(task_set, &non_base, &mut |tier_devs| {
                        out.push(Candidate {
                            fusion: pair_set.to_vec(),
                            tier_devs: tier_devs.to_vec(),
                        });
                        out.len() < budget
                    })
                })
            });
            if stopped {
                return out;
            }
        }
    }
    out
}

/// Whether a fusion subset touches each task at most once (overlapping
/// pairs cannot be applied together — `fuse` would refuse them).
fn pairs_disjoint(space: &SearchSpace, subset: &[usize]) -> bool {
    let mut seen: Vec<TaskRef> = Vec::with_capacity(subset.len() * 2);
    for &i in subset {
        let p = space.pairs[i];
        if seen.contains(&p.producer) || seen.contains(&p.consumer) {
            return false;
        }
        seen.push(p.producer);
        seen.push(p.consumer);
    }
    true
}

/// Lexicographic k-combinations of `0..n`; `f` returns `false` to stop.
/// Returns `false` when stopped early.
fn combos(n: usize, k: usize, f: &mut dyn FnMut(&[usize]) -> bool) -> bool {
    fn rec(
        n: usize,
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        f: &mut dyn FnMut(&[usize]) -> bool,
    ) -> bool {
        if cur.len() == k {
            return f(cur);
        }
        for i in start..n {
            if n - i < k - cur.len() {
                break;
            }
            cur.push(i);
            let go = rec(n, k, i + 1, cur, f);
            cur.pop();
            if !go {
                return false;
            }
        }
        true
    }
    rec(n, k, 0, &mut Vec::with_capacity(k), f)
}

/// Visitor over `(position, tier-index)` assignment slices; returns `false`
/// to stop enumeration.
type AssignmentVisitor<'a> = &'a mut dyn FnMut(&[(usize, usize)]) -> bool;

/// Lexicographic tier assignments over fixed positions; `f` returns `false`
/// to stop. Returns `false` when stopped early.
fn assignments(positions: &[usize], choices: &[usize], f: AssignmentVisitor) -> bool {
    fn rec(
        positions: &[usize],
        choices: &[usize],
        cur: &mut Vec<(usize, usize)>,
        f: AssignmentVisitor,
    ) -> bool {
        if cur.len() == positions.len() {
            return f(cur);
        }
        let pos = positions[cur.len()];
        for &c in choices {
            cur.push((pos, c));
            let go = rec(positions, choices, cur, f);
            cur.pop();
            if !go {
                return false;
            }
        }
        true
    }
    if positions.is_empty() {
        // Zero overrides: exactly one (empty) assignment.
        return f(&[]);
    }
    rec(
        positions,
        choices,
        &mut Vec::with_capacity(positions.len()),
        f,
    )
}

/// Optimistic `(time, expense)` bounds for a materialized candidate —
/// perfect parallelism, no I/O, no cold starts, no contention, perfect
/// VM packing. Both components are true lower bounds of the simulated
/// outcome, so a candidate whose bound is already dominated by an
/// evaluated point can be pruned without running the PDC (its real point
/// is at least as bad on both axes).
pub fn optimistic_bounds(cfg: &MashupConfig, w: &Workflow, sizing: &Sizing) -> (f64, f64) {
    let inst = &cfg.cluster.instance;
    let slots = (cfg.cluster.nodes * inst.cores).max(1) as f64;
    let mut time = 0.0;
    let mut expense = 0.0;
    for (pi, phase) in w.phases.iter().enumerate() {
        let mut phase_t: f64 = 0.0;
        for (ti, t) in phase.tasks.iter().enumerate() {
            let flat = w
                .arena()
                .flat(mashup_dag::TaskRef::new(pi, ti))
                .expect("in range");
            let tier_cfg = cfg.faas_tier(sizing.tier(flat));
            let comp = t.components as f64;
            let sl_t = t.profile.compute_secs_serverless() / tier_cfg.core_speed;
            let vm_t = t.profile.compute_secs_vm / inst.core_speed * (comp / slots).ceil().max(1.0);
            phase_t = phase_t.max(sl_t.min(vm_t));
            let sl_cost = comp * sl_t / 3600.0 * tier_cfg.price_per_hour;
            let vm_cost = comp * (t.profile.compute_secs_vm / inst.core_speed) / 3600.0
                * (inst.price_per_hour / inst.cores.max(1) as f64);
            expense += sl_cost.min(vm_cost);
        }
        time += phase_t;
    }
    (time, expense)
}

/// Model-side `(time, expense)` estimate of a planned candidate, built
/// from the PDC's calibrated per-task times — no execution. Phase time is
/// the slowest co-resident task; the cluster bills end to end when any
/// task runs on it (mirroring the executor's billing), and serverless
/// expense prices each task's probe-measured busy seconds at its tier.
pub fn estimate_plan(
    cfg: &MashupConfig,
    w: &Workflow,
    sizing: &Sizing,
    report: &PdcReport,
) -> (f64, f64) {
    let mut time = 0.0;
    let mut faas = 0.0;
    let mut uses_vm = false;
    let mut by_phase: BTreeMap<usize, f64> = BTreeMap::new();
    for d in &report.decisions {
        let t = match d.platform {
            Platform::Serverless => d.t_serverless_est_secs,
            Platform::VmCluster => d.t_vm_secs,
        };
        let slot = by_phase.entry(d.task.phase).or_insert(0.0);
        *slot = slot.max(t);
        match d.platform {
            Platform::Serverless => {
                let flat = w.arena().flat(d.task).expect("decision refs the workflow");
                let tier_cfg = cfg.faas_tier(sizing.tier(flat));
                faas += d.components as f64 * d.probe_busy_secs / 3600.0 * tier_cfg.price_per_hour;
            }
            Platform::VmCluster => uses_vm = true,
        }
    }
    for t in by_phase.values() {
        time += t;
    }
    let vm = if uses_vm {
        cfg.cluster.nodes as f64 * cfg.cluster.instance.price_per_hour * time / 3600.0
    } else {
        0.0
    };
    (time, faas + vm)
}

/// Keep-mask of the non-dominated points (`p` dominates `q` when it is no
/// worse on both axes and strictly better on one). Duplicate points all
/// survive — callers dedupe by fingerprint earlier.
pub fn pareto_mask(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(t, e)| {
            !points
                .iter()
                .any(|&(t2, e2)| t2 <= t && e2 <= e && (t2 < t || e2 < e))
        })
        .collect()
}

/// Whether an optimistic bound is already dominated by a known point —
/// the branch-and-bound pruning test.
pub fn bound_dominated(front: &[(f64, f64)], lb: (f64, f64)) -> bool {
    front
        .iter()
        .any(|&(t, e)| t <= lb.0 && e <= lb.1 && (t < lb.0 || e < lb.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::placement::PlacementPlan;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};

    /// Three-task pipeline with one side consumer: pairs (A→B) and (B→C)
    /// exist but overlap; (A→B) is blocked by D's extra edge onto A? No —
    /// keep it simple: A→B→C pipeline gives pairs (A,B) and (B,C).
    fn pipeline() -> Workflow {
        let mut b = WorkflowBuilder::new("pipe");
        b.initial_input_bytes(1e8);
        b.begin_phase();
        let a = b.add_task(Task::new(
            "A",
            8,
            TaskProfile::trivial().compute(4.0).io(1e7, 1e7),
        ));
        b.begin_phase();
        let c = b.add_task(Task::new(
            "B",
            8,
            TaskProfile::trivial().compute(3.0).io(1e7, 1e7),
        ));
        b.depend(c, a, DependencyPattern::OneToOne);
        b.begin_phase();
        let d = b.add_task(Task::new(
            "C",
            8,
            TaskProfile::trivial().compute(2.0).io(1e7, 1e7),
        ));
        b.depend(d, c, DependencyPattern::OneToOne);
        b.build().expect("valid")
    }

    fn cfg() -> MashupConfig {
        MashupConfig::aws(4)
    }

    #[test]
    fn space_has_the_pipeline_pairs_and_the_base_tier() {
        let space = SearchSpace::new(&cfg(), &pipeline());
        assert_eq!(space.pairs.len(), 2);
        assert_eq!(space.tiers[space.base_tier], 3.0);
        assert!(space.nominal_size() > 100.0);
    }

    #[test]
    fn enumeration_is_radius_ordered_and_budgeted() {
        let space = SearchSpace::new(&cfg(), &pipeline());
        let all = enumerate(&space, usize::MAX);
        assert_eq!(all[0], Candidate::base());
        // Radii never decrease.
        for w in all.windows(2) {
            assert!(w[0].radius() <= w[1].radius());
        }
        // No overlapping fusion subsets: (A→B)+(B→C) both touch B.
        assert!(all.iter().all(|c| c.fusion != vec![0, 1]));
        // All candidates are unique.
        let mut seen = std::collections::BTreeSet::new();
        for c in &all {
            assert!(seen.insert(format!("{c:?}")), "duplicate {c:?}");
        }
        // A budget is a hard cap, and a prefix of the full order.
        let some = enumerate(&space, 10);
        assert_eq!(some.len(), 10);
        assert_eq!(some[..], all[..10]);
        assert!(enumerate(&space, 0).is_empty());
    }

    #[test]
    fn materialize_applies_fusion_and_tier_overrides() {
        let space = SearchSpace::new(&cfg(), &pipeline());
        let flat_c = space.base.arena().flat_by_name("C").expect("exists");
        let big = space.tiers.len() - 1;
        let cand = Candidate {
            fusion: vec![0],
            tier_devs: vec![(flat_c, big)],
        };
        let m = materialize(&space, &cfg(), &cand);
        assert_eq!(m.workflow.task_count(), 2);
        assert!(m.workflow.arena().flat_by_name("A+B").is_some());
        let fused_c = m.workflow.arena().flat_by_name("C").expect("survives");
        assert_eq!(m.sizing.tier(fused_c), 8.0);
        assert!(!m.sizing.is_base(&cfg()));
    }

    #[test]
    fn aliasing_candidates_share_a_fingerprint() {
        let space = SearchSpace::new(&cfg(), &pipeline());
        let a = space.base.arena().flat_by_name("A").expect("exists");
        let b = space.base.arena().flat_by_name("B").expect("exists");
        let big = space.tiers.len() - 1;
        // With (A→B) fused, sizing A or B lands on the same merged task.
        let via_a = materialize(
            &space,
            &cfg(),
            &Candidate {
                fusion: vec![0],
                tier_devs: vec![(a, big)],
            },
        );
        let via_b = materialize(
            &space,
            &cfg(),
            &Candidate {
                fusion: vec![0],
                tier_devs: vec![(b, big)],
            },
        );
        assert_eq!(via_a.fingerprint, via_b.fingerprint);
        // Unfused, they are different configurations.
        let solo_a = materialize(
            &space,
            &cfg(),
            &Candidate {
                fusion: vec![],
                tier_devs: vec![(a, big)],
            },
        );
        let solo_b = materialize(
            &space,
            &cfg(),
            &Candidate {
                fusion: vec![],
                tier_devs: vec![(b, big)],
            },
        );
        assert_ne!(solo_a.fingerprint, solo_b.fingerprint);
    }

    #[test]
    fn optimistic_bounds_underestimate_a_real_run() {
        let w = pipeline();
        let cfg = cfg();
        let sizing = Sizing::base(&cfg, &w);
        let (t_lb, e_lb) = optimistic_bounds(&cfg, &w, &sizing);
        assert!(t_lb > 0.0 && e_lb > 0.0);
        for platform in [Platform::VmCluster, Platform::Serverless] {
            let plan = PlacementPlan::uniform(&w, platform);
            let report = execute(&cfg, &w, &plan, "x");
            assert!(t_lb <= report.makespan_secs, "{platform:?} time");
            assert!(e_lb <= report.expense.total(), "{platform:?} expense");
        }
    }

    #[test]
    fn dominance_filter_keeps_the_staircase() {
        let pts = [(1.0, 9.0), (2.0, 8.0), (3.0, 8.5), (4.0, 1.0), (2.0, 8.0)];
        let mask = pareto_mask(&pts);
        assert_eq!(mask, vec![true, true, false, true, true]);
        let front: Vec<(f64, f64)> = pts
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(&p, _)| p)
            .collect();
        assert!(bound_dominated(&front, (3.0, 8.5)));
        assert!(!bound_dominated(&front, (0.5, 0.5)));
        // A point on the front is not dominated by it.
        assert!(!bound_dominated(&front, (1.0, 9.0)));
    }
}
