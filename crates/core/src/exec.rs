//! The hybrid workflow executor.
//!
//! Executes a workflow phase by phase (the DAG's precedence order), running
//! each task on the platform its [`PlacementPlan`] assigns, and routing
//! inter-platform data through the object store:
//!
//! * a task's output lives on the cluster **master** when both it and all
//!   of its consumers run on the cluster, and in the **object store**
//!   otherwise (serverless functions are stateless — §3);
//! * VM tasks whose producers wrote to the store fetch over the WAN;
//! * initial input is staged in the store whenever any task runs
//!   serverless (the "S3 bucket maintained during execution" of §4, whose
//!   occupancy is billed);
//! * serverless tasks of the *next* phase are pre-warmed while the current
//!   phase runs (§3's prefetching mitigation);
//! * the cluster bills node time for the whole run iff the plan uses it.

use crate::chaos::ChaosSpec;
use crate::config::{tier_key, CloudEnv, MashupConfig, Sizing};
use crate::pdc::{Pdc, PdcReport};
use crate::placement::{PlacementPlan, Platform};
use crate::report::{TaskReport, WorkflowReport};
use mashup_analyze::{AnalysisError, Code, Diagnostic, Location};
use mashup_cloud::{ClusterTaskSpec, FaasPlatform, FaasTaskSpec};
use mashup_dag::{TaskRef, Workflow};
use mashup_sim::{shared, Shared, SimTime, Simulation, TraceEvent, Tracer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The storage key under which a task's output is registered.
fn output_key(task_name: &str) -> String {
    format!("out:{task_name}")
}

/// The storage key of the staged initial dataset.
fn initial_key(workflow: &str) -> String {
    format!("initial:{workflow}")
}

/// Where a task's output lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputLocation {
    /// On the cluster master (pure-VM producer/consumer chains).
    Master,
    /// In the object store (any serverless involvement).
    Store,
}

/// Computes each task's output location under `plan` (see module docs).
fn output_locations(w: &Workflow, plan: &PlacementPlan) -> Vec<Vec<OutputLocation>> {
    w.phases
        .iter()
        .enumerate()
        .map(|(pi, phase)| {
            (0..phase.tasks.len())
                .map(|ti| {
                    let r = TaskRef::new(pi, ti);
                    // Full coverage is guaranteed by diagnostic M201.
                    let platform_of = |t: TaskRef| plan.platform(t).expect("plan covers workflow");
                    let serverless_here = platform_of(r) == Platform::Serverless;
                    let serverless_consumer = w
                        .consumers(r)
                        .iter()
                        .any(|&(c, _)| platform_of(c) == Platform::Serverless);
                    if serverless_here || serverless_consumer {
                        OutputLocation::Store
                    } else {
                        OutputLocation::Master
                    }
                })
                .collect()
        })
        .collect()
}

struct Driver {
    cfg: MashupConfig,
    workflow: Arc<Workflow>,
    plan: PlacementPlan,
    /// Per-task memory tiers for a sized run; `None` runs every serverless
    /// task on the base platform (the original engine, byte-identical).
    sizing: Option<Sizing>,
    locations: Vec<Vec<OutputLocation>>,
    env_handles: EnvHandles,
    tracer: Tracer,
    reports: Vec<TaskReport>,
    remaining_in_phase: usize,
    finished_at: Option<SimTime>,
    /// Online replanning controller; `None` unless the config's chaos spec
    /// turns `adaptive` on.
    chaos: Option<ChaosCtx>,
}

/// Phase-boundary replanning state. The controller consumes only the flight
/// recorder's view of the run — surviving spot capacity and per-phase
/// elapsed time — draws no randomness, and emits nothing until a trigger
/// fires, so an adaptive run over a fault-free environment replays the
/// static run byte-for-byte.
struct ChaosCtx {
    spec: ChaosSpec,
    /// Node capacity the active plan assumes; updated after each replan.
    planned_nodes: usize,
    /// Baseline PDC report for [`Pdc::replan_capacity`], computed on first
    /// trigger (a full `decide` over the chaos-stripped config in its own
    /// profiling environments — invisible to the production run's streams).
    baseline: Option<PdcReport>,
    /// When the currently-running phase started.
    phase_started: SimTime,
    /// Store keys already migrated master -> store by earlier replans.
    uploaded: std::collections::BTreeSet<String>,
}

impl Driver {
    /// The FaaS platform a task runs on: its sizing-assigned tier's platform
    /// when one was provisioned, the base platform otherwise.
    fn faas_for_task(&self, r: TaskRef) -> &FaasPlatform {
        if let Some(sizing) = &self.sizing {
            if let Some(flat) = self.workflow.arena().flat(r) {
                let key = tier_key(sizing.tier(flat));
                if let Some(platform) = self.env_handles.tier_faas.get(&key) {
                    return platform;
                }
            }
        }
        &self.env_handles.faas
    }
}

/// Clonable handles into the environment (the `Simulation` itself stays
/// outside and is threaded through event callbacks).
#[derive(Clone)]
struct EnvHandles {
    cluster: mashup_cloud::VmCluster,
    faas: mashup_cloud::FaasPlatform,
    /// Non-base tier platforms of a sized run (empty otherwise).
    tier_faas: BTreeMap<u32, FaasPlatform>,
    store: mashup_cloud::ObjectStore,
    seeds: mashup_sim::SeedSource,
}

/// Executes `workflow` under `plan` in a fresh environment built from
/// `cfg`, returning the full report. `strategy` labels the report.
///
/// Panics when the analyzer refuses the inputs; use [`try_execute`] for a
/// typed refusal.
pub fn execute(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    strategy: &str,
) -> WorkflowReport {
    try_execute(cfg, workflow, plan, strategy).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`execute`], but refuses error-diagnosed inputs with a typed
/// [`AnalysisError`] instead of panicking mid-simulation.
pub fn try_execute(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    strategy: &str,
) -> Result<WorkflowReport, AnalysisError> {
    let mut env = CloudEnv::new(cfg);
    try_execute_in(&mut env, cfg, workflow, plan, strategy)
}

/// Like [`execute`], but records the run into `tracer` (a fresh environment
/// is built and the recorder attached to every mechanism before execution).
pub fn execute_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    strategy: &str,
    tracer: &Tracer,
) -> WorkflowReport {
    try_execute_traced(cfg, workflow, plan, strategy, tracer).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`try_execute`], but records the run into `tracer`.
pub fn try_execute_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    strategy: &str,
    tracer: &Tracer,
) -> Result<WorkflowReport, AnalysisError> {
    let mut env = CloudEnv::new(cfg);
    env.attach_tracer(tracer.clone());
    try_execute_in(&mut env, cfg, workflow, plan, strategy)
}

/// Like [`execute`], but runs each serverless task on the memory tier
/// `sizing` assigns it (see [`Sizing`]): per-tier FaaS platforms are
/// provisioned up front, each with its own warm pools and price point,
/// and the executor routes every invocation, pre-warm, and burst-capacity
/// read through the task's tier. A sizing that keeps every task at the
/// provider's base tier reproduces [`execute`] bit-for-bit.
///
/// Panics when the analyzer refuses the inputs; use [`try_execute_sized`]
/// for a typed refusal.
pub fn execute_sized(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    sizing: &Sizing,
    strategy: &str,
) -> WorkflowReport {
    try_execute_sized(cfg, workflow, plan, sizing, strategy).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`execute_sized`], but refuses error-diagnosed inputs with a typed
/// [`AnalysisError`] instead of panicking mid-simulation.
pub fn try_execute_sized(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    sizing: &Sizing,
    strategy: &str,
) -> Result<WorkflowReport, AnalysisError> {
    preflight_sized(cfg, workflow, plan, sizing)?;
    let mut env = CloudEnv::new(cfg);
    env.provision_tiers(cfg, sizing);
    Ok(execute_in_unchecked(
        &mut env,
        cfg,
        workflow,
        plan,
        Some(sizing),
        strategy,
    ))
}

/// Like [`try_execute_sized`], but records the run into `tracer`.
pub fn try_execute_sized_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    sizing: &Sizing,
    strategy: &str,
    tracer: &Tracer,
) -> Result<WorkflowReport, AnalysisError> {
    preflight_sized(cfg, workflow, plan, sizing)?;
    let mut env = CloudEnv::new(cfg);
    env.provision_tiers(cfg, sizing);
    env.attach_tracer(tracer.clone());
    Ok(execute_in_unchecked(
        &mut env,
        cfg,
        workflow,
        plan,
        Some(sizing),
        strategy,
    ))
}

/// The preflight gate for sized runs. The standard checks run with the
/// function cap lifted to the sizing's largest tier (M203 against the base
/// cap would falsely refuse tasks a bigger tier accommodates); the cap is
/// then enforced per task against the tier the sizing actually assigns.
/// The M202 window check keeps the base tier's core speed — slower tiers
/// stretch compute, but the checkpoint-chaining runtime absorbs that.
fn preflight_sized(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    sizing: &Sizing,
) -> Result<(), AnalysisError> {
    assert_eq!(
        sizing.tiers_gb.len(),
        workflow.task_count(),
        "sizing must assign a tier to every task of '{}'",
        workflow.name
    );
    let mut lifted = cfg.clone();
    let max_tier = sizing
        .distinct_tiers()
        .last()
        .copied()
        .unwrap_or(cfg.provider.faas.memory_gb);
    lifted.provider.faas.memory_gb = lifted.provider.faas.memory_gb.max(max_tier);
    crate::analysis::preflight(&lifted, workflow, Some(plan))?;
    let mut diags = Vec::new();
    for r in workflow.task_refs() {
        if plan.platform(r) != Ok(Platform::Serverless) {
            continue;
        }
        let t = workflow.task(r);
        let flat = workflow.arena().flat(r).expect("ref comes from task_refs");
        let tier = sizing.tier(flat);
        if t.profile.memory_gb > tier {
            diags.push(
                Diagnostic::new(
                    Code::FaasMemoryExceeded,
                    Location::Task {
                        phase: r.phase,
                        task: r.task,
                        name: t.name.clone(),
                    },
                    format!(
                        "component needs {:.2} GiB but its sizing tier is {tier:.2} GiB",
                        t.profile.memory_gb
                    ),
                )
                .with_help("assign a larger memory tier or place the task on the VM cluster"),
            );
        }
    }
    mashup_analyze::into_result(diags)?;
    Ok(())
}

/// Executes in a caller-provided environment (lets the PDC reuse one
/// environment across probes, and tests inject failure-laden stores).
///
/// Panics when the analyzer refuses the inputs; use [`try_execute_in`] for
/// a typed refusal.
pub fn execute_in(
    env: &mut CloudEnv,
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    strategy: &str,
) -> WorkflowReport {
    try_execute_in(env, cfg, workflow, plan, strategy).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`execute_in`], but refuses error-diagnosed inputs with a typed
/// [`AnalysisError`] instead of panicking mid-simulation.
pub fn try_execute_in(
    env: &mut CloudEnv,
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    strategy: &str,
) -> Result<WorkflowReport, AnalysisError> {
    crate::analysis::preflight(cfg, workflow, Some(plan))?;
    Ok(execute_in_unchecked(
        env, cfg, workflow, plan, None, strategy,
    ))
}

/// The executor proper. Callers arrive through the preflight gate, so the
/// plan covers the workflow (M201), every serverless task fits the function
/// memory cap (M203) and the checkpoint-chaining window (M202), and every
/// profile field is finite and in range (M105).
fn execute_in_unchecked(
    env: &mut CloudEnv,
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: &PlacementPlan,
    sizing: Option<&Sizing>,
    strategy: &str,
) -> WorkflowReport {
    let locations = output_locations(workflow, plan);

    // Install the seeded fault schedule before billing starts: spot pools
    // must wrap the whole billing window for piecewise settlement.
    if let Some(chaos) = cfg.chaos.as_ref() {
        if !chaos.plan.is_empty() {
            chaos.plan.install(&mut env.sim, &env.cluster, &env.store);
        }
    }

    if plan.uses_cluster() {
        env.cluster.start_billing(env.sim.now());
    }
    if plan.uses_serverless() {
        // Stage the initial dataset in the store so stateless initial tasks
        // can read it; its occupancy is billed for the run's duration.
        env.store.register_object(
            env.sim.now(),
            initial_key(&workflow.name),
            workflow.initial_input_bytes,
        );
    }

    let driver = shared(Driver {
        cfg: cfg.clone(),
        workflow: Arc::new(workflow.clone()),
        plan: plan.clone(),
        sizing: sizing.cloned(),
        locations,
        env_handles: EnvHandles {
            cluster: env.cluster.clone(),
            faas: env.faas.clone(),
            tier_faas: env.tier_platforms().clone(),
            store: env.store.clone(),
            seeds: env.seeds,
        },
        tracer: env.sim.tracer().clone(),
        reports: Vec::new(),
        remaining_in_phase: 0,
        finished_at: None,
        chaos: cfg.chaos.as_ref().filter(|c| c.adaptive).map(|c| ChaosCtx {
            spec: c.clone(),
            planned_nodes: cfg.cluster.nodes,
            baseline: None,
            phase_started: SimTime::ZERO,
            uploaded: std::collections::BTreeSet::new(),
        }),
    });

    let d2 = driver.clone();
    env.sim.schedule_now(move |sim| run_phase(sim, d2, 0));
    env.sim.run();

    let finished_at = driver
        .borrow()
        .finished_at
        .expect("workflow execution completed");
    // A replan can add or shed cluster usage mid-run; billing must close if
    // it was ever opened, and the report carries the plan that actually ran.
    let final_plan = driver.borrow().plan.clone();
    let used_cluster = plan.uses_cluster() || final_plan.uses_cluster();
    if used_cluster {
        env.cluster.stop_billing(finished_at);
    }
    env.store.finalize(finished_at);

    let d = driver.borrow();
    WorkflowReport {
        workflow: workflow.name.clone(),
        strategy: strategy.into(),
        cluster_nodes: if used_cluster { cfg.cluster.nodes } else { 0 },
        makespan_secs: finished_at.as_secs(),
        expense: env.meter.expense(cfg.provider.storage.price_per_gb_month),
        plan: final_plan,
        tasks: d.reports.clone(),
    }
}

fn run_phase(sim: &mut Simulation, driver: Shared<Driver>, phase_idx: usize) {
    let (n_phases, n_tasks) = {
        let d = driver.borrow();
        let n = d.workflow.phases.len();
        if phase_idx >= n {
            (n, 0)
        } else {
            (n, d.workflow.phases[phase_idx].tasks.len())
        }
    };
    if phase_idx >= n_phases {
        driver.borrow_mut().finished_at = Some(sim.now());
        return;
    }
    {
        let mut d = driver.borrow_mut();
        d.remaining_in_phase = n_tasks;
        if let Some(ctx) = d.chaos.as_mut() {
            ctx.phase_started = sim.now();
        }
    }
    driver.borrow().tracer.emit(
        sim.now(),
        TraceEvent::PhaseStart {
            phase: phase_idx,
            tasks: n_tasks,
        },
    );

    prewarm_next_phase(sim, &driver, phase_idx);

    // Round-robin sub-cluster assignment for the phase's VM tasks.
    let mut next_sub = 0usize;
    for ti in 0..n_tasks {
        let r = TaskRef::new(phase_idx, ti);
        let platform = driver
            .borrow()
            .plan
            .platform(r)
            // Full coverage is guaranteed by diagnostic M201.
            .expect("plan covers workflow");
        match platform {
            Platform::Serverless => spawn_serverless(sim, &driver, r),
            Platform::VmCluster => {
                let subclusters = driver.borrow().cfg.cluster.subclusters;
                let sub = next_sub % subclusters;
                next_sub += 1;
                spawn_on_cluster(sim, &driver, r, sub);
            }
        }
    }
}

fn prewarm_next_phase(sim: &mut Simulation, driver: &Shared<Driver>, phase_idx: usize) {
    // Pre-warming targets each task's own platform: warm pools live per
    // tier (a 0.5 GB microVM cannot serve a 2 GB function), so both the
    // burst threshold and the warm-up go to the tier's platform.
    let to_warm: Vec<(FaasPlatform, String, usize)> = {
        let d = driver.borrow();
        if !d.cfg.prewarm || phase_idx + 1 >= d.workflow.phases.len() {
            Vec::new()
        } else {
            d.workflow.phases[phase_idx + 1]
                .tasks
                .iter()
                .enumerate()
                .filter(|&(ti, _)| {
                    d.plan.platform(TaskRef::new(phase_idx + 1, ti)) == Ok(Platform::Serverless)
                })
                .filter_map(|(ti, t)| {
                    let faas = d.faas_for_task(TaskRef::new(phase_idx + 1, ti));
                    if t.components <= faas.config().burst_capacity {
                        return None;
                    }
                    let key = t
                        .profile
                        .code_family
                        .clone()
                        .unwrap_or_else(|| t.name.clone());
                    Some((faas.clone(), key, t.components.min(d.cfg.prewarm_cap)))
                })
                .collect()
        }
    };
    for (faas, key, count) in to_warm {
        faas.prewarm(sim, key, count);
    }
}

/// Sum of per-component input GET requests implied by the dependency
/// patterns (1 for initial tasks reading the staged dataset).
pub(crate) fn input_requests(w: &Workflow, r: TaskRef) -> u64 {
    let t = w.task(r);
    if t.deps.is_empty() {
        return 1;
    }
    t.deps
        .iter()
        .map(|d| {
            let p = w.task(d.producer);
            d.pattern.fan_in_degree(p.components, t.components) as u64
        })
        .sum::<u64>()
        .max(1)
}

fn spawn_serverless(sim: &mut Simulation, driver: &Shared<Driver>, r: TaskRef) {
    let (spec, handles, faas) = {
        let d = driver.borrow();
        let w = &d.workflow;
        let t = w.task(r);
        // Statelessness sanity check: everything this task reads must
        // already sit in the store.
        if t.deps.is_empty() {
            d.env_handles.store.assert_present(&initial_key(&w.name));
        } else {
            for dep in &t.deps {
                d.env_handles
                    .store
                    .assert_present(&output_key(&w.task(dep.producer).name));
            }
        }
        let label = t
            .profile
            .code_family
            .clone()
            .unwrap_or_else(|| t.name.clone());
        let spec = FaasTaskSpec {
            label,
            components: t.components,
            compute_secs: t.profile.compute_secs_serverless(),
            input_bytes: t.profile.input_bytes,
            output_bytes: t.profile.output_bytes,
            io_requests: input_requests(w, r),
            checkpoint_bytes: t.profile.checkpoint_bytes,
            jitter: t.profile.runtime_jitter,
            memory_gb: t.profile.memory_gb,
            checkpoint_margin_secs: d.cfg.margin_for(t.profile.checkpoint_bytes),
        };
        (spec, d.env_handles.clone(), d.faas_for_task(r).clone())
    };
    let driver2 = driver.clone();
    let task_name = driver.borrow().workflow.task(r).name.clone();
    {
        let d = driver.borrow();
        // Build the event only when recording: the strings it carries are
        // per-task heap churn at million-task scale.
        if d.tracer.is_on() {
            d.tracer.emit(
                sim.now(),
                TraceEvent::TaskStart {
                    task: task_name.clone(),
                    phase: r.phase,
                    platform: "serverless".into(),
                    components: spec.components,
                },
            );
        }
    }
    let store = handles.store.clone();
    let seeds = handles.seeds;
    mashup_cloud::run_task_on_faas(sim, &faas, &store, spec, &seeds, move |sim, stats| {
        let (components, output_bytes) = {
            let d = driver2.borrow();
            let t = d.workflow.task(r);
            (t.components, t.profile.output_bytes)
        };
        // Serverless outputs always live in the store.
        handles.store.register_object(
            sim.now(),
            output_key(&task_name),
            components as f64 * output_bytes,
        );
        let report = TaskReport {
            name: task_name.clone(),
            platform: Platform::Serverless,
            phase: r.phase,
            components,
            start_secs: stats.start.as_secs(),
            end_secs: stats.end.as_secs(),
            compute_secs: stats.compute_secs,
            io_secs: stats.io_secs,
            cold_start_secs: stats.cold_start_secs,
            scaling_secs: stats.scaling_secs(),
            checkpoints: stats.checkpoints,
            n_cold: stats.n_cold,
            n_warm: stats.n_warm,
        };
        finish_task(sim, driver2, r, report);
    });
}

fn spawn_on_cluster(sim: &mut Simulation, driver: &Shared<Driver>, r: TaskRef, subcluster: usize) {
    let (spec, handles, to_store) = {
        let d = driver.borrow();
        let w = &d.workflow;
        let t = w.task(r);
        let to_store = d.locations[r.phase][r.task] == OutputLocation::Store;
        // Input routing: phase-0 tasks ingest the initial dataset from the
        // sub-cluster master (Algorithm 1 line 12); later phases pull from
        // other workers over the fabric — or from the store over the WAN
        // when any producer's output lives there.
        let from_store = t
            .deps
            .iter()
            .any(|dep| d.locations[dep.producer.phase][dep.producer.task] == OutputLocation::Store);
        if from_store {
            for dep in &t.deps {
                if d.locations[dep.producer.phase][dep.producer.task] == OutputLocation::Store {
                    d.env_handles
                        .store
                        .assert_present(&output_key(&w.task(dep.producer).name));
                }
            }
        }
        let input = if from_store {
            mashup_cloud::ClusterInput::Wan
        } else if t.deps.is_empty() {
            mashup_cloud::ClusterInput::Master
        } else {
            mashup_cloud::ClusterInput::Fabric
        };
        let output = if to_store {
            mashup_cloud::ClusterOutput::Wan
        } else {
            mashup_cloud::ClusterOutput::Fabric
        };
        let spec = ClusterTaskSpec {
            label: t.name.clone(),
            components: t.components,
            compute_secs: t.profile.compute_secs_vm,
            input_bytes: t.profile.input_bytes,
            output_bytes: t.profile.output_bytes,
            io_requests: input_requests(w, r),
            contention_coeff: t.profile.vm_local_contention,
            memory_gb: t.profile.memory_gb,
            jitter: t.profile.runtime_jitter,
            input,
            output,
            subcluster,
        };
        (spec, d.env_handles.clone(), to_store)
    };
    let driver2 = driver.clone();
    let task_name = driver.borrow().workflow.task(r).name.clone();
    {
        let d = driver.borrow();
        if d.tracer.is_on() {
            d.tracer.emit(
                sim.now(),
                TraceEvent::TaskStart {
                    task: task_name.clone(),
                    phase: r.phase,
                    platform: "vm".into(),
                    components: spec.components,
                },
            );
        }
    }
    let store = handles.store.clone();
    let cluster = handles.cluster.clone();
    cluster.run_task(sim, Some(&handles.store), spec, move |sim, stats| {
        let (components, output_bytes) = {
            let d = driver2.borrow();
            let t = d.workflow.task(r);
            (t.components, t.profile.output_bytes)
        };
        if to_store {
            store.register_object(
                sim.now(),
                output_key(&task_name),
                components as f64 * output_bytes,
            );
        }
        let report = TaskReport {
            name: task_name.clone(),
            platform: Platform::VmCluster,
            phase: r.phase,
            components,
            start_secs: stats.start.as_secs(),
            end_secs: stats.end.as_secs(),
            compute_secs: stats.compute_secs,
            io_secs: stats.io_secs,
            cold_start_secs: 0.0,
            scaling_secs: 0.0,
            checkpoints: 0,
            n_cold: 0,
            n_warm: 0,
        };
        finish_task(sim, driver2, r, report);
    });
}

fn finish_task(sim: &mut Simulation, driver: Shared<Driver>, r: TaskRef, report: TaskReport) {
    let next_phase = {
        let mut d = driver.borrow_mut();
        if d.tracer.is_on() {
            d.tracer.emit(
                sim.now(),
                TraceEvent::TaskEnd {
                    task: report.name.clone(),
                },
            );
        }
        d.reports.push(report);
        d.remaining_in_phase -= 1;
        if d.remaining_in_phase == 0 {
            Some(r.phase + 1)
        } else {
            None
        }
    };
    if let Some(p) = next_phase {
        advance_phase(sim, driver, p);
    }
}

/// Crosses a phase barrier into phase `next`, first giving the chaos
/// controller (when one is active) a chance to replan the remaining
/// subgraph. Without a controller this is exactly [`run_phase`]: no extra
/// borrows linger, no events fire, no randomness is drawn.
fn advance_phase(sim: &mut Simulation, driver: Shared<Driver>, next: usize) {
    let trigger = {
        let d = driver.borrow();
        match d.chaos.as_ref() {
            None => None,
            Some(_) if next >= d.workflow.phases.len() => None,
            Some(ctx) => {
                let surviving = d.env_handles.cluster.surviving_nodes();
                if surviving < ctx.planned_nodes {
                    Some(("preemption", surviving))
                } else if ctx.spec.detects_stragglers() {
                    // Provisional: resolved against the baseline envelope
                    // below (which may need computing first).
                    Some(("straggler", surviving))
                } else {
                    None
                }
            }
        }
    };
    let Some((reason, surviving)) = trigger else {
        return run_phase(sim, driver, next);
    };
    ensure_baseline(&driver);
    let confirmed = if reason == "preemption" {
        true
    } else {
        let d = driver.borrow();
        let ctx = d.chaos.as_ref().expect("trigger implies controller");
        let elapsed = sim.now().saturating_since(ctx.phase_started).as_secs();
        let envelope = phase_envelope_secs(&d, next - 1);
        envelope > 0.0 && elapsed > ctx.spec.straggler_factor * envelope
    };
    if confirmed {
        replan_and_run(sim, driver, next, reason, surviving);
    } else {
        run_phase(sim, driver, next);
    }
}

/// Computes the controller's baseline PDC report on first use. `Pdc::new`
/// strips the chaos spec, and the decide runs in its own profiling
/// environments, so the baseline reflects the advertised (fault-free)
/// platform behaviour and leaves the production run's RNG streams and
/// trace untouched.
fn ensure_baseline(driver: &Shared<Driver>) {
    let needs = driver
        .borrow()
        .chaos
        .as_ref()
        .is_some_and(|c| c.baseline.is_none());
    if !needs {
        return;
    }
    let (cfg, workflow) = {
        let d = driver.borrow();
        (d.cfg.clone(), d.workflow.clone())
    };
    let report = Pdc::new(cfg).decide(&workflow);
    if let Some(ctx) = driver.borrow_mut().chaos.as_mut() {
        ctx.baseline = Some(report);
    }
}

/// The planned envelope of a finished phase: the longest expected task
/// duration under the baseline measurements and the *active* plan, with VM
/// times scaled to the capacity the plan assumes. A phase that ran longer
/// than `straggler_factor` times this is a straggler.
fn phase_envelope_secs(d: &Driver, phase_idx: usize) -> f64 {
    let ctx = d.chaos.as_ref().expect("controller active");
    let Some(baseline) = ctx.baseline.as_ref() else {
        return 0.0;
    };
    let nodes = d.cfg.cluster.nodes.max(1) as f64;
    let planned = ctx.planned_nodes.max(1) as f64;
    let arena = d.workflow.arena();
    let mut envelope: f64 = 0.0;
    for ti in 0..d.workflow.phases[phase_idx].tasks.len() {
        let r = TaskRef::new(phase_idx, ti);
        let Some(flat) = arena.flat(r) else { continue };
        let dec = &baseline.decisions[flat];
        let expected = match d.plan.platform(r) {
            Ok(Platform::Serverless) if dec.t_serverless_est_secs.is_finite() => {
                dec.t_serverless_est_secs
            }
            _ => {
                // Same per-node load ratio as `Pdc::replan_capacity`: the
                // baseline VM time stretches only as far as the task's
                // components pack more densely onto the assumed capacity.
                let c = d.workflow.task(r).components as f64;
                dec.t_vm_secs * (c / planned).max(1.0) / (c / nodes).max(1.0)
            }
        };
        envelope = envelope.max(expected);
    }
    envelope
}

/// Replans phases `next..` against `surviving` nodes, adopts the new
/// placement, migrates to the store any master-resident outputs the new
/// placement reads from it, and then starts the phase. Re-placement never
/// rewrites history: finished phases keep their reports and locations.
fn replan_and_run(
    sim: &mut Simulation,
    driver: Shared<Driver>,
    next: usize,
    reason: &'static str,
    surviving: usize,
) {
    let uploads: Vec<(String, f64, u64)> = {
        let mut d = driver.borrow_mut();
        let d = &mut *d;
        let ctx = d.chaos.as_mut().expect("controller active");
        let baseline = ctx.baseline.as_ref().expect("ensured by advance_phase");
        let report = Pdc::new(d.cfg.clone()).replan_capacity(baseline, &d.workflow, surviving);
        let n_phases = d.workflow.phases.len();
        let mut moved = 0usize;
        for pi in next..n_phases {
            for ti in 0..d.workflow.phases[pi].tasks.len() {
                let r = TaskRef::new(pi, ti);
                let target = report.plan.platform(r).expect("replan covers workflow");
                if d.plan.platform(r) != Ok(target) {
                    moved += 1;
                }
            }
        }
        d.tracer.emit(
            sim.now(),
            TraceEvent::Replan {
                phase: next,
                reason: reason.to_string(),
                nodes_before: ctx.planned_nodes,
                nodes_after: surviving,
                moved,
            },
        );
        ctx.planned_nodes = surviving;
        if moved == 0 {
            Vec::new()
        } else {
            let was_serverless = d.plan.uses_serverless();
            for pi in next..n_phases {
                for ti in 0..d.workflow.phases[pi].tasks.len() {
                    let r = TaskRef::new(pi, ti);
                    let target = report.plan.platform(r).expect("replan covers workflow");
                    d.plan.set(r, target);
                }
            }
            // Completed phases keep their historical output locations (the
            // master copies exist and stay readable over the fabric); only
            // future rows follow the new placement.
            let fresh = output_locations(&d.workflow, &d.plan);
            d.locations[next..n_phases].clone_from_slice(&fresh[next..n_phases]);
            // A plan that newly reaches a platform needs what the static
            // setup provisioned at time zero: cluster billing (idempotent)
            // and the staged initial dataset for store-reading sources.
            if d.plan.uses_cluster() {
                d.env_handles.cluster.start_billing(sim.now());
            }
            if d.plan.uses_serverless() && !was_serverless {
                d.env_handles.store.register_object(
                    sim.now(),
                    initial_key(&d.workflow.name),
                    d.workflow.initial_input_bytes,
                );
            }
            // Outputs that finished on a master but are now read by
            // serverless consumers must migrate into the store first
            // (master -> store over the WAN, billed PUTs).
            let mut uploads = Vec::new();
            for pi in next..n_phases {
                for ti in 0..d.workflow.phases[pi].tasks.len() {
                    let r = TaskRef::new(pi, ti);
                    if d.plan.platform(r) != Ok(Platform::Serverless) {
                        continue;
                    }
                    for dep in &d.workflow.task(r).deps {
                        let p = dep.producer;
                        if p.phase >= next {
                            continue; // not run yet: routed by `locations`
                        }
                        if d.locations[p.phase][p.task] == OutputLocation::Store {
                            continue; // already registered at completion
                        }
                        let pt = d.workflow.task(p);
                        let key = output_key(&pt.name);
                        if !ctx.uploaded.insert(key.clone()) {
                            continue; // migrated by an earlier replan
                        }
                        uploads.push((
                            key,
                            pt.components as f64 * pt.profile.output_bytes,
                            pt.components as u64,
                        ));
                    }
                }
            }
            uploads
        }
    };
    if uploads.is_empty() {
        return run_phase(sim, driver, next);
    }
    let (store, wan_bps) = {
        let d = driver.borrow();
        (d.env_handles.store.clone(), d.cfg.cluster.instance.wan_bps)
    };
    // Barrier: the phase starts once every migration has landed.
    let pending = shared(uploads.len());
    for (key, bytes, requests) in uploads {
        let store2 = store.clone();
        let driver2 = driver.clone();
        let pending2 = pending.clone();
        store.write(sim, bytes, requests, Some(wan_bps), move |sim, _| {
            store2.register_object(sim.now(), key, bytes);
            let remaining = {
                let mut left = pending2.borrow_mut();
                *left -= 1;
                *left
            };
            if remaining == 0 {
                run_phase(sim, driver2, next);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};

    fn two_phase_workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("test-wf");
        b.initial_input_bytes(1.0e9);
        b.begin_phase();
        let a = b.add_task(Task::new(
            "wide",
            64,
            TaskProfile::trivial().compute(5.0).io(1.0e7, 1.0e7),
        ));
        b.begin_phase();
        let m = b.add_task(Task::new(
            "merge",
            1,
            TaskProfile::trivial().compute(10.0).io(6.4e8, 1.0e7),
        ));
        b.depend(m, a, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    fn cfg(nodes: usize) -> MashupConfig {
        MashupConfig::aws(nodes)
    }

    #[test]
    fn all_vm_plan_runs_without_storage() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let report = execute(&cfg(8), &w, &plan, "traditional");
        assert_eq!(report.tasks.len(), 2);
        assert!(report.makespan_secs > 0.0);
        // Pure VM: no serverless or storage expense.
        assert_eq!(report.expense.faas_dollars, 0.0);
        assert_eq!(report.expense.storage_dollars, 0.0);
        assert!(report.expense.vm_dollars > 0.0);
        // Phase order respected.
        let wide = report.task("wide").expect("exists");
        let merge = report.task("merge").expect("exists");
        assert!(merge.start_secs >= wide.end_secs - 1e-9);
    }

    #[test]
    fn all_serverless_plan_bills_no_vm() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let report = execute(&cfg(8), &w, &plan, "serverless-only");
        assert_eq!(report.expense.vm_dollars, 0.0);
        assert!(report.expense.faas_dollars > 0.0);
        assert!(report.expense.storage_dollars > 0.0);
        assert_eq!(report.cluster_nodes, 0);
        let wide = report.task("wide").expect("exists");
        assert!(wide.n_cold + wide.n_warm >= 64);
        assert!(wide.cold_start_secs > 0.0);
    }

    #[test]
    fn hybrid_crosses_platform_boundary_through_store() {
        let w = two_phase_workflow();
        let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        plan.set(TaskRef::new(0, 0), Platform::Serverless);
        let report = execute(&cfg(8), &w, &plan, "hybrid");
        // Both platforms billed.
        assert!(report.expense.vm_dollars > 0.0);
        assert!(report.expense.faas_dollars > 0.0);
        let wide = report.task("wide").expect("exists");
        let merge = report.task("merge").expect("exists");
        assert_eq!(wide.platform, Platform::Serverless);
        assert_eq!(merge.platform, Platform::VmCluster);
        // The VM merge waited for the serverless producer.
        assert!(merge.start_secs >= wide.end_secs - 1e-9);
        // The merge read through the WAN: nonzero I/O time.
        assert!(merge.io_secs > 0.0);
    }

    #[test]
    fn vm_producer_feeding_serverless_consumer_uploads_output() {
        let w = two_phase_workflow();
        let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        plan.set(TaskRef::new(1, 0), Platform::Serverless);
        let report = execute(&cfg(8), &w, &plan, "hybrid");
        let wide = report.task("wide").expect("exists");
        // The VM producer wrote its output to the store over the WAN.
        assert_eq!(wide.platform, Platform::VmCluster);
        assert!(wide.io_secs > 0.0);
        assert!(report.expense.storage_dollars > 0.0);
    }

    #[test]
    fn larger_cluster_shrinks_vm_makespan() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let small = execute(&cfg(2), &w, &plan, "traditional");
        let large = execute(&cfg(32), &w, &plan, "traditional");
        assert!(large.makespan_secs < small.makespan_secs);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let a = execute(&cfg(4), &w, &plan, "s");
        let b = execute(&cfg(4), &w, &plan, "s");
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.expense, b.expense);
    }

    #[test]
    fn inert_chaos_spec_replays_the_static_run_byte_for_byte() {
        use mashup_cloud::FaultPlan;
        use mashup_sim::Tracer;
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let run = |cfg: &MashupConfig| {
            let tracer = Tracer::new();
            let report = execute_traced(cfg, &w, &plan, "t", &tracer);
            (report, tracer.take())
        };
        let (base_report, base_trace) = run(&cfg(4));
        // Controller on over a fault-free environment: nothing triggers,
        // nothing diverges — same trace, same report.
        let adaptive = cfg(4).with_chaos(
            ChaosSpec::new(FaultPlan::empty(1))
                .with_adaptive(true)
                .with_straggler_factor(2.0),
        );
        let (a_report, a_trace) = run(&adaptive);
        assert_eq!(base_report.makespan_secs, a_report.makespan_secs);
        assert_eq!(base_report.expense, a_report.expense);
        assert_eq!(format!("{base_trace:?}"), format!("{a_trace:?}"));
    }

    #[test]
    fn adaptive_controller_replans_after_preemption() {
        use mashup_cloud::{Fault, FaultPlan};
        use mashup_sim::Tracer;
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let mut fp = FaultPlan::empty(3);
        fp.faults.push(Fault::Preempt {
            at_secs: 3.0,
            node: 1,
        });
        let chaotic = cfg(4).with_chaos(ChaosSpec::new(fp).with_adaptive(true));
        let tracer = Tracer::new();
        let report = execute_traced(&chaotic, &w, &plan, "adaptive", &tracer);
        let records = tracer.take();
        assert_eq!(report.tasks.len(), 2);
        let replan = records
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::Replan {
                    reason,
                    nodes_before,
                    nodes_after,
                    ..
                } => Some((reason.clone(), *nodes_before, *nodes_after)),
                _ => None,
            })
            .expect("capacity loss must trigger a replan");
        assert_eq!(replan, ("preemption".into(), 4, 3));
        // The killed components retried and the run still finished in order.
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, TraceEvent::CompRetry { .. })));
        let wide = report.task("wide").expect("exists");
        let merge = report.task("merge").expect("exists");
        assert!(merge.start_secs >= wide.end_secs - 1e-9);
    }

    #[test]
    fn straggling_phase_triggers_a_replan() {
        use mashup_cloud::{Fault, FaultPlan};
        use mashup_sim::Tracer;
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        // A storage latency spike covering phase 0 slows every GET far past
        // the fault-free envelope the baseline predicts.
        let mut fp = FaultPlan::empty(4);
        fp.faults.push(Fault::StorageLatency {
            from_secs: 0.0,
            until_secs: 1.0e6,
            extra_secs: 30.0,
        });
        let chaotic = cfg(4).with_chaos(
            ChaosSpec::new(fp)
                .with_adaptive(true)
                .with_straggler_factor(1.5),
        );
        let tracer = Tracer::new();
        let report = execute_traced(&chaotic, &w, &plan, "adaptive", &tracer);
        let records = tracer.take();
        assert_eq!(report.tasks.len(), 2);
        assert!(
            records.iter().any(|r| matches!(
                &r.event,
                TraceEvent::Replan { reason, .. } if reason == "straggler"
            )),
            "a 30 s/op latency spike must blow the phase envelope"
        );
    }

    #[test]
    fn input_requests_follow_fan_in_degrees() {
        let w = two_phase_workflow();
        // "wide" is initial: exactly one staged-dataset GET.
        assert_eq!(input_requests(&w, TaskRef::new(0, 0)), 1);
        // "merge" fans in over all 64 producer components.
        assert_eq!(input_requests(&w, TaskRef::new(1, 0)), 64);
    }

    #[test]
    fn output_locations_follow_the_placement() {
        let w = two_phase_workflow();
        // All VM: everything stays on the master.
        let vm = PlacementPlan::uniform(&w, Platform::VmCluster);
        let locs = output_locations(&w, &vm);
        assert_eq!(locs[0][0], OutputLocation::Master);
        assert_eq!(locs[1][0], OutputLocation::Master);
        // Serverless consumer forces the producer's output into the store.
        let mut hybrid = PlacementPlan::uniform(&w, Platform::VmCluster);
        hybrid.set(TaskRef::new(1, 0), Platform::Serverless);
        let locs = output_locations(&w, &hybrid);
        assert_eq!(locs[0][0], OutputLocation::Store);
        assert_eq!(locs[1][0], OutputLocation::Store);
    }

    #[test]
    fn base_sizing_reproduces_the_unsized_run_bit_for_bit() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let cfg = cfg(4);
        let plain = execute(&cfg, &w, &plan, "s");
        let sized = execute_sized(&cfg, &w, &plan, &crate::Sizing::base(&cfg, &w), "s");
        assert_eq!(plain, sized);
    }

    #[test]
    fn bigger_tier_speeds_compute_and_raises_the_rate() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let cfg = cfg(4);
        let base = execute(&cfg, &w, &plan, "s");
        let big = execute_sized(&cfg, &w, &plan, &crate::Sizing::uniform(&w, 8.0), "s");
        // sqrt(8/3) faster cores shrink every component's compute time.
        assert!(big.task("wide").unwrap().compute_secs < base.task("wide").unwrap().compute_secs);
        let small = execute_sized(&cfg, &w, &plan, &crate::Sizing::uniform(&w, 0.5), "s");
        assert!(small.task("wide").unwrap().compute_secs > base.task("wide").unwrap().compute_secs);
        // The 0.5 GB tier bills at a sixth of the base rate; even with the
        // slower cores (sqrt(6) longer busy time) it comes out cheaper here.
        assert!(small.expense.faas_dollars < base.expense.faas_dollars);
    }

    #[test]
    fn mixed_sizing_runs_each_task_on_its_own_tier() {
        let w = two_phase_workflow();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let cfg = cfg(4);
        let flat_wide = w.arena().flat_by_name("wide").expect("exists");
        let mut sizing = crate::Sizing::base(&cfg, &w);
        sizing.tiers_gb[flat_wide] = 8.0;
        let mixed = execute_sized(&cfg, &w, &plan, &sizing, "s");
        let base = execute(&cfg, &w, &plan, "s");
        // The resized task sped up; the base-tier task is untouched (its
        // platform, pools, and seed streams are the unsized ones).
        assert!(mixed.task("wide").unwrap().compute_secs < base.task("wide").unwrap().compute_secs);
        assert_eq!(
            mixed.task("merge").unwrap().compute_secs,
            base.task("merge").unwrap().compute_secs
        );
    }

    #[test]
    fn sized_preflight_enforces_the_per_task_tier_cap() {
        let mut w = two_phase_workflow();
        w.phases[0].tasks[0].profile.memory_gb = 1.5;
        let w = Workflow::new("test-wf", w.phases.clone(), w.initial_input_bytes);
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let cfg = cfg(4);
        // 1.5 GiB fits the 2 GB tier but not the 1 GB tier.
        let err =
            try_execute_sized(&cfg, &w, &plan, &crate::Sizing::uniform(&w, 1.0), "s").unwrap_err();
        assert!(err
            .errors()
            .all(|d| d.code == mashup_analyze::Code::FaasMemoryExceeded));
        assert!(try_execute_sized(&cfg, &w, &plan, &crate::Sizing::uniform(&w, 2.0), "s").is_ok());
    }

    #[test]
    fn different_seeds_jitter_results() {
        let mut w = two_phase_workflow();
        // Give tasks jitter so seeds matter.
        for p in &mut w.phases {
            for t in &mut p.tasks {
                t.profile.runtime_jitter = 0.2;
            }
        }
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let a = execute(&cfg(4).with_seed(1), &w, &plan, "s");
        let b = execute(&cfg(4).with_seed(2), &w, &plan, "s");
        assert_ne!(a.makespan_secs, b.makespan_secs);
    }
}
