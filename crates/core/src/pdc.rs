//! The Placement Decision Controller (paper §3, Algorithm 1).
//!
//! Two-step profiling, exactly as the paper describes:
//!
//! 1. run the whole workflow once on the VM cluster and record each task's
//!    execution time `T_VM` (most workflow managers need such a run anyway;
//!    Mashup reuses it);
//! 2. run **one component** of each task in a serverless function and
//!    estimate the full task's serverless time `T_func` through the linear
//!    scaling model of Eq. 1 — `T_func = α·C + R_serverless + β` — where α
//!    (scaling slope) and β (constant start overhead) are calibrated
//!    autonomously with no-op micro-batches, plus an aggregate-bandwidth
//!    floor for I/O-heavy tasks (the I/O overhead the paper says the PDC
//!    accounts for).
//!
//! Decision rules layered on the Eq. 3 argmin:
//! * a conservative 2 s cold-start penalty is always added to serverless
//!   estimates;
//! * tasks whose memory footprint exceeds their function size are forced to
//!   the cluster. The function size is **per task**: by default every task
//!   uses the provider's base function (the paper's single 3 GB
//!   configuration), but a [`Sizing`](crate::Sizing) attached via
//!   [`Pdc::with_sizing`] assigns each task its own memory tier
//!   ([`crate::MEMORY_TIERS_GB`]), and the memory rule, the short-task
//!   threshold (tier core speed), the probe environment, and the expense
//!   argmin (tier price) all evaluate against that task's tier;
//! * very short tasks (< 1 s per component) are forced to the cluster —
//!   unless they are highly concurrent *and* frequently re-appearing, the
//!   paper's warm-pool exception;
//! * alternative objectives (expense, or equal weight on both) reproduce
//!   the Fig. 5 study.

use crate::cache::{PhaseProfileEntry, PlanCache, ProbeEntry, VmProfileEntry};
use crate::config::{tier_key, CloudEnv, MashupConfig, Sizing};
use crate::exec::execute_in;
use crate::fingerprint::{Fingerprint, Fingerprinter};
use crate::placement::{PlacementPlan, Platform};
use mashup_cloud::{
    run_task_on_faas, ClusterInput, ClusterOutput, ClusterTaskSpec, Expense, FaasConfig,
    FaasRunStats, FaasTaskSpec,
};
use mashup_dag::{Phase, Task, TaskRef, Workflow};
use mashup_sim::{shared, SimTime, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What the optimizer minimizes (Fig. 5 ablation; the paper's default is
/// execution time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize workflow execution time (Mashup's choice).
    ExecutionTime,
    /// Minimize dollar expense.
    Expense,
    /// Equal weight on both (product of ratios).
    Both,
}

/// Calibrated platform factors (the paper's experimentally-derived α, β, γ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelFactors {
    /// Scaling-time slope: seconds per component beyond the burst (Eq. 1).
    pub alpha: f64,
    /// Constant serverless start overhead in seconds (Eq. 1).
    pub beta: f64,
    /// VM contention exponent fitted per workflow (Eq. 2); ≥ 1.
    pub gamma: f64,
    /// Estimated aggregate store bandwidth in bytes/sec (for the I/O floor).
    pub store_bps: f64,
    /// Scheduler burst capacity observed during calibration.
    pub burst: usize,
}

/// The PDC's record for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDecision {
    /// Task location in the DAG.
    pub task: TaskRef,
    /// Task name.
    pub name: String,
    /// Component count.
    pub components: usize,
    /// Measured cluster execution time of the whole task, seconds.
    pub t_vm_secs: f64,
    /// Estimated serverless execution time of the whole task, seconds.
    pub t_serverless_est_secs: f64,
    /// Measured single-component serverless probe time, seconds.
    pub probe_secs: f64,
    /// Busy function-seconds of the probe (for expense estimation).
    pub probe_busy_secs: f64,
    /// Set when a rule forced the task to the cluster.
    pub forced_vm_reason: Option<String>,
    /// The chosen platform.
    pub platform: Platform,
}

/// The PDC's full output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdcReport {
    /// Calibrated model factors.
    pub factors: ModelFactors,
    /// Per-task decisions in DAG order.
    pub decisions: Vec<TaskDecision>,
    /// The resulting plan.
    pub plan: PlacementPlan,
    /// Expense of the profiling runs (VM pass + probes + calibration).
    pub profiling_expense: Expense,
    /// Makespan of the profiling VM pass, seconds.
    pub profiling_vm_makespan_secs: f64,
    /// The sub-cluster split the PDC found best for the VM side (§3:
    /// "Mashup recognizes the most optimal VM configuration and uses that
    /// as a baseline for the VM cluster").
    pub subclusters: usize,
}

/// Bookkeeping from one [`Pdc::replan`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplanStats {
    /// Phases whose task content changed and were re-profiled in isolation.
    pub dirty_phases: usize,
    /// Decisions carried over verbatim from the previous report.
    pub reused_decisions: usize,
    /// Tasks re-decided (re-profiled, probed, estimated) by this call.
    pub replanned_tasks: usize,
    /// True when the structure diverged too far and a full `decide` ran.
    pub full_replan: bool,
}

/// The Placement Decision Controller.
pub struct Pdc {
    cfg: MashupConfig,
    objective: Objective,
    cache: Option<Arc<PlanCache>>,
    tracer: Tracer,
    probe_sharing: bool,
    sizing: Option<Sizing>,
}

impl Pdc {
    /// Creates a PDC optimizing execution time (the paper's default).
    ///
    /// Any chaos spec on `cfg` is stripped: profiling and probe
    /// environments model the provider's *advertised* behaviour, never the
    /// injected faults (and a plan cache stays shareable across chaos
    /// scenarios).
    pub fn new(mut cfg: MashupConfig) -> Self {
        cfg.chaos = None;
        Pdc {
            cfg,
            objective: Objective::ExecutionTime,
            cache: None,
            tracer: Tracer::off(),
            probe_sharing: false,
            sizing: None,
        }
    }

    /// Builder-style: records decision provenance (per-task argmin inputs
    /// and cache hit/miss records) into `tracer`. Planning happens before
    /// simulated time starts, so every record lands at t = 0. The profiling
    /// environments themselves stay untraced.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Records whether a memoized profiling stage was served from the cache
    /// (`compute` never ran) or computed fresh.
    fn trace_cache(&self, section: &str, computed: bool) {
        self.tracer.emit(
            SimTime::ZERO,
            TraceEvent::PdcCache {
                section: section.to_string(),
                hit: !computed,
            },
        );
    }

    /// Builder-style: changes the optimization objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Builder-style: memoizes the profiling stages in `cache`. Reports are
    /// bit-identical with or without a cache (see [`crate::cache`]).
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builder-style: shares serverless probes between tasks declaring the
    /// same `code_family`. A probe measures one component of a task's code
    /// on the FaaS platform, so same-family tasks with identical profiles
    /// are interchangeable probe subjects — at million-task scale a
    /// generator emitting one family per phase pays one probe per family
    /// instead of one per task. Off by default: sharing changes probe seeds
    /// and labels, so opted-out runs stay byte-identical to prior releases.
    pub fn with_probe_sharing(mut self, enabled: bool) -> Self {
        self.probe_sharing = enabled;
        self
    }

    /// Builder-style: assigns each task its own serverless memory tier
    /// (flat-id indexed, so the sizing must be built for the same workflow
    /// the PDC decides). Without a sizing — or with [`Sizing::base`] —
    /// every task uses the provider's base function size and decisions are
    /// bit-identical to prior releases. Tier probes are cached under keys
    /// that fingerprint the tier's FaaS behaviour, so a candidate sweep
    /// over sizings pays one probe per (task, tier), not per candidate.
    pub fn with_sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = Some(sizing);
        self
    }

    /// The FaaS configuration task `r` executes under: its sizing tier's
    /// derived config when a sizing is attached, otherwise the provider's
    /// base function (borrowed — the unsized path allocates nothing).
    fn task_faas_cfg(&self, workflow: &Workflow, r: TaskRef) -> Cow<'_, FaasConfig> {
        match &self.sizing {
            None => Cow::Borrowed(&self.cfg.provider.faas),
            Some(s) => {
                let flat = workflow.arena().flat(r).expect("task ref in workflow");
                Cow::Owned(self.cfg.faas_tier(s.tier(flat)))
            }
        }
    }

    /// Whether task `r` sits at the provider's base function size (always
    /// true without a sizing).
    fn at_base_tier(&self, workflow: &Workflow, r: TaskRef) -> bool {
        match &self.sizing {
            None => true,
            Some(s) => {
                let flat = workflow.arena().flat(r).expect("task ref in workflow");
                tier_key(s.tier(flat)) == tier_key(self.cfg.provider.faas.memory_gb)
            }
        }
    }

    /// The shared identity a probe is keyed, labelled, and seeded by — the
    /// task's `code_family` when probe sharing is on and the family is
    /// declared, `None` (the task stands alone) otherwise.
    fn probe_identity<'t>(&self, t: &'t Task) -> Option<&'t str> {
        if self.probe_sharing {
            t.profile.code_family.as_deref()
        } else {
            None
        }
    }

    /// Like [`Pdc::decide`], but refuses error-diagnosed inputs (M1xx
    /// workflow and M3xx config checks) with a typed
    /// [`AnalysisError`](mashup_analyze::AnalysisError) before any
    /// profiling simulation runs.
    pub fn try_decide(
        &self,
        workflow: &Workflow,
    ) -> Result<PdcReport, mashup_analyze::AnalysisError> {
        crate::analysis::preflight(&self.cfg, workflow, None)?;
        Ok(self.decide(workflow))
    }

    /// Runs both profiling steps and produces the placement plan.
    pub fn decide(&self, workflow: &Workflow) -> PdcReport {
        // Step 0: calibrate platform factors with no-op micro-batches.
        let factors = self.calibrated_factors();

        // Step 1: full VM profiling passes across candidate sub-cluster
        // splits (memoized on workflow + cluster shape + seed).
        let vm = match &self.cache {
            Some(c) => {
                let computed = Cell::new(false);
                let v = c.vm_profile(self.vm_profile_key(workflow), || {
                    computed.set(true);
                    self.run_vm_profile(workflow)
                });
                self.trace_cache("vm-profile", computed.get());
                v
            }
            None => self.run_vm_profile(workflow),
        };

        // Step 2: single-component serverless probes + decisions. Flat ids
        // are phase-major (see `TaskArena`), matching both the `task_refs`
        // order and the profile vector's layout.
        let mut decisions = Vec::with_capacity(workflow.task_count());
        let mut plan = PlacementPlan::new();
        for (flat, r) in workflow.task_refs().enumerate() {
            let d = self.decide_task(workflow, r, vm.best_task_vm[flat], &factors);
            plan.set(r, d.platform);
            decisions.push(d);
        }

        // The boundary-tax refinement reasons in seconds, so it only
        // applies under the (default) execution-time objective.
        if self.objective == Objective::ExecutionTime {
            refine_boundary_taxes(
                workflow,
                &mut decisions,
                &mut plan,
                self.cfg.cluster.instance.wan_bps,
                self.cfg.cluster.instance.master_nic_bps,
            );
        }

        self.trace_decisions(&decisions);

        PdcReport {
            factors,
            decisions,
            plan,
            profiling_expense: vm.expense,
            profiling_vm_makespan_secs: vm.vm_makespan_secs,
            subclusters: vm.subclusters,
        }
    }

    /// Calibration factors, memoized when a cache is attached.
    fn calibrated_factors(&self) -> ModelFactors {
        match &self.cache {
            Some(c) => {
                let computed = Cell::new(false);
                let f = c.calibration(self.calibration_key(), || {
                    computed.set(true);
                    calibrate(&self.cfg)
                });
                self.trace_cache("calibration", computed.get());
                f
            }
            None => calibrate(&self.cfg),
        }
    }

    /// Decides one task from its measured cluster-side time `t_vm`: the
    /// memory and short-task rules, the (cached) serverless probe, the
    /// Eq. 1 estimate, and the objective argmin — shared verbatim by
    /// [`decide`](Pdc::decide) and [`replan`](Pdc::replan).
    fn decide_task(
        &self,
        workflow: &Workflow,
        r: TaskRef,
        t_vm: f64,
        factors: &ModelFactors,
    ) -> TaskDecision {
        let t = workflow.task(r);
        let faas_cfg = self.task_faas_cfg(workflow, r);

        // Memory rule: components oversized for their function tier can
        // never run serverless.
        if t.profile.memory_gb > faas_cfg.memory_gb {
            return TaskDecision {
                task: r,
                name: t.name.clone(),
                components: t.components,
                t_vm_secs: t_vm,
                t_serverless_est_secs: f64::INFINITY,
                probe_secs: 0.0,
                probe_busy_secs: 0.0,
                forced_vm_reason: Some(format!(
                    "memory {} GiB exceeds function cap {} GiB",
                    t.profile.memory_gb, faas_cfg.memory_gb
                )),
                platform: Platform::VmCluster,
            };
        }

        let probe = match &self.cache {
            Some(c) => {
                let computed = Cell::new(false);
                let p = c.probe(self.probe_key(r, t, &faas_cfg), || {
                    computed.set(true);
                    self.run_probe(workflow, r, &faas_cfg)
                });
                let ident = self.probe_identity(t).unwrap_or(&t.name);
                self.trace_cache(&format!("probe:{ident}"), computed.get());
                p
            }
            None => self.run_probe(workflow, r, &faas_cfg),
        };
        let (probe_secs, probe_busy_secs) = (probe.probe_secs, probe.probe_busy_secs);

        // Short-task rule with the recurring/warm-pool exception.
        let single_runtime = t.profile.compute_secs_serverless() / faas_cfg.core_speed;
        let short = single_runtime < self.cfg.short_task_threshold_secs;
        let exception = t.profile.recurring && t.components > factors.burst;
        if short && !exception {
            return TaskDecision {
                task: r,
                name: t.name.clone(),
                components: t.components,
                t_vm_secs: t_vm,
                t_serverless_est_secs: f64::INFINITY,
                probe_secs,
                probe_busy_secs,
                forced_vm_reason: Some(format!(
                    "short-running ({single_runtime:.2} s < {} s) without the \
                     recurring-task exception",
                    self.cfg.short_task_threshold_secs
                )),
                platform: Platform::VmCluster,
            };
        }

        let est = estimate_serverless_time(
            factors,
            t.components,
            probe_secs,
            t.profile.io_bytes(),
            self.cfg.conservative_cold_start_secs,
        );

        let platform = self.choose(
            factors,
            t_vm,
            est,
            t.components,
            probe_busy_secs,
            faas_cfg.price_per_hour,
        );
        TaskDecision {
            task: r,
            name: t.name.clone(),
            components: t.components,
            t_vm_secs: t_vm,
            t_serverless_est_secs: est,
            probe_secs,
            probe_busy_secs,
            forced_vm_reason: None,
            platform,
        }
    }

    /// Decision provenance, recorded after the boundary refinement so each
    /// record carries the task's *final* platform and reason. Forced
    /// decisions never estimated a serverless time; their infinite sentinel
    /// is recorded as -1 (JSON has no infinity).
    fn trace_decisions(&self, decisions: &[TaskDecision]) {
        if !self.tracer.is_on() {
            // Skip building the per-decision events (two string clones
            // each): at 10^6 decisions the dead allocations are material.
            return;
        }
        for d in decisions {
            self.tracer.emit(
                SimTime::ZERO,
                TraceEvent::PdcDecision {
                    task: d.name.clone(),
                    t_vm_secs: d.t_vm_secs,
                    t_serverless_secs: if d.t_serverless_est_secs.is_finite() {
                        d.t_serverless_est_secs
                    } else {
                        -1.0
                    },
                    platform: match d.platform {
                        Platform::Serverless => "serverless".to_string(),
                        Platform::VmCluster => "vm".to_string(),
                    },
                    forced: d.forced_vm_reason.clone().unwrap_or_default(),
                },
            );
        }
    }

    /// Incrementally replans `workflow` — an edited version of `old` —
    /// reusing `prev`, the report a `decide` (or earlier `replan`) produced
    /// for `old`.
    ///
    /// Phases are barriered, so in the all-VM profiling passes each task's
    /// measured duration depends only on its *own phase's* content: at a
    /// phase boundary the fabric links are idle and the node loads zero,
    /// which makes per-task times start-time-translation invariant. A phase
    /// whose tasks are content-identical to `old`'s therefore keeps its
    /// measured times and rule decisions verbatim — even when an upstream
    /// phase changed — and only dirty phases are re-profiled, in isolation,
    /// through the memoized scoped phase profiler. The plan-level
    /// boundary-tax refinement is recomputed globally (it is cheap and
    /// plan-dependent) after undoing any taxes baked into reused decisions.
    ///
    /// Falls back to a full [`decide`](Pdc::decide) when the phase
    /// structure diverged (different phase shape, or `prev` does not match
    /// `old`).
    pub fn replan(
        &self,
        old: &Workflow,
        prev: &PdcReport,
        workflow: &Workflow,
    ) -> (PdcReport, ReplanStats) {
        let aligned = old.phases.len() == workflow.phases.len()
            && prev.decisions.len() == old.task_count()
            && old
                .phases
                .iter()
                .zip(&workflow.phases)
                .all(|(op, np)| op.tasks.len() == np.tasks.len());
        if !aligned {
            let report = self.decide(workflow);
            let stats = ReplanStats {
                dirty_phases: workflow.phases.len(),
                reused_decisions: 0,
                replanned_tasks: report.decisions.len(),
                full_replan: true,
            };
            return (report, stats);
        }

        let factors = self.calibrated_factors();

        let mut profiling_expense = prev.profiling_expense;
        let mut decisions = Vec::with_capacity(workflow.task_count());
        let mut plan = PlacementPlan::new();
        let mut stats = ReplanStats {
            dirty_phases: 0,
            reused_decisions: 0,
            replanned_tasks: 0,
            full_replan: false,
        };
        // Flat id of the current phase's first decision in `prev`.
        let mut prev_base = 0usize;
        for (pi, (op, np)) in old.phases.iter().zip(&workflow.phases).enumerate() {
            let clean = op
                .tasks
                .iter()
                .zip(&np.tasks)
                .all(|(a, b)| task_digest(a) == task_digest(b));
            if clean {
                for ti in 0..np.tasks.len() {
                    let mut d = prev.decisions[prev_base + ti].clone();
                    debug_assert_eq!(d.task, TaskRef::new(pi, ti));
                    // Boundary taxes are plan-level, not task-level: strip
                    // any flip the old refinement applied so the global
                    // refinement below re-derives it against the new plan.
                    if d.forced_vm_reason
                        .as_deref()
                        .is_some_and(|s| s.starts_with("hybrid boundary tax"))
                    {
                        d.forced_vm_reason = None;
                        d.platform = Platform::Serverless;
                    }
                    plan.set(d.task, d.platform);
                    decisions.push(d);
                }
                stats.reused_decisions += np.tasks.len();
            } else {
                stats.dirty_phases += 1;
                let profile = self.phase_profile(workflow, pi);
                add_expense(&mut profiling_expense, &profile.expense);
                for ti in 0..np.tasks.len() {
                    let r = TaskRef::new(pi, ti);
                    let d = self.decide_task(workflow, r, profile.task_secs[ti], &factors);
                    plan.set(r, d.platform);
                    decisions.push(d);
                }
                stats.replanned_tasks += np.tasks.len();
            }
            prev_base += op.tasks.len();
        }

        if self.objective == Objective::ExecutionTime {
            refine_boundary_taxes(
                workflow,
                &mut decisions,
                &mut plan,
                self.cfg.cluster.instance.wan_bps,
                self.cfg.cluster.instance.master_nic_bps,
            );
        }

        self.trace_decisions(&decisions);

        let report = PdcReport {
            factors,
            decisions,
            plan,
            profiling_expense,
            profiling_vm_makespan_secs: prev.profiling_vm_makespan_secs,
            subclusters: prev.subclusters,
        };
        (report, stats)
    }

    /// Incrementally plans `workflow` — a *structural rewrite* of `base`
    /// (e.g. a fusion candidate: phases merged or dropped, tasks renamed) —
    /// reusing `prev`, the report a `decide` produced for `base`.
    ///
    /// Where [`replan`](Pdc::replan) requires the phase shape to be
    /// unchanged, this method aligns phases **by content**: each new phase
    /// is matched against the base workflow's phases by a digest of its
    /// task content (names, components, profiles, initial-ingest flags —
    /// the same content the scoped phase profiler keys by, and for the same
    /// reason: scoped VM times are start-time-translation invariant, so a
    /// content-identical phase keeps its measured times wherever the
    /// rewrite moved it). Matched tasks at the base function tier reuse
    /// their previous decisions verbatim (boundary taxes stripped, refs
    /// rebased); matched tasks assigned a non-base tier re-run the decision
    /// rules against their tier using the previous VM measurement (the VM
    /// side is sizing-independent), paying only a per-(task, tier)-cached
    /// probe; unmatched phases — the ones a fusion actually changed — are
    /// re-profiled through the memoized scoped phase profiler.
    ///
    /// This is the evaluation core of the Pareto candidate sweep
    /// (`crate::pareto`): a sizing-only candidate re-probes nothing on a
    /// warm cache, and a fusion candidate re-profiles exactly its fused
    /// phases. Falls back to a full [`decide`](Pdc::decide) when `prev`
    /// does not cover `base`.
    pub fn replan_structural(
        &self,
        base: &Workflow,
        prev: &PdcReport,
        workflow: &Workflow,
    ) -> (PdcReport, ReplanStats) {
        // Flat offset of each base phase's first decision in `prev`.
        let mut base_starts = Vec::with_capacity(base.phases.len());
        let mut acc = 0usize;
        for p in &base.phases {
            base_starts.push(acc);
            acc += p.tasks.len();
        }
        if prev.decisions.len() != acc {
            let report = self.decide(workflow);
            let stats = ReplanStats {
                dirty_phases: workflow.phases.len(),
                reused_decisions: 0,
                replanned_tasks: report.decisions.len(),
                full_replan: true,
            };
            return (report, stats);
        }
        // Content index over the base phases (first occurrence wins; phase
        // content digests collide only for phases the profiler cannot tell
        // apart anyway). A match additionally requires equal task counts,
        // which the digest's length prefix already enforces.
        let mut by_content: BTreeMap<u128, usize> = BTreeMap::new();
        for (pi, p) in base.phases.iter().enumerate() {
            by_content.entry(phase_content_digest(p)).or_insert(pi);
        }

        let factors = self.calibrated_factors();
        let mut profiling_expense = prev.profiling_expense;
        let mut decisions = Vec::with_capacity(workflow.task_count());
        let mut plan = PlacementPlan::new();
        let mut stats = ReplanStats {
            dirty_phases: 0,
            reused_decisions: 0,
            replanned_tasks: 0,
            full_replan: false,
        };
        for (pi, np) in workflow.phases.iter().enumerate() {
            match by_content.get(&phase_content_digest(np)).copied() {
                Some(bpi) => {
                    let start = base_starts[bpi];
                    for ti in 0..np.tasks.len() {
                        let r = TaskRef::new(pi, ti);
                        let prev_d = &prev.decisions[start + ti];
                        let d = if self.at_base_tier(workflow, r) {
                            let mut d = prev_d.clone();
                            d.task = r;
                            // Boundary taxes are plan-level: strip any flip
                            // the old refinement applied so the global
                            // refinement below re-derives it.
                            if d.forced_vm_reason
                                .as_deref()
                                .is_some_and(|s| s.starts_with("hybrid boundary tax"))
                            {
                                d.forced_vm_reason = None;
                                d.platform = Platform::Serverless;
                            }
                            stats.reused_decisions += 1;
                            d
                        } else {
                            stats.replanned_tasks += 1;
                            self.decide_task(workflow, r, prev_d.t_vm_secs, &factors)
                        };
                        plan.set(r, d.platform);
                        decisions.push(d);
                    }
                }
                None => {
                    stats.dirty_phases += 1;
                    let profile = self.phase_profile(workflow, pi);
                    add_expense(&mut profiling_expense, &profile.expense);
                    for ti in 0..np.tasks.len() {
                        let r = TaskRef::new(pi, ti);
                        let d = self.decide_task(workflow, r, profile.task_secs[ti], &factors);
                        plan.set(r, d.platform);
                        decisions.push(d);
                    }
                    stats.replanned_tasks += np.tasks.len();
                }
            }
        }

        if self.objective == Objective::ExecutionTime {
            refine_boundary_taxes(
                workflow,
                &mut decisions,
                &mut plan,
                self.cfg.cluster.instance.wan_bps,
                self.cfg.cluster.instance.master_nic_bps,
            );
        }

        self.trace_decisions(&decisions);

        let report = PdcReport {
            factors,
            decisions,
            plan,
            profiling_expense,
            profiling_vm_makespan_secs: prev.profiling_vm_makespan_secs,
            subclusters: prev.subclusters,
        };
        (report, stats)
    }

    /// Re-places `workflow` against reduced cluster capacity: `surviving`
    /// of the configured nodes remain (spot preemption reclaimed the
    /// rest). No profiling runs — mid-run replanning must stay off the hot
    /// path — so the previous report's measurements are reused with each
    /// task's cluster time scaled by its per-node load ratio
    /// `max(1, C/surviving) / max(1, C/nodes)`: a task wider than the
    /// cluster packs proportionally more components per surviving node
    /// (approaching `nodes / surviving`), while a task with fewer
    /// components than the surviving capacity is unaffected — it never
    /// waved in the first place. Serverless estimates are
    /// capacity-independent and ride along unchanged; the decision rules
    /// then re-run over the scaled times. Structural forcings (memory cap,
    /// short task) survive verbatim; plan-level boundary taxes are
    /// stripped and re-derived against the new plan. With
    /// `surviving == nodes` every scale is 1 and the report comes back
    /// decision-identical to `prev`.
    pub fn replan_capacity(
        &self,
        prev: &PdcReport,
        workflow: &Workflow,
        surviving: usize,
    ) -> PdcReport {
        let nodes = self.cfg.cluster.nodes.max(1);
        let surviving = surviving.clamp(1, nodes);
        let mut decisions = Vec::with_capacity(prev.decisions.len());
        let mut plan = PlacementPlan::new();
        for prev_d in &prev.decisions {
            let mut d = prev_d.clone();
            let c = workflow.task(d.task).components as f64;
            let scale = (c / surviving as f64).max(1.0) / (c / nodes as f64).max(1.0);
            d.t_vm_secs = prev_d.t_vm_secs * scale;
            if d.forced_vm_reason
                .as_deref()
                .is_some_and(|s| s.starts_with("hybrid boundary tax"))
            {
                d.forced_vm_reason = None;
                d.platform = Platform::Serverless;
            }
            if d.forced_vm_reason.is_none() {
                let t = workflow.task(d.task);
                let faas_cfg = self.task_faas_cfg(workflow, d.task);
                d.platform = self.choose(
                    &prev.factors,
                    d.t_vm_secs,
                    d.t_serverless_est_secs,
                    t.components,
                    d.probe_busy_secs,
                    faas_cfg.price_per_hour,
                );
            }
            plan.set(d.task, d.platform);
            decisions.push(d);
        }
        if self.objective == Objective::ExecutionTime {
            refine_boundary_taxes(
                workflow,
                &mut decisions,
                &mut plan,
                self.cfg.cluster.instance.wan_bps,
                self.cfg.cluster.instance.master_nic_bps,
            );
        }
        PdcReport {
            factors: prev.factors,
            decisions,
            plan,
            profiling_expense: prev.profiling_expense,
            profiling_vm_makespan_secs: prev.profiling_vm_makespan_secs,
            subclusters: prev.subclusters,
        }
    }

    /// Runs the full VM profiling passes, one per candidate sub-cluster
    /// split (seed-offset so profiling does not share jitter draws with
    /// production runs) — the PDC keeps the best VM configuration as the
    /// cluster-side baseline (§3 "Optimal VM configuration").
    fn run_vm_profile(&self, workflow: &Workflow) -> VmProfileEntry {
        let mut expense = Expense::default();
        let vm_plan = PlacementPlan::uniform(workflow, Platform::VmCluster);
        let mut best: Option<(usize, crate::report::WorkflowReport)> = None;
        // Per-task best VM time across the splits, indexed by flat task id
        // (phase-major, matching `Workflow::task_refs`): a task's
        // cluster-side potential is what the *best-configured* cluster
        // gives it (§3 "Mashup recognizes the most optimal VM
        // configuration") — the all-in-one run can be polluted by
        // co-scheduled siblings thrashing the same nodes.
        let arena = workflow.arena();
        let mut best_task_vm = vec![f64::INFINITY; workflow.task_count()];
        for k in [1usize, 2, 4] {
            if k > self.cfg.cluster.nodes {
                continue;
            }
            let tuned = self.cfg.clone().with_subclusters(k);
            let mut env = CloudEnv::with_seed_offset(&tuned, 0x9e3779b9);
            let report = execute_in(&mut env, &tuned, workflow, &vm_plan, "pdc-profiling");
            add_expense(&mut expense, &report.expense);
            for t in &report.tasks {
                let flat = arena
                    .flat_by_name(&t.name)
                    // The profiling passes execute every task exactly once,
                    // and task names are unique (diagnostic M106).
                    .expect("profiled task exists in the workflow");
                let e = &mut best_task_vm[flat];
                *e = e.min(t.makespan_secs());
            }
            // Hysteresis: a finer split must be clearly (≥5 %) better —
            // splitting halves every task's node share, so a near-tie is
            // noise, not signal.
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| report.makespan_secs < b.makespan_secs * 0.95);
            if better {
                best = Some((k, report));
            }
        }
        let (subclusters, vm_report) = best.expect("single-cluster split always runs");
        VmProfileEntry {
            best_task_vm,
            subclusters,
            vm_makespan_secs: vm_report.makespan_secs,
            expense,
        }
    }

    /// Cache key for the calibration stage: seed + FaaS/storage behaviour
    /// (prices excluded — calibration never reads its own expense) + the
    /// raw checkpoint margin the no-op specs carry.
    fn calibration_key(&self) -> u128 {
        let mut f = Fingerprinter::new("pdc-calibration-v1");
        f.write_u64(self.cfg.seed);
        self.cfg.provider.faas.fingerprint(&mut f);
        self.cfg.provider.storage.fingerprint(&mut f);
        f.write_f64(self.cfg.checkpoint_margin_secs);
        f.digest()
    }

    /// Cache key for the VM profiling stage: the whole workflow + the
    /// cluster shape (instance price *included*: VM expense accrues at
    /// charge time inside the pass) + seed. FaaS/storage knobs are
    /// irrelevant — the pass is all-VM — so pricing/provider sweeps reuse
    /// it untouched.
    fn vm_profile_key(&self, workflow: &Workflow) -> u128 {
        let mut f = Fingerprinter::new("pdc-vm-profile-v1");
        f.write_u64(self.cfg.seed);
        self.cfg.cluster.fingerprint(&mut f);
        workflow.fingerprint(&mut f);
        f.digest()
    }

    /// Cache key for one serverless probe: seed + the probe subject's
    /// identity + profile + FaaS/storage behaviour + the task's resolved
    /// checkpoint margin. The subject is normally phase + task name (the
    /// probe environment's seed offset is phase-derived and the FaaS label
    /// keys warm pools); with [probe sharing](Pdc::with_probe_sharing) it
    /// is the code family alone, phase-independent, so every task of a
    /// family shares one probe. The cluster is deliberately absent, so
    /// node-count sweeps reuse every probe. `faas_cfg` is the task's tier
    /// config (fingerprinted, so each memory tier keys its own probe —
    /// which is what lets a sizing sweep share probes across candidates).
    fn probe_key(&self, r: TaskRef, t: &Task, faas_cfg: &FaasConfig) -> u128 {
        let mut f = Fingerprinter::new("pdc-probe-v1");
        f.write_u64(self.cfg.seed);
        match self.probe_identity(t) {
            Some(family) => {
                // Sentinel phase: no real task ref carries usize::MAX.
                f.write_usize(usize::MAX);
                f.write_str(family);
            }
            None => {
                f.write_usize(r.phase);
                f.write_str(&t.name);
            }
        }
        t.profile.fingerprint(&mut f);
        faas_cfg.fingerprint(&mut f);
        self.cfg.provider.storage.fingerprint(&mut f);
        f.write_f64(self.cfg.margin_for(t.profile.checkpoint_bytes));
        f.digest()
    }

    /// Applies the objective to pick a platform. `price_fn` is the task's
    /// function tier's hourly price (the base price when unsized).
    fn choose(
        &self,
        factors: &ModelFactors,
        t_vm: f64,
        t_sl_est: f64,
        components: usize,
        probe_busy_secs: f64,
        price_fn: f64,
    ) -> Platform {
        let price_vm = self.cfg.cluster.instance.price_per_hour;
        // Marginal expense reasoning: the cluster bills for the whole
        // run, so moving a task to serverless only saves money when the
        // node time it frees (makespan reduction × cluster size) is worth
        // more than the function bill.
        let fn_cost = components as f64 * probe_busy_secs / 3600.0 * price_fn;
        let saved_node_cost =
            (t_vm - t_sl_est).max(0.0) / 3600.0 * self.cfg.cluster.nodes as f64 * price_vm;
        let _ = factors;
        let serverless_wins = match self.objective {
            Objective::ExecutionTime => t_sl_est < t_vm,
            Objective::Expense => fn_cost < saved_node_cost,
            Objective::Both => {
                t_sl_est < t_vm && fn_cost < 2.0 * saved_node_cost.max(f64::MIN_POSITIVE)
            }
        };
        if serverless_wins {
            Platform::Serverless
        } else {
            Platform::VmCluster
        }
    }

    /// Runs one component of task `r` in a serverless function (its own
    /// fresh environment, on the task's function tier). Checkpoint chains
    /// for over-cap tasks are included, so the probe already prices the
    /// time-cap workaround.
    fn run_probe(&self, workflow: &Workflow, r: TaskRef, faas_cfg: &FaasConfig) -> ProbeEntry {
        let t = workflow.task(r);
        // A shared probe stands in for its family wherever its tasks sit,
        // so it uses a fixed seed offset; per-task probes keep their
        // phase-derived stream.
        let (offset, label) = match self.probe_identity(t) {
            Some(family) => (0x51ed2701, format!("probe:{family}")),
            None => (
                0x51ed2701 ^ (r.phase as u64) << 8,
                format!("probe:{}", t.name),
            ),
        };
        // Non-base tiers probe on a platform built from the tier config;
        // the base tier keeps the exact environment of prior releases.
        let tuned;
        let cfg = if *faas_cfg == self.cfg.provider.faas {
            &self.cfg
        } else {
            let mut c = self.cfg.clone();
            c.provider.faas = faas_cfg.clone();
            tuned = c;
            &tuned
        };
        let mut env = CloudEnv::with_seed_offset(cfg, offset);
        env.store
            .register_object(env.sim.now(), "probe-input", t.profile.input_bytes);
        let spec = FaasTaskSpec {
            label,
            components: 1,
            compute_secs: t.profile.compute_secs_serverless(),
            input_bytes: t.profile.input_bytes,
            output_bytes: t.profile.output_bytes,
            io_requests: 1,
            checkpoint_bytes: t.profile.checkpoint_bytes,
            jitter: t.profile.runtime_jitter,
            memory_gb: t.profile.memory_gb,
            checkpoint_margin_secs: self.cfg.margin_for(t.profile.checkpoint_bytes),
        };
        let stats = run_faas_batch(&mut env, spec);
        ProbeEntry {
            probe_secs: stats.makespan().as_secs(),
            probe_busy_secs: env.faas.function_seconds(),
        }
    }

    /// Scoped phase profile, memoized when a cache is attached.
    fn phase_profile(&self, workflow: &Workflow, phase_idx: usize) -> PhaseProfileEntry {
        match &self.cache {
            Some(c) => {
                let computed = Cell::new(false);
                let e = c.phase_profile(self.phase_profile_key(workflow, phase_idx), || {
                    computed.set(true);
                    self.run_phase_profile(workflow, phase_idx)
                });
                self.trace_cache(&format!("phase-profile:{phase_idx}"), computed.get());
                e
            }
            None => self.run_phase_profile(workflow, phase_idx),
        }
    }

    /// Cache key for one scoped phase profile: seed + cluster shape + the
    /// phase's task content the all-VM passes can observe — name (the
    /// jitter stream label), components, profile, and whether the task
    /// ingests the initial dataset (deps empty ⇒ master NIC, else fabric).
    /// The phase *index* is deliberately absent: scoped times are
    /// start-time-translation invariant, so identical phases share one
    /// entry wherever they sit.
    fn phase_profile_key(&self, workflow: &Workflow, phase_idx: usize) -> u128 {
        let mut f = Fingerprinter::new("pdc-phase-profile-v1");
        f.write_u64(self.cfg.seed);
        self.cfg.cluster.fingerprint(&mut f);
        let phase = &workflow.phases[phase_idx];
        f.write_usize(phase.tasks.len());
        for t in &phase.tasks {
            f.write_str(&t.name);
            f.write_usize(t.components);
            t.profile.fingerprint(&mut f);
            f.write_bool(t.deps.is_empty());
        }
        f.digest()
    }

    /// Profiles `workflow.phases[phase_idx]` in isolation: its tasks start
    /// together at t = 0 on an otherwise idle cluster — exactly the state
    /// an all-VM pass reaches at the phase's barrier — once per candidate
    /// sub-cluster split, keeping each task's best time (the same reduction
    /// as [`run_vm_profile`](Self::run_vm_profile)). Inputs route as the
    /// full pass routes them: master NIC for initial tasks, fabric
    /// otherwise; outputs to the fabric.
    fn run_phase_profile(&self, workflow: &Workflow, phase_idx: usize) -> PhaseProfileEntry {
        let phase = &workflow.phases[phase_idx];
        let n = phase.tasks.len();
        let mut task_secs = vec![f64::INFINITY; n];
        let mut expense = Expense::default();
        for k in [1usize, 2, 4] {
            if k > self.cfg.cluster.nodes {
                continue;
            }
            let tuned = self.cfg.clone().with_subclusters(k);
            let mut env = CloudEnv::with_seed_offset(&tuned, 0x9e3779b9);
            env.cluster.start_billing(env.sim.now());
            let secs = shared(vec![0.0; n]);
            for (ti, t) in phase.tasks.iter().enumerate() {
                let r = TaskRef::new(phase_idx, ti);
                let spec = ClusterTaskSpec {
                    label: t.name.clone(),
                    components: t.components,
                    compute_secs: t.profile.compute_secs_vm,
                    input_bytes: t.profile.input_bytes,
                    output_bytes: t.profile.output_bytes,
                    io_requests: crate::exec::input_requests(workflow, r),
                    contention_coeff: t.profile.vm_local_contention,
                    memory_gb: t.profile.memory_gb,
                    jitter: t.profile.runtime_jitter,
                    input: if t.deps.is_empty() {
                        ClusterInput::Master
                    } else {
                        ClusterInput::Fabric
                    },
                    output: ClusterOutput::Fabric,
                    // The full pass hands out sub-clusters round-robin from
                    // 0 at each phase start.
                    subcluster: ti % k,
                };
                let s2 = secs.clone();
                env.cluster
                    .run_task(&mut env.sim, None, spec, move |_, stats| {
                        s2.borrow_mut()[ti] = stats.end.as_secs() - stats.start.as_secs();
                    });
            }
            env.sim.run();
            env.cluster.stop_billing(env.sim.now());
            add_expense(
                &mut expense,
                &env.meter
                    .expense(self.cfg.provider.storage.price_per_gb_month),
            );
            for (ti, &s) in secs.borrow().iter().enumerate() {
                task_secs[ti] = task_secs[ti].min(s);
            }
        }
        PhaseProfileEntry { task_secs, expense }
    }
}

/// Content digest of one task (name, components, profile, dependency
/// wiring) — the unit of phase dirtiness in [`Pdc::replan`].
fn task_digest(t: &Task) -> u128 {
    t.fingerprint_digest("pdc-replan-task-v1")
}

/// Content digest of one phase as the VM profiler can observe it — the
/// phase-alignment key of [`Pdc::replan_structural`]. Deliberately matches
/// the scoped phase profiler's key material (names, components, profiles,
/// initial-ingest flags; exact dependency refs excluded) so "matches" means
/// "would profile identically".
fn phase_content_digest(phase: &Phase) -> u128 {
    let mut f = Fingerprinter::new("pdc-structural-phase-v1");
    f.write_usize(phase.tasks.len());
    for t in &phase.tasks {
        f.write_str(&t.name);
        f.write_usize(t.components);
        t.profile.fingerprint(&mut f);
        f.write_bool(t.deps.is_empty());
    }
    f.digest()
}

/// Schedules `spec` on `env`'s FaaS platform, runs the simulation to
/// completion, and returns the batch stats (shared by the probe and
/// calibration paths, which only differ in how they build the spec).
fn run_faas_batch(env: &mut CloudEnv, spec: FaasTaskSpec) -> FaasRunStats {
    let out = shared(None);
    let o2 = out.clone();
    let faas = env.faas.clone();
    let store = env.store.clone();
    let seeds = env.seeds;
    env.sim.schedule_now(move |sim| {
        run_task_on_faas(sim, &faas, &store, spec, &seeds, move |_, stats| {
            *o2.borrow_mut() = Some(stats);
        });
    });
    env.sim.run();
    let taken = out.borrow_mut().take();
    taken.expect("FaaS batch completed")
}

/// Hybrid boundary refinement: a serverless placement forces its VM-side
/// producers to upload outputs to the store over the WAN (instead of the
/// faster master NIC) and its VM-side consumers to download the same way.
/// The per-task argmin cannot see this plan-level tax, so after the initial
/// decisions the PDC flips serverless tasks back to the cluster whenever
/// the attributable data-movement tax exceeds the task's own gain (the
/// paper's "all placement decisions... include I/O latency related to data
/// movement toward execution time").
fn refine_boundary_taxes(
    workflow: &Workflow,
    decisions: &mut [TaskDecision],
    plan: &mut PlacementPlan,
    wan_bps: f64,
    master_bps: f64,
) {
    // Seconds per byte *added* by crossing the platform boundary.
    let delta = (1.0 / wan_bps - 1.0 / master_bps).max(0.0);
    if delta == 0.0 {
        return;
    }
    // Iterate to a fixpoint (flips can remove other tasks' taxes) with a
    // worklist: a task's tax only changes when a platform in its 2-hop
    // boundary neighbourhood flips, so instead of re-evaluating every task
    // each round (quadratic on deep chains) only pending tasks are
    // re-examined. Sweeps stay in flat task order and a task is pending at
    // exactly the rounds where the dense fixpoint would have seen a changed
    // neighbourhood, so the flip order — and every recorded tax value — is
    // identical to the dense sweep's.
    let arena = workflow.arena();
    let n = decisions.len();
    debug_assert_eq!(n, arena.task_count());
    let mut pending = vec![true; n];
    for _ in 0..workflow.task_count() {
        let mut flipped = false;
        for i in 0..n {
            if !std::mem::take(&mut pending[i]) {
                continue;
            }
            let d = &mut decisions[i];
            debug_assert_eq!(d.task, arena.task_ref(i));
            if d.platform != Platform::Serverless {
                continue;
            }
            let (r, gain) = (d.task, d.t_vm_secs - d.t_serverless_est_secs);
            let tax = boundary_tax(workflow, plan, r, delta);
            if tax > gain {
                plan.set(r, Platform::VmCluster);
                d.platform = Platform::VmCluster;
                d.forced_vm_reason = Some(format!(
                    "hybrid boundary tax ({tax:.1} s of extra WAN data movement) \
                     outweighs the serverless gain ({gain:.1} s)"
                ));
                flipped = true;
                // The flip changes the taxes of r's producers and consumers
                // — and of *their* consumers/producers, because the
                // "only serverless sibling" checks look one hop further.
                for &(p, _) in arena.producers(i) {
                    pending[p as usize] = true;
                    for &(c, _) in arena.consumers(arena.task_ref(p as usize)) {
                        if let Some(cf) = arena.flat(c) {
                            pending[cf] = true;
                        }
                    }
                }
                for &(c, _) in arena.consumers(r) {
                    if let Some(cf) = arena.flat(c) {
                        pending[cf] = true;
                        for &(p, _) in arena.producers(cf) {
                            pending[p as usize] = true;
                        }
                    }
                }
            }
        }
        if !flipped {
            break;
        }
    }
}

/// The WAN data-movement seconds attributable to `r` being serverless:
/// uploads by VM producers whose only serverless consumer is `r`, plus
/// downloads by VM consumers whose only store-located producer is `r`.
fn boundary_tax(
    workflow: &Workflow,
    plan: &PlacementPlan,
    r: TaskRef,
    delta_secs_per_byte: f64,
) -> f64 {
    // The refinement only runs on plans the decision loop fully populated.
    let platform_of = |t: TaskRef| plan.platform(t).expect("plan covers workflow");
    let mut extra_bytes = 0.0;
    // Producer side.
    for dep in &workflow.task(r).deps {
        let p = dep.producer;
        if platform_of(p) != Platform::VmCluster {
            continue;
        }
        let other_serverless_consumer = workflow
            .consumers(p)
            .iter()
            .any(|&(c, _)| c != r && platform_of(c) == Platform::Serverless);
        if !other_serverless_consumer {
            let pt = workflow.task(p);
            extra_bytes += pt.components as f64 * pt.profile.output_bytes;
        }
    }
    // Consumer side.
    for &(c, _) in workflow.consumers(r) {
        if platform_of(c) != Platform::VmCluster {
            continue;
        }
        let other_store_producer = workflow
            .task(c)
            .deps
            .iter()
            .any(|dep| dep.producer != r && platform_of(dep.producer) == Platform::Serverless);
        if !other_store_producer {
            let ct = workflow.task(c);
            extra_bytes += ct.components as f64 * ct.profile.input_bytes;
        }
    }
    extra_bytes * delta_secs_per_byte
}

fn add_expense(total: &mut Expense, e: &Expense) {
    total.vm_dollars += e.vm_dollars;
    total.faas_dollars += e.faas_dollars;
    total.storage_dollars += e.storage_dollars;
}

/// Eq. 1 with an aggregate-I/O term: the estimated wall time of running
/// `components` copies on the serverless platform, given a measured
/// single-component probe.
///
/// The concurrency overhead is the larger of the scheduler-ramp term
/// (`α · max(0, C − burst)`) and the aggregate store-bandwidth window
/// (`C · io_bytes / store_bps` — C components cannot collectively move
/// their bytes faster than the store allows); the probe's own serial time
/// and the paper's conservative cold-start pad are added on top.
pub fn estimate_serverless_time(
    factors: &ModelFactors,
    components: usize,
    probe_secs: f64,
    io_bytes_per_component: f64,
    conservative_cold_start_secs: f64,
) -> f64 {
    let extra = (components.saturating_sub(factors.burst)) as f64;
    let ramp = factors.alpha * extra;
    let io_floor = components as f64 * io_bytes_per_component / factors.store_bps;
    ramp.max(io_floor) + probe_secs + conservative_cold_start_secs
}

/// Fits the paper's Eq. 2 exponent γ from a measured whole-task VM time and
/// a single-component VM runtime: `T_VM = R^(γ·C)` ⇒
/// `γ = ln(T_VM) / (C · ln R)`, clamped to ≥ 1 and guarded for the
/// degenerate bases where the form is undefined.
pub fn fit_gamma(t_vm: f64, r_single: f64, components: usize) -> f64 {
    if r_single <= 1.0 || t_vm <= r_single || components == 0 {
        return 1.0;
    }
    let g = t_vm.ln() / (components as f64 * r_single.ln());
    g.max(1.0)
}

/// Calibrates α, β, and the store bandwidth with no-op micro-batches
/// (paper: "Mashup's PDC autonomously determines all the factors").
pub fn calibrate(cfg: &MashupConfig) -> ModelFactors {
    let burst = cfg.provider.faas.burst_capacity;
    // Two batch sizes spanning the burst knee.
    let c1 = burst.max(4);
    let c2 = burst * 4 + 64;
    let s1 = run_noop_batch(cfg, c1, 0.5, 0.0);
    let s2 = run_noop_batch(cfg, c2, 0.5, 0.0);
    let alpha = ((s2.scaling - s1.scaling) / (c2 - c1) as f64).max(0.0);
    // β: measured mean start latency of the calibration functions.
    let beta = s1.mean_start_latency;
    // Store bandwidth: one wide, byte-heavy batch designed to *deeply*
    // saturate the aggregate data plane; bandwidth ≈ total bytes over the
    // I/O window. The bytes per function are deliberately large — when the
    // drain time dwarfs the scheduler stagger, the window is simply the
    // makespan minus the serial start/compute parts.
    let io_comps = (burst * 4).max(128);
    let io_bytes = 1.0e9;
    let io_batch = run_noop_batch(cfg, io_comps, 0.1, io_bytes);
    let io_window = (io_batch.makespan - io_batch.mean_start_latency - 0.1).max(0.1);
    let store_bps = io_comps as f64 * io_bytes / io_window;
    // γ needs per-workflow task measurements; start at the neutral 1 and
    // let `fit_gamma` refine per task where the form applies.
    ModelFactors {
        alpha,
        beta,
        gamma: 1.0,
        store_bps,
        burst,
    }
}

struct BatchStats {
    scaling: f64,
    mean_start_latency: f64,
    makespan: f64,
}

fn run_noop_batch(
    cfg: &MashupConfig,
    components: usize,
    compute: f64,
    io_bytes: f64,
) -> BatchStats {
    let mut env = CloudEnv::with_seed_offset(cfg, 0xCA11B7A7E ^ components as u64);
    env.store
        .register_object(env.sim.now(), "calib-input", io_bytes);
    let spec = FaasTaskSpec {
        label: format!("calibration-{components}"),
        components,
        compute_secs: compute,
        input_bytes: io_bytes,
        output_bytes: 0.0,
        io_requests: 1,
        checkpoint_bytes: 0.0,
        jitter: 0.0,
        memory_gb: 0.1,
        checkpoint_margin_secs: cfg.checkpoint_margin_secs,
    };
    let stats = run_faas_batch(&mut env, spec);
    BatchStats {
        scaling: stats.scaling_secs(),
        mean_start_latency: stats.cold_start_secs / stats.n_cold.max(1) as f64,
        makespan: stats.makespan().as_secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> MashupConfig {
        MashupConfig::aws(nodes)
    }

    #[test]
    fn calibration_recovers_platform_constants() {
        let c = cfg(4);
        let f = calibrate(&c);
        // α should approximate 1/ramp_per_sec = 1/12 ≈ 0.083.
        let expected_alpha = 1.0 / c.provider.faas.ramp_per_sec;
        assert!(
            (f.alpha - expected_alpha).abs() < expected_alpha * 0.5,
            "alpha {} vs expected {expected_alpha}",
            f.alpha
        );
        // β should sit inside the cold-start range.
        let (lo, hi) = c.provider.faas.cold_start_secs;
        assert!(f.beta >= lo * 0.5 && f.beta <= hi * 1.5, "beta {}", f.beta);
        assert!(f.store_bps > 0.0);
    }

    #[test]
    fn estimate_grows_linearly_in_components() {
        let f = ModelFactors {
            alpha: 0.1,
            beta: 1.0,
            gamma: 1.0,
            store_bps: 1e12,
            burst: 10,
        };
        let e1 = estimate_serverless_time(&f, 10, 5.0, 0.0, 2.0);
        let e2 = estimate_serverless_time(&f, 110, 5.0, 0.0, 2.0);
        assert!((e2 - e1 - 10.0).abs() < 1e-9); // 100 extra comps × 0.1
    }

    #[test]
    fn io_floor_dominates_for_io_heavy_tasks() {
        let f = ModelFactors {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            store_bps: 1e9,
            burst: 1000,
        };
        // 600 comps × 4e8 bytes = 240 GB over 1 GB/s = a 240 s window on
        // top of the 10 s probe and the 2 s conservative pad.
        let e = estimate_serverless_time(&f, 600, 10.0, 4.0e8, 2.0);
        assert!((e - 252.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_fit_is_clamped_and_sane() {
        assert_eq!(fit_gamma(10.0, 0.5, 8), 1.0); // degenerate base
        assert_eq!(fit_gamma(1.0, 2.0, 8), 1.0); // t below single runtime
        let g = fit_gamma(1000.0, 2.0, 4);
        assert!(g >= 1.0);
        // T = R^(γC): check round trip.
        let t = 2.0f64.powf(g * 4.0);
        assert!((t - 1000.0).abs() < 1.0);
    }

    #[test]
    fn pdc_places_wide_cheap_tasks_serverless_on_small_clusters() {
        // 256 one-second-ish components on a 2-node cluster: waves kill the
        // VM run; serverless wins.
        let mut b = mashup_dag::WorkflowBuilder::new("wide");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "wide",
            256,
            mashup_dag::TaskProfile::trivial().compute(10.0),
        ));
        let w = b.build().expect("valid");
        let report = Pdc::new(cfg(2)).decide(&w);
        assert_eq!(report.decisions.len(), 1);
        assert_eq!(report.decisions[0].platform, Platform::Serverless);
        assert!(report.plan.covers(&w));
    }

    #[test]
    fn replan_capacity_is_identity_at_full_strength_and_monotone_under_loss() {
        // A borderline task: 96 ten-second components on 4 nodes sit on the
        // VM side, but halving the cluster doubles the wave count and flips
        // the comparison toward serverless.
        let mut b = mashup_dag::WorkflowBuilder::new("replan");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "border",
            96,
            mashup_dag::TaskProfile::trivial().compute(10.0),
        ));
        let w = b.build().expect("valid");
        let pdc = Pdc::new(cfg(4));
        let base = pdc.decide(&w);

        let same = pdc.replan_capacity(&base, &w, 4);
        for (a, b) in base.decisions.iter().zip(&same.decisions) {
            assert_eq!(a.platform, b.platform);
            assert!((a.t_vm_secs - b.t_vm_secs).abs() < 1e-12);
        }

        let reduced = pdc.replan_capacity(&base, &w, 1);
        assert!(reduced.plan.covers(&w));
        let quadrupled = base.decisions[0].t_vm_secs * 4.0;
        assert!((reduced.decisions[0].t_vm_secs - quadrupled).abs() < 1e-9);
        // Cluster times only grow under capacity loss, so no task moves
        // store-ward: every VM placement in `reduced` was VM in `base`.
        for (a, b) in base.decisions.iter().zip(&reduced.decisions) {
            if b.platform == Platform::VmCluster && b.forced_vm_reason.is_none() {
                assert_eq!(a.platform, Platform::VmCluster);
            }
        }
    }

    #[test]
    fn replan_capacity_preserves_structural_forcings() {
        let mut b = mashup_dag::WorkflowBuilder::new("fat-replan");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "fat",
            64,
            mashup_dag::TaskProfile::trivial()
                .compute(10.0)
                .memory(16.0),
        ));
        let w = b.build().expect("valid");
        let pdc = Pdc::new(cfg(4));
        let base = pdc.decide(&w);
        assert!(base.decisions[0].forced_vm_reason.is_some());
        // Even at one surviving node, a task that cannot fit in function
        // memory stays on the cluster.
        let reduced = pdc.replan_capacity(&base, &w, 1);
        assert_eq!(reduced.decisions[0].platform, Platform::VmCluster);
        assert!(reduced.decisions[0].forced_vm_reason.is_some());
    }

    #[test]
    fn pdc_places_single_long_tasks_on_vm() {
        let mut b = mashup_dag::WorkflowBuilder::new("single");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "solo",
            1,
            mashup_dag::TaskProfile::trivial()
                .compute(300.0)
                .slowdown(1.2),
        ));
        let w = b.build().expect("valid");
        let report = Pdc::new(cfg(8)).decide(&w);
        assert_eq!(report.decisions[0].platform, Platform::VmCluster);
    }

    #[test]
    fn memory_rule_forces_vm() {
        let mut b = mashup_dag::WorkflowBuilder::new("fat");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "fat",
            64,
            mashup_dag::TaskProfile::trivial()
                .compute(10.0)
                .memory(16.0),
        ));
        let w = b.build().expect("valid");
        let report = Pdc::new(cfg(2)).decide(&w);
        let d = &report.decisions[0];
        assert_eq!(d.platform, Platform::VmCluster);
        assert!(d
            .forced_vm_reason
            .as_deref()
            .expect("forced")
            .contains("memory"));
    }

    #[test]
    fn short_task_rule_and_recurring_exception() {
        let mk = |recurring: bool| {
            let mut b = mashup_dag::WorkflowBuilder::new("short");
            b.initial_input_bytes(1e6);
            b.begin_phase();
            b.add_task(mashup_dag::Task::new(
                "tiny",
                512,
                mashup_dag::TaskProfile::trivial()
                    .compute(0.9)
                    .memory(1.0)
                    .contention(2.0)
                    .recurring(recurring),
            ));
            b.build().expect("valid")
        };
        // Without the exception: forced to VM despite huge concurrency.
        let plain = Pdc::new(cfg(2)).decide(&mk(false));
        assert_eq!(plain.decisions[0].platform, Platform::VmCluster);
        assert!(plain.decisions[0].forced_vm_reason.is_some());
        // Recurring + high concurrency: the exception lets the comparison
        // happen — and 512 sub-second components on 2 nodes favour
        // serverless.
        let rec = Pdc::new(cfg(2)).decide(&mk(true));
        assert!(rec.decisions[0].forced_vm_reason.is_none());
        assert_eq!(rec.decisions[0].platform, Platform::Serverless);
    }

    #[test]
    fn expense_objective_is_more_conservative_than_time() {
        // A wide task that is moderately faster on serverless: the time
        // objective takes it, but the function bill exceeds the node time
        // it frees, so the expense objective keeps it on the cluster.
        let mut b = mashup_dag::WorkflowBuilder::new("tradeoff");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "t",
            512,
            mashup_dag::TaskProfile::trivial().compute(20.0),
        ));
        let w = b.build().expect("valid");
        let time_plan = Pdc::new(cfg(8)).decide(&w);
        let cost_plan = Pdc::new(cfg(8))
            .with_objective(Objective::Expense)
            .decide(&w);
        // 512 comps on 16 slots: serverless is much faster (time says S),
        // but 512 function-bills outweigh 8 nodes' saved seconds only if
        // the saving is large — check the decisions diverge as computed.
        assert_eq!(time_plan.decisions[0].platform, Platform::Serverless);
        let d = &cost_plan.decisions[0];
        let fn_cost = d.components as f64 * d.probe_busy_secs / 3600.0 * 0.12;
        let saved = (d.t_vm_secs - d.t_serverless_est_secs).max(0.0) / 3600.0 * 8.0 * 0.12;
        let expect_serverless = fn_cost < saved;
        assert_eq!(
            d.platform == Platform::Serverless,
            expect_serverless,
            "decision must follow the marginal-cost rule: fn ${fn_cost:.4} vs saved ${saved:.4}"
        );
    }

    /// A deep, wide two-family workflow for the replan tests: `phases`
    /// phases of `width` serverless-friendly tasks each (generous compute
    /// so decisions sit far from every rule threshold).
    fn deep_workflow(phases: usize, width: usize, edited: Option<TaskRef>) -> Workflow {
        let mut b = mashup_dag::WorkflowBuilder::new("deep");
        b.initial_input_bytes(1e6);
        let mut prev: Vec<TaskRef> = Vec::new();
        for p in 0..phases {
            b.begin_phase();
            let mut cur = Vec::with_capacity(width);
            for i in 0..width {
                let r = TaskRef::new(p, i);
                let compute = if edited == Some(r) { 80.0 } else { 40.0 };
                let t = mashup_dag::Task::new(
                    format!("t{p}x{i}"),
                    64,
                    mashup_dag::TaskProfile::trivial()
                        .compute(compute)
                        .family("stencil"),
                );
                let added = b.add_task(t);
                if let Some(&up) = prev.get(i) {
                    b.depend(added, up, mashup_dag::DependencyPattern::OneToOne);
                }
                cur.push(added);
            }
            prev = cur;
        }
        b.build().expect("valid")
    }

    #[test]
    fn replan_matches_cold_decide_after_single_task_edit() {
        let c = cfg(4);
        let old = deep_workflow(4, 3, None);
        let new = deep_workflow(4, 3, Some(TaskRef::new(2, 1)));
        let pdc = Pdc::new(c);
        let prev = pdc.decide(&old);
        let (incremental, stats) = pdc.replan(&old, &prev, &new);
        let cold = pdc.decide(&new);
        assert!(!stats.full_replan);
        assert_eq!(stats.dirty_phases, 1);
        assert_eq!(stats.reused_decisions, 9);
        assert_eq!(stats.replanned_tasks, 3);
        // Same platform per task as a from-scratch decision (scoped phase
        // times are translation-equal to the full pass's, so only f64
        // rounding of the time origin could differ — far below any rule
        // threshold here).
        for (a, b) in incremental.decisions.iter().zip(&cold.decisions) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.platform, b.platform, "task {}", a.name);
        }
        assert!(incremental.plan.covers(&new));
    }

    #[test]
    fn replan_reprofiles_only_the_dirty_phase_via_cache_stats() {
        let c = cfg(4);
        let old = deep_workflow(5, 4, None);
        let new = deep_workflow(5, 4, Some(TaskRef::new(3, 0)));
        let cache = std::sync::Arc::new(PlanCache::new());
        let pdc = Pdc::new(c).with_cache(cache.clone());
        let prev = pdc.decide(&old);
        let before = cache.stats();
        assert_eq!(before.phase_profiles.misses, 0);

        let (_, stats) = pdc.replan(&old, &prev, &new);
        let after = cache.stats();
        assert_eq!(stats.dirty_phases, 1);
        // One scoped phase profile computed; calibration came from the
        // cache; the untouched phases ran no profiling at all.
        assert_eq!(after.phase_profiles.misses, 1);
        assert_eq!(after.vm_profile.misses, before.vm_profile.misses);
        assert_eq!(after.calibration.hits, before.calibration.hits + 1);
        // Only the dirty phase's tasks probed: the edited task's profile
        // changed (fresh probe key) while its three siblings reuse theirs.
        assert_eq!(after.probes.misses, before.probes.misses + 1);

        // Replanning the same edit again is pure cache replay.
        let (_, stats2) = pdc.replan(&old, &prev, &new);
        let again = cache.stats();
        assert_eq!(stats2.dirty_phases, 1);
        assert_eq!(again.phase_profiles.misses, after.phase_profiles.misses);
        assert!(again.phase_profiles.hits > after.phase_profiles.hits);
    }

    #[test]
    fn replan_falls_back_to_full_decide_on_structure_change() {
        let c = cfg(4);
        let old = deep_workflow(3, 2, None);
        let new = deep_workflow(4, 2, None);
        let pdc = Pdc::new(c);
        let prev = pdc.decide(&old);
        let (report, stats) = pdc.replan(&old, &prev, &new);
        assert!(stats.full_replan);
        assert_eq!(stats.replanned_tasks, new.task_count());
        assert_eq!(report, pdc.decide(&new));
    }

    #[test]
    fn probe_sharing_collapses_same_family_probes() {
        let c = cfg(4);
        let w = deep_workflow(3, 4, None); // 12 tasks, one code family
        let cache = std::sync::Arc::new(PlanCache::new());
        let shared = Pdc::new(c.clone())
            .with_probe_sharing(true)
            .with_cache(cache.clone());
        let report = shared.decide(&w);
        // One probe computed for the whole family, eleven hits.
        assert_eq!(cache.stats().probes.misses, 1);
        assert_eq!(cache.stats().probes.hits, 11);
        // Decisions still cover the workflow and carry the shared probe.
        assert!(report.plan.covers(&w));
        let p0 = report.decisions[0].probe_secs;
        assert!(report.decisions.iter().all(|d| d.probe_secs == p0));
    }

    #[test]
    fn profiling_expense_is_recorded() {
        let mut b = mashup_dag::WorkflowBuilder::new("w");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        b.add_task(mashup_dag::Task::new(
            "t",
            8,
            mashup_dag::TaskProfile::trivial().compute(5.0),
        ));
        let w = b.build().expect("valid");
        let report = Pdc::new(cfg(4)).decide(&w);
        assert!(report.profiling_expense.vm_dollars > 0.0);
        assert!(report.profiling_vm_makespan_secs > 0.0);
    }
}
