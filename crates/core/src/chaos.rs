//! Chaos configuration: a seeded fault schedule plus the online
//! replanning controller's switches.
//!
//! A [`ChaosSpec`] attaches to [`MashupConfig`](crate::MashupConfig) and is
//! consumed by the executor: the [`FaultPlan`] is installed into the run's
//! environment (spot pools, storage fault windows), and — when `adaptive`
//! is on — the executor's phase-boundary controller watches the flight
//! recorder's view of the run (surviving capacity, per-phase elapsed time
//! against the plan's envelope) and invokes
//! [`Pdc::replan_capacity`](crate::Pdc::replan_capacity) to re-place the
//! remaining subgraph.
//!
//! Determinism: the spec carries no hidden state — every fault comes from
//! the seeded plan, and the controller draws no randomness of its own — so
//! a chaos run is exactly as reproducible as a fault-free one. `None`
//! chaos (or an [empty](FaultPlan::empty) plan with the controller off) is
//! guaranteed zero-impact: no extra events, no extra RNG draws, byte-
//! identical traces.

use mashup_cloud::{FaultPlan, FaultProfile};
use serde::{Deserialize, Serialize};

/// Chaos configuration for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// The deterministic fault schedule to install into the environment.
    pub plan: FaultPlan,
    /// Run the online replanning controller. Off = the static plan rides
    /// out the faults (the paper's baseline behaviour under chaos).
    pub adaptive: bool,
    /// Straggler threshold: a finished phase whose elapsed time exceeds
    /// this factor times its planned envelope triggers a replan. `0.0`
    /// disables straggler detection (capacity loss still triggers).
    pub straggler_factor: f64,
}

impl ChaosSpec {
    /// A spec that installs `plan` with the controller off.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosSpec {
            plan,
            adaptive: false,
            straggler_factor: 0.0,
        }
    }

    /// Generates a spec from a seed and fault profile for a cluster of
    /// `nodes` nodes (see [`FaultPlan::generate`]); controller off.
    pub fn generated(seed: u64, profile: &FaultProfile, nodes: usize, price_per_hour: f64) -> Self {
        Self::new(FaultPlan::generate(seed, profile, nodes, price_per_hour))
    }

    /// Builder-style: turns the online replanning controller on.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Builder-style: enables straggler detection at `factor` times the
    /// planned per-phase envelope (values below 1.0 are meaningless and
    /// treated as disabled).
    pub fn with_straggler_factor(mut self, factor: f64) -> Self {
        self.straggler_factor = factor;
        self
    }

    /// True when installing this spec changes nothing about a run: no
    /// faults scheduled and the controller off.
    pub fn is_inert(&self) -> bool {
        self.plan.is_empty() && !self.adaptive
    }

    /// Straggler detection active?
    pub fn detects_stragglers(&self) -> bool {
        self.straggler_factor >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inertness_and_builders() {
        let spec = ChaosSpec::new(FaultPlan::empty(7));
        assert!(spec.is_inert());
        assert!(!spec.detects_stragglers());
        let spec = spec.with_adaptive(true).with_straggler_factor(2.0);
        assert!(!spec.is_inert());
        assert!(spec.detects_stragglers());
        assert_eq!(spec.plan.seed, 7);
    }

    #[test]
    fn generated_spec_carries_the_seeded_plan() {
        let profile = FaultProfile::preemption(100.0);
        let a = ChaosSpec::generated(11, &profile, 8, 0.12);
        let b = ChaosSpec::generated(11, &profile, 8, 0.12);
        assert_eq!(a, b);
        assert!(a.plan.has_preemptions());
    }

    #[test]
    fn spec_serde_round_trips() {
        let spec = ChaosSpec::generated(3, &FaultProfile::mixed(50.0), 4, 0.12)
            .with_adaptive(true)
            .with_straggler_factor(3.0);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: ChaosSpec = serde_json::from_str(&json).expect("parse");
        assert_eq!(spec, back);
    }
}
