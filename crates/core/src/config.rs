//! Mashup engine configuration and the simulated cloud environment.

use mashup_cloud::{
    ClusterConfig, CostMeter, FaasPlatform, InstanceType, ObjectStore, ProviderPreset, VmCluster,
};
use mashup_sim::{SeedSource, Simulation, Tracer};
use serde::{Deserialize, Serialize};

/// Everything Mashup needs to know about the target environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MashupConfig {
    /// Provider constants (FaaS + storage).
    pub provider: ProviderPreset,
    /// VM cluster shape.
    pub cluster: ClusterConfig,
    /// Base seed for all stochastic elements.
    pub seed: u64,
    /// Seconds before the FaaS deadline at which checkpoints are taken
    /// (paper: 30 s). Widened automatically per task when the checkpoint
    /// itself needs longer to write.
    pub checkpoint_margin_secs: f64,
    /// Pre-warm serverless tasks of the next phase while the current phase
    /// runs (§3: "Mashup actively pre-warms the task by prefetching").
    pub prewarm: bool,
    /// Maximum number of microVMs pre-warmed per task.
    pub prewarm_cap: usize,
    /// Conservative cold-start seconds always added to serverless estimates
    /// during PDC decision-making (paper: 2 s).
    pub conservative_cold_start_secs: f64,
    /// Tasks with per-component serverless runtime below this threshold are
    /// placed on the VM cluster unless the recurring-task exception applies
    /// (paper: 1 s).
    pub short_task_threshold_secs: f64,
}

impl MashupConfig {
    /// AWS-like defaults on `nodes` r5.large nodes (the paper's main
    /// configuration).
    pub fn aws(nodes: usize) -> Self {
        MashupConfig {
            provider: ProviderPreset::aws_like(),
            cluster: ClusterConfig::new(InstanceType::r5_large(), nodes),
            seed: 42,
            checkpoint_margin_secs: 30.0,
            prewarm: true,
            prewarm_cap: 256,
            conservative_cold_start_secs: 2.0,
            short_task_threshold_secs: 1.0,
        }
    }

    /// Same but on the *cheap* VM family (m5.large).
    pub fn aws_cheap(nodes: usize) -> Self {
        let mut c = Self::aws(nodes);
        c.cluster = ClusterConfig::new(InstanceType::m5_large(), nodes);
        c
    }

    /// Same but on the *expensive* VM family (r5b.large).
    pub fn aws_expensive(nodes: usize) -> Self {
        let mut c = Self::aws(nodes);
        c.cluster = ClusterConfig::new(InstanceType::r5b_large(), nodes);
        c
    }

    /// GCP-like provider on `nodes` default nodes (§5 portability study).
    pub fn gcp(nodes: usize) -> Self {
        let mut c = Self::aws(nodes);
        c.provider = ProviderPreset::gcp_like();
        c
    }

    /// Builder-style: overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: splits the cluster into `k` sub-clusters.
    pub fn with_subclusters(mut self, k: usize) -> Self {
        self.cluster = self.cluster.with_subclusters(k);
        self
    }

    /// The effective checkpoint margin for a task with `checkpoint_bytes`
    /// of state: at least the configured margin, widened so the checkpoint
    /// write (at the per-function bandwidth) fits with 20 % headroom.
    pub fn margin_for(&self, checkpoint_bytes: f64) -> f64 {
        let write_secs = checkpoint_bytes / self.provider.faas.per_function_bps;
        self.checkpoint_margin_secs.max(write_secs * 1.2)
    }
}

/// One instantiated simulated environment: engine + cluster + FaaS + store
/// sharing a cost meter. Each workflow execution gets a fresh environment so
/// runs never contaminate each other.
pub struct CloudEnv {
    /// The discrete-event engine.
    pub sim: Simulation,
    /// The VM cluster.
    pub cluster: VmCluster,
    /// The serverless platform.
    pub faas: FaasPlatform,
    /// The object store.
    pub store: ObjectStore,
    /// The shared expense meter.
    pub meter: CostMeter,
    /// Seed source for executors.
    pub seeds: SeedSource,
}

impl CloudEnv {
    /// Builds a fresh environment from `cfg`.
    pub fn new(cfg: &MashupConfig) -> Self {
        let meter = CostMeter::new();
        let seeds = SeedSource::new(cfg.seed);
        CloudEnv {
            sim: Simulation::new(),
            cluster: VmCluster::new(cfg.cluster.clone(), meter.clone(), &seeds),
            faas: FaasPlatform::new(cfg.provider.faas.clone(), meter.clone(), &seeds),
            store: ObjectStore::new(cfg.provider.storage.clone(), meter.clone(), &seeds),
            meter,
            seeds,
        }
    }

    /// Builds an environment whose stochastic streams differ from the
    /// default (used for honest PDC profiling: the profiling run must not
    /// share jitter draws with the production run).
    pub fn with_seed_offset(cfg: &MashupConfig, offset: u64) -> Self {
        let mut shifted = cfg.clone();
        shifted.seed = cfg.seed.wrapping_add(offset);
        Self::new(&shifted)
    }

    /// Attaches one flight recorder to every mechanism in the environment
    /// (engine, cluster, platform, store, and their links). Emission never
    /// touches simulated state, so a traced run is byte-identical to an
    /// untraced one.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.sim.set_tracer(tracer.clone());
        self.cluster.set_tracer(tracer.clone());
        self.faas.set_tracer(tracer.clone());
        self.store.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_places() {
        let base = MashupConfig::aws(48);
        let cheap = MashupConfig::aws_cheap(48);
        let exp = MashupConfig::aws_expensive(48);
        let gcp = MashupConfig::gcp(48);
        assert_eq!(base.cluster.instance.name, "r5.large");
        assert_eq!(cheap.cluster.instance.name, "m5.large");
        assert_eq!(exp.cluster.instance.name, "r5b.large");
        assert_eq!(gcp.provider.name, "gcp-like");
        assert_eq!(base.cluster.nodes, 48);
    }

    #[test]
    fn margin_widens_for_large_checkpoints() {
        let cfg = MashupConfig::aws(4);
        assert_eq!(cfg.margin_for(0.0), 30.0);
        // 5 GB at 50 MB/s = 100 s -> margin 120 s.
        let m = cfg.margin_for(5.0e9);
        assert!((m - 120.0).abs() < 1e-9);
    }

    #[test]
    fn env_construction_is_self_consistent() {
        let cfg = MashupConfig::aws(8);
        let env = CloudEnv::new(&cfg);
        assert_eq!(env.cluster.config().nodes, 8);
        assert_eq!(env.faas.config().timeout_secs, 900.0);
        assert_eq!(env.sim.now().as_secs(), 0.0);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = MashupConfig::aws(16).with_subclusters(2);
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: MashupConfig = serde_json::from_str(&json).expect("parse");
        assert_eq!(cfg, back);
    }
}
