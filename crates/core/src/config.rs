//! Mashup engine configuration and the simulated cloud environment.

use mashup_cloud::{
    ClusterConfig, CostMeter, FaasConfig, FaasPlatform, InstanceType, ObjectStore, ProviderPreset,
    VmCluster,
};
use mashup_dag::Workflow;
use mashup_sim::{SeedSource, Simulation, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The serverless memory tiers a per-task sizing may assign (GiB). The
/// paper's single fixed function size (3 GB on AWS) is one point in this
/// menu; the Pareto search (`crate::pareto`) picks a tier per task. Derived
/// tier configs come from [`MashupConfig::faas_tier`].
pub const MEMORY_TIERS_GB: [f64; 5] = [0.5, 1.0, 2.0, 3.0, 8.0];

/// Quantizes a tier size to whole MiB for keying (f64 is not `Ord`, and
/// tiers are coarse enough that MiB granularity is lossless).
pub(crate) fn tier_key(gb: f64) -> u32 {
    (gb * 1024.0).round() as u32
}

/// Everything Mashup needs to know about the target environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MashupConfig {
    /// Provider constants (FaaS + storage).
    pub provider: ProviderPreset,
    /// VM cluster shape.
    pub cluster: ClusterConfig,
    /// Base seed for all stochastic elements.
    pub seed: u64,
    /// Seconds before the FaaS deadline at which checkpoints are taken
    /// (paper: 30 s). Widened automatically per task when the checkpoint
    /// itself needs longer to write.
    pub checkpoint_margin_secs: f64,
    /// Pre-warm serverless tasks of the next phase while the current phase
    /// runs (§3: "Mashup actively pre-warms the task by prefetching").
    pub prewarm: bool,
    /// Maximum number of microVMs pre-warmed per task.
    pub prewarm_cap: usize,
    /// Conservative cold-start seconds always added to serverless estimates
    /// during PDC decision-making (paper: 2 s).
    pub conservative_cold_start_secs: f64,
    /// Tasks with per-component serverless runtime below this threshold are
    /// placed on the VM cluster unless the recurring-task exception applies
    /// (paper: 1 s).
    pub short_task_threshold_secs: f64,
    /// Chaos schedule + online controller switches. `None` (the default)
    /// is guaranteed zero-impact: no faults, no controller, byte-identical
    /// runs. Excluded from every plan-cache key (keys fingerprint the
    /// cluster/provider sub-configs), and stripped by [`crate::Pdc::new`]
    /// so profiling environments never see faults.
    #[serde(default)]
    pub chaos: Option<crate::chaos::ChaosSpec>,
}

impl MashupConfig {
    /// AWS-like defaults on `nodes` r5.large nodes (the paper's main
    /// configuration).
    pub fn aws(nodes: usize) -> Self {
        MashupConfig {
            provider: ProviderPreset::aws_like(),
            cluster: ClusterConfig::new(InstanceType::r5_large(), nodes),
            seed: 42,
            checkpoint_margin_secs: 30.0,
            prewarm: true,
            prewarm_cap: 256,
            conservative_cold_start_secs: 2.0,
            short_task_threshold_secs: 1.0,
            chaos: None,
        }
    }

    /// Same but on the *cheap* VM family (m5.large).
    pub fn aws_cheap(nodes: usize) -> Self {
        let mut c = Self::aws(nodes);
        c.cluster = ClusterConfig::new(InstanceType::m5_large(), nodes);
        c
    }

    /// Same but on the *expensive* VM family (r5b.large).
    pub fn aws_expensive(nodes: usize) -> Self {
        let mut c = Self::aws(nodes);
        c.cluster = ClusterConfig::new(InstanceType::r5b_large(), nodes);
        c
    }

    /// GCP-like provider on `nodes` default nodes (§5 portability study).
    pub fn gcp(nodes: usize) -> Self {
        let mut c = Self::aws(nodes);
        c.provider = ProviderPreset::gcp_like();
        c
    }

    /// Builder-style: overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: splits the cluster into `k` sub-clusters.
    pub fn with_subclusters(mut self, k: usize) -> Self {
        self.cluster = self.cluster.with_subclusters(k);
        self
    }

    /// Builder-style: attaches a chaos spec (fault schedule + controller).
    pub fn with_chaos(mut self, chaos: crate::chaos::ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The effective checkpoint margin for a task with `checkpoint_bytes`
    /// of state: at least the configured margin, widened so the checkpoint
    /// write (at the per-function bandwidth) fits with 20 % headroom.
    pub fn margin_for(&self, checkpoint_bytes: f64) -> f64 {
        let write_secs = checkpoint_bytes / self.provider.faas.per_function_bps;
        self.checkpoint_margin_secs.max(write_secs * 1.2)
    }

    /// Derives the FaaS configuration for a `gb` memory tier from the
    /// provider's base function size, following the ICPS-style scaling the
    /// major providers use: price per function-hour grows linearly with
    /// memory (AWS Lambda GB-second pricing), while the vCPU share — and so
    /// effective core speed — grows sub-linearly (square root, a diminishing
    /// return that keeps the time/expense trade-off real: bigger functions
    /// are faster per invocation but cost more per unit of work). Network
    /// bandwidth and all start/timeout constants stay at the base values.
    ///
    /// Requesting the base tier returns the base config **unchanged**, so a
    /// sizing that assigns every task the base tier reproduces the unsized
    /// paper configuration bit-for-bit.
    pub fn faas_tier(&self, gb: f64) -> FaasConfig {
        let base = &self.provider.faas;
        if tier_key(gb) == tier_key(base.memory_gb) {
            return base.clone();
        }
        let ratio = gb / base.memory_gb;
        let mut cfg = base.clone();
        cfg.memory_gb = gb;
        cfg.price_per_hour = base.price_per_hour * ratio;
        cfg.core_speed = base.core_speed * ratio.sqrt();
        cfg
    }
}

/// A per-task serverless memory sizing: one tier (GiB) per flat task id of
/// a specific workflow (phase-major order, matching
/// [`TaskArena::flat`](mashup_dag::TaskArena::flat)). The unsized engine
/// behaves exactly like [`Sizing::base`]; the Pareto search explores the
/// rest of the menu.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sizing {
    /// Tier (GiB) per flat task id.
    pub tiers_gb: Vec<f64>,
}

impl Sizing {
    /// Every task at the same tier.
    pub fn uniform(workflow: &Workflow, gb: f64) -> Self {
        Sizing {
            tiers_gb: vec![gb; workflow.task_count()],
        }
    }

    /// Every task at the provider's base function size — semantically the
    /// unsized engine.
    pub fn base(cfg: &MashupConfig, workflow: &Workflow) -> Self {
        Self::uniform(workflow, cfg.provider.faas.memory_gb)
    }

    /// The tier assigned to a flat task id.
    pub fn tier(&self, flat: usize) -> f64 {
        self.tiers_gb[flat]
    }

    /// Whether every task sits at the provider's base function size.
    pub fn is_base(&self, cfg: &MashupConfig) -> bool {
        let base = tier_key(cfg.provider.faas.memory_gb);
        self.tiers_gb.iter().all(|&gb| tier_key(gb) == base)
    }

    /// The distinct tiers present, ascending (deduplicated at MiB
    /// granularity).
    pub fn distinct_tiers(&self) -> Vec<f64> {
        let mut seen: BTreeMap<u32, f64> = BTreeMap::new();
        for &gb in &self.tiers_gb {
            seen.entry(tier_key(gb)).or_insert(gb);
        }
        seen.into_values().collect()
    }
}

/// One instantiated simulated environment: engine + cluster + FaaS + store
/// sharing a cost meter. Each workflow execution gets a fresh environment so
/// runs never contaminate each other.
pub struct CloudEnv {
    /// The discrete-event engine.
    pub sim: Simulation,
    /// The VM cluster.
    pub cluster: VmCluster,
    /// The serverless platform.
    pub faas: FaasPlatform,
    /// The object store.
    pub store: ObjectStore,
    /// The shared expense meter.
    pub meter: CostMeter,
    /// Seed source for executors.
    pub seeds: SeedSource,
    /// Extra FaaS platforms for non-base memory tiers, keyed by tier MiB.
    /// Empty unless the run uses per-task sizing ([`CloudEnv::provision_tiers`]);
    /// the base tier always resolves to [`CloudEnv::faas`] so an all-base
    /// sizing shares the unsized path's warm pools and billing stream.
    tier_faas: BTreeMap<u32, FaasPlatform>,
}

impl CloudEnv {
    /// Builds a fresh environment from `cfg`.
    pub fn new(cfg: &MashupConfig) -> Self {
        let meter = CostMeter::new();
        let seeds = SeedSource::new(cfg.seed);
        CloudEnv {
            sim: Simulation::new(),
            cluster: VmCluster::new(cfg.cluster.clone(), meter.clone(), &seeds),
            faas: FaasPlatform::new(cfg.provider.faas.clone(), meter.clone(), &seeds),
            store: ObjectStore::new(cfg.provider.storage.clone(), meter.clone(), &seeds),
            meter,
            seeds,
            tier_faas: BTreeMap::new(),
        }
    }

    /// Builds the extra per-tier FaaS platforms a sized run needs, one per
    /// distinct non-base tier in `sizing`. Each platform derives its
    /// stochastic streams from a tier-labelled seed child, charges the
    /// shared meter, and maintains its own warm pools (a 2 GB function
    /// cannot reuse a 0.5 GB microVM). Call before
    /// [`attach_tracer`](CloudEnv::attach_tracer) so tier platforms are
    /// traced too.
    pub fn provision_tiers(&mut self, cfg: &MashupConfig, sizing: &Sizing) {
        let base = tier_key(cfg.provider.faas.memory_gb);
        for gb in sizing.distinct_tiers() {
            let key = tier_key(gb);
            if key == base || self.tier_faas.contains_key(&key) {
                continue;
            }
            let seeds = self.seeds.child(&format!("faas-tier-{key}"));
            self.tier_faas.insert(
                key,
                FaasPlatform::new(cfg.faas_tier(gb), self.meter.clone(), &seeds),
            );
        }
    }

    /// The FaaS platform serving a memory tier: the base platform for the
    /// base tier (or any tier never provisioned), else the tier's own.
    pub fn faas_for(&self, gb: f64) -> &FaasPlatform {
        self.tier_faas.get(&tier_key(gb)).unwrap_or(&self.faas)
    }

    /// The provisioned non-base tier platforms, keyed by [`tier_key`] (the
    /// executor clones these into its event-callback handles).
    pub(crate) fn tier_platforms(&self) -> &BTreeMap<u32, FaasPlatform> {
        &self.tier_faas
    }

    /// Builds an environment whose stochastic streams differ from the
    /// default (used for honest PDC profiling: the profiling run must not
    /// share jitter draws with the production run).
    pub fn with_seed_offset(cfg: &MashupConfig, offset: u64) -> Self {
        let mut shifted = cfg.clone();
        shifted.seed = cfg.seed.wrapping_add(offset);
        Self::new(&shifted)
    }

    /// Attaches one flight recorder to every mechanism in the environment
    /// (engine, cluster, platform, store, and their links). Emission never
    /// touches simulated state, so a traced run is byte-identical to an
    /// untraced one.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.sim.set_tracer(tracer.clone());
        self.cluster.set_tracer(tracer.clone());
        self.faas.set_tracer(tracer.clone());
        for platform in self.tier_faas.values_mut() {
            platform.set_tracer(tracer.clone());
        }
        self.store.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_places() {
        let base = MashupConfig::aws(48);
        let cheap = MashupConfig::aws_cheap(48);
        let exp = MashupConfig::aws_expensive(48);
        let gcp = MashupConfig::gcp(48);
        assert_eq!(base.cluster.instance.name, "r5.large");
        assert_eq!(cheap.cluster.instance.name, "m5.large");
        assert_eq!(exp.cluster.instance.name, "r5b.large");
        assert_eq!(gcp.provider.name, "gcp-like");
        assert_eq!(base.cluster.nodes, 48);
    }

    #[test]
    fn margin_widens_for_large_checkpoints() {
        let cfg = MashupConfig::aws(4);
        assert_eq!(cfg.margin_for(0.0), 30.0);
        // 5 GB at 50 MB/s = 100 s -> margin 120 s.
        let m = cfg.margin_for(5.0e9);
        assert!((m - 120.0).abs() < 1e-9);
    }

    #[test]
    fn env_construction_is_self_consistent() {
        let cfg = MashupConfig::aws(8);
        let env = CloudEnv::new(&cfg);
        assert_eq!(env.cluster.config().nodes, 8);
        assert_eq!(env.faas.config().timeout_secs, 900.0);
        assert_eq!(env.sim.now().as_secs(), 0.0);
    }

    #[test]
    fn tier_scaling_follows_price_linear_speed_sqrt() {
        let cfg = MashupConfig::aws(4);
        let base = &cfg.provider.faas;
        // The base tier comes back unchanged (same struct, not a rescale
        // that happens to round-trip).
        assert_eq!(cfg.faas_tier(base.memory_gb), *base);
        assert!(MEMORY_TIERS_GB.contains(&base.memory_gb));
        let small = cfg.faas_tier(0.5);
        let big = cfg.faas_tier(8.0);
        assert_eq!(small.memory_gb, 0.5);
        assert!(small.price_per_hour < base.price_per_hour);
        assert!(small.core_speed < base.core_speed);
        assert!(big.price_per_hour > base.price_per_hour);
        assert!(big.core_speed > base.core_speed);
        // Linear price: price/GB constant across tiers.
        let per_gb = base.price_per_hour / base.memory_gb;
        assert!((small.price_per_hour / small.memory_gb - per_gb).abs() < 1e-12);
        assert!((big.price_per_hour / big.memory_gb - per_gb).abs() < 1e-12);
        // Sub-linear speed: $/unit-of-work rises with the tier.
        assert!(big.price_per_hour / big.core_speed > base.price_per_hour / base.core_speed);
        // Non-scaled constants stay put.
        assert_eq!(big.per_function_bps, base.per_function_bps);
        assert_eq!(big.timeout_secs, base.timeout_secs);
    }

    #[test]
    fn sizing_and_tier_platforms() {
        use mashup_dag::{Task, TaskProfile, WorkflowBuilder};
        let cfg = MashupConfig::aws(4);
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(Task::new("A", 2, TaskProfile::trivial()));
        b.add_task(Task::new("B", 2, TaskProfile::trivial()));
        let w = b.build().expect("valid");
        let base = Sizing::base(&cfg, &w);
        assert!(base.is_base(&cfg));
        assert_eq!(base.distinct_tiers(), vec![cfg.provider.faas.memory_gb]);
        let mixed = Sizing {
            tiers_gb: vec![0.5, cfg.provider.faas.memory_gb],
        };
        assert!(!mixed.is_base(&cfg));
        assert_eq!(
            mixed.distinct_tiers(),
            vec![0.5, cfg.provider.faas.memory_gb]
        );
        let mut env = CloudEnv::new(&cfg);
        env.provision_tiers(&cfg, &mixed);
        // The base tier resolves to the base platform; 0.5 GB gets its own.
        assert_eq!(
            env.faas_for(cfg.provider.faas.memory_gb).config().memory_gb,
            cfg.provider.faas.memory_gb
        );
        assert_eq!(env.faas_for(0.5).config().memory_gb, 0.5);
        // An unprovisioned tier falls back to the base platform.
        assert_eq!(
            env.faas_for(2.0).config().memory_gb,
            cfg.provider.faas.memory_gb
        );
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = MashupConfig::aws(16).with_subclusters(2);
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: MashupConfig = serde_json::from_str(&json).expect("parse");
        assert_eq!(cfg, back);
    }
}
