//! Mashup *without* the PDC (paper §3: the "base design").
//!
//! "The base design is to place all tasks with more components than the
//! number of available cluster nodes on the serverless platform." No
//! profiling, no estimates — just the component-count threshold (plus the
//! hard memory constraint, since oversized components cannot run in a
//! function at all).

use crate::config::MashupConfig;
use crate::placement::{PlacementPlan, Platform};
use mashup_dag::Workflow;

/// Builds the w/o-PDC plan: `components > cluster nodes` ⇒ serverless.
pub fn plan_without_pdc(cfg: &MashupConfig, workflow: &Workflow) -> PlacementPlan {
    let mut plan = PlacementPlan::new();
    for r in workflow.task_refs() {
        let t = workflow.task(r);
        let fits = t.profile.memory_gb <= cfg.provider.faas.memory_gb;
        let platform = if fits && t.components > cfg.cluster.nodes {
            Platform::Serverless
        } else {
            Platform::VmCluster
        };
        plan.set(r, platform);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{Task, TaskProfile, WorkflowBuilder};

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(Task::new("narrow", 4, TaskProfile::trivial()));
        b.add_task(Task::new("wide", 100, TaskProfile::trivial()));
        b.add_task(Task::new("fat", 100, TaskProfile::trivial().memory(10.0)));
        b.build().expect("valid")
    }

    #[test]
    fn threshold_is_cluster_node_count() {
        let w = wf();
        let plan = plan_without_pdc(&MashupConfig::aws(8), &w);
        let by_name = |name: &str| {
            let (r, _) = w.task_by_name(name).expect("exists");
            plan.platform(r).expect("assigned")
        };
        assert_eq!(by_name("narrow"), Platform::VmCluster);
        assert_eq!(by_name("wide"), Platform::Serverless);
        // Memory cap always wins.
        assert_eq!(by_name("fat"), Platform::VmCluster);
    }

    #[test]
    fn larger_clusters_pull_tasks_back_to_vm() {
        let w = wf();
        let plan = plan_without_pdc(&MashupConfig::aws(128), &w);
        let (r, _) = w.task_by_name("wide").expect("exists");
        assert_eq!(plan.platform(r), Ok(Platform::VmCluster));
    }
}
