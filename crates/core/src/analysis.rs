//! Engine-side wiring of the `mashup-analyze` diagnostics.
//!
//! [`preflight`] runs every applicable check family over an input bundle
//! and refuses error-diagnosed inputs with a typed [`AnalysisError`] —
//! turning what used to be panics deep inside the simulator into an
//! up-front, fully-enumerated report. Analysis is read-only: it draws no
//! randomness and touches no simulation state, so gating on it cannot
//! perturb simulated results.

use crate::config::MashupConfig;
use mashup_analyze::{
    analyze_config, analyze_plan, analyze_workflow, into_result, AnalysisError, Diagnostic,
    EngineParams, PlanContext,
};
use mashup_dag::{PlacementPlan, Workflow};

/// The engine knobs the analyzer's config checks consume.
pub fn engine_params(cfg: &MashupConfig) -> EngineParams {
    EngineParams {
        checkpoint_margin_secs: cfg.checkpoint_margin_secs,
        prewarm: cfg.prewarm,
        prewarm_cap: cfg.prewarm_cap,
    }
}

/// Runs the M1xx workflow and M3xx config checks — plus the M2xx plan
/// checks when a plan is supplied — and partitions the findings: `Ok` is
/// the (possibly empty) warning list, `Err` carries everything when any
/// error-level diagnostic fired.
pub fn preflight(
    cfg: &MashupConfig,
    workflow: &Workflow,
    plan: Option<&PlacementPlan>,
) -> Result<Vec<Diagnostic>, AnalysisError> {
    let mut diags = analyze_workflow(workflow);
    diags.extend(analyze_config(
        &cfg.provider,
        &cfg.cluster,
        &engine_params(cfg),
    ));
    if let Some(plan) = plan {
        let ctx = PlanContext {
            faas: &cfg.provider.faas,
            wan_bps: cfg.cluster.instance.wan_bps,
            checkpoint_margin_secs: cfg.checkpoint_margin_secs,
        };
        diags.extend(analyze_plan(workflow, plan, &ctx));
    }
    into_result(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_analyze::Code;
    use mashup_dag::{Platform, Task, TaskProfile, WorkflowBuilder};

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.initial_input_bytes(1e9);
        b.begin_phase();
        b.add_task(Task::new("A", 4, TaskProfile::trivial().io(1e6, 1e6)));
        b.build().expect("valid")
    }

    #[test]
    fn clean_inputs_pass_with_no_warnings() {
        let cfg = MashupConfig::aws(4);
        let w = wf();
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        assert_eq!(preflight(&cfg, &w, Some(&plan)), Ok(vec![]));
        assert_eq!(preflight(&cfg, &w, None), Ok(vec![]));
    }

    #[test]
    fn broken_plan_is_refused_with_the_offending_code() {
        let cfg = MashupConfig::aws(4);
        let w = wf();
        let err = preflight(&cfg, &w, Some(&PlacementPlan::new())).unwrap_err();
        assert!(err.errors().all(|d| d.code == Code::UnassignedTask));
        assert_eq!(err.errors().count(), 1);
    }

    #[test]
    fn broken_config_is_refused_even_without_a_plan() {
        let mut cfg = MashupConfig::aws(4);
        cfg.checkpoint_margin_secs = 1e9;
        let err = preflight(&cfg, &wf(), None).unwrap_err();
        assert!(err.errors().any(|d| d.code == Code::MarginExceedsTimeout));
    }
}
