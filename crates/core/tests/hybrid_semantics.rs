//! Integration tests of hybrid-execution semantics: pre-warming, boundary
//! refinement, store billing, and checkpoint-margin widening.

use mashup_core::{execute, MashupConfig, Pdc, PlacementPlan, Platform};
use mashup_dag::{DependencyPattern, Task, TaskProfile, TaskRef, WorkflowBuilder};

/// Two serverless phases of the same width: phase 2 should find warm
/// microVMs when pre-warming is on.
#[test]
fn prewarming_cuts_next_phase_cold_starts() {
    let mut b = WorkflowBuilder::new("warmth");
    b.initial_input_bytes(1e6);
    b.begin_phase();
    let a = b.add_task(Task::new(
        "first",
        128,
        TaskProfile::trivial().compute(30.0),
    ));
    b.begin_phase();
    let c = b.add_task(Task::new(
        "second",
        128,
        TaskProfile::trivial().compute(5.0),
    ));
    b.depend(c, a, DependencyPattern::OneToOne);
    let w = b.build().expect("valid");
    let plan = PlacementPlan::uniform(&w, Platform::Serverless);

    let mut on = MashupConfig::aws(2);
    on.prewarm = true;
    let mut off = on.clone();
    off.prewarm = false;

    let with = execute(&on, &w, &plan, "on");
    let without = execute(&off, &w, &plan, "off");
    let cold = |r: &mashup_core::WorkflowReport, t: &str| r.task(t).expect("ran").n_cold;
    assert!(
        cold(&with, "second") < cold(&without, "second"),
        "prewarmed {} vs cold {}",
        cold(&with, "second"),
        cold(&without, "second")
    );
    // Pre-warming costs function time, so it must show up in the bill.
    assert!(with.expense.faas_dollars > 0.0);
}

/// A task with one VM producer and one serverless producer must read via
/// the store (the VM producer is forced to upload because its sibling
/// consumer path crosses the boundary).
#[test]
fn mixed_producer_locations_route_through_the_store() {
    let mut b = WorkflowBuilder::new("mixed");
    b.initial_input_bytes(1e6);
    b.begin_phase();
    let vm_side = b.add_task(Task::new("vm-prod", 2, TaskProfile::trivial().io(0.0, 1e7)));
    let sl_side = b.add_task(Task::new("sl-prod", 2, TaskProfile::trivial().io(0.0, 1e7)));
    b.begin_phase();
    let consumer = b.add_task(Task::new(
        "consumer",
        2,
        TaskProfile::trivial().compute(5.0).io(2e7, 0.0),
    ));
    b.depend(consumer, vm_side, DependencyPattern::OneToOne);
    b.depend(consumer, sl_side, DependencyPattern::OneToOne);
    let w = b.build().expect("valid");

    let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
    plan.set(TaskRef::new(0, 1), Platform::Serverless); // sl-prod
    let report = execute(&MashupConfig::aws(4), &w, &plan, "mixed");
    // Storage was billed: the serverless producer's output and the staged
    // initial input lived in the store.
    assert!(report.expense.storage_dollars > 0.0);
    // The consumer (VM) did real I/O (WAN reads), the vm-producer uploaded.
    assert!(report.task("consumer").expect("ran").io_secs > 0.0);
    assert!(report.task("vm-prod").expect("ran").io_secs > 0.0);
}

/// A pure-VM plan must never touch the store — no storage dollars at all.
#[test]
fn pure_vm_plans_never_bill_storage() {
    let mut b = WorkflowBuilder::new("vm-only");
    b.initial_input_bytes(1e12);
    b.begin_phase();
    b.add_task(Task::new("t", 16, TaskProfile::trivial().io(1e8, 1e8)));
    let w = b.build().expect("valid");
    let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
    let report = execute(&MashupConfig::aws(4), &w, &plan, "vm");
    assert_eq!(report.expense.storage_dollars, 0.0);
    assert_eq!(report.expense.faas_dollars, 0.0);
}

/// The PDC's boundary refinement: a serverless placement whose upstream
/// would have to push an enormous output over the WAN gets flipped back to
/// the cluster, with an explanatory reason.
#[test]
fn boundary_tax_flips_marginal_serverless_wins_back_to_vm() {
    let mut b = WorkflowBuilder::new("taxed");
    b.initial_input_bytes(1e6);
    b.begin_phase();
    // Huge-output producer that clearly belongs on the cluster.
    let producer = b.add_task(Task::new(
        "producer",
        4,
        TaskProfile::trivial().compute(500.0).io(0.0, 5e10),
    ));
    b.begin_phase();
    // Consumer with a tiny serverless edge: the 200 GB boundary upload
    // dwarfs it.
    let consumer = b.add_task(Task::new(
        "consumer",
        64,
        TaskProfile::trivial()
            .compute(3.0)
            .memory(2.0)
            .contention(0.0),
    ));
    b.depend(consumer, producer, DependencyPattern::AllToAll);
    let w = b.build().expect("valid");
    let pdc = Pdc::new(MashupConfig::aws(16)).decide(&w);
    let d = pdc
        .decisions
        .iter()
        .find(|d| d.name == "consumer")
        .expect("decided");
    if d.platform == Platform::VmCluster {
        // Either the raw comparison kept it on VM, or the refinement
        // flipped it and said why.
        if let Some(reason) = &d.forced_vm_reason {
            assert!(reason.contains("boundary"), "unexpected reason: {reason}");
        }
    } else {
        // If it stayed serverless the gain must genuinely exceed the tax.
        assert!(d.t_vm_secs - d.t_serverless_est_secs > 0.0);
    }
    // The producer itself must be on the cluster.
    let p = pdc
        .decisions
        .iter()
        .find(|d| d.name == "producer")
        .expect("decided");
    assert_eq!(p.platform, Platform::VmCluster);
}

/// Checkpoint states too large for the default 30 s margin get a widened
/// margin instead of a watchdog kill.
#[test]
fn large_checkpoints_widen_the_margin_instead_of_dying() {
    let mut b = WorkflowBuilder::new("big-state");
    b.initial_input_bytes(1e6);
    b.begin_phase();
    b.add_task(Task::new(
        "heavy",
        1,
        TaskProfile::trivial()
            .compute(2000.0) // > 900 s cap, needs chains
            .memory(2.0)
            .checkpoint(4.0e9), // 80 s to write at 50 MB/s: margin must widen
    ));
    let w = b.build().expect("valid");
    let cfg = MashupConfig::aws(2);
    assert!(cfg.margin_for(4.0e9) > 30.0);
    let plan = PlacementPlan::uniform(&w, Platform::Serverless);
    let report = execute(&cfg, &w, &plan, "big-state");
    let t = report.task("heavy").expect("ran");
    assert!(t.checkpoints >= 2);
    // All compute arrived despite the chains.
    assert!(t.compute_secs >= 2000.0 - 1e-6);
}

/// Sub-cluster splits isolate concurrent tasks in the hybrid executor too:
/// a 2-split keeps a single long task off the nodes a wide task thrashes.
#[test]
fn subcluster_split_isolates_concurrent_vm_tasks() {
    let mut b = WorkflowBuilder::new("iso");
    b.initial_input_bytes(1e6);
    b.begin_phase();
    b.add_task(Task::new(
        "wide",
        256,
        TaskProfile::trivial()
            .compute(10.0)
            .memory(2.0)
            .contention(2.0),
    ));
    b.add_task(Task::new("solo", 1, TaskProfile::trivial().compute(100.0)));
    let w = b.build().expect("valid");
    let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
    let joint = execute(&MashupConfig::aws(8), &w, &plan, "joint");
    let split = execute(
        &MashupConfig::aws(8).with_subclusters(2),
        &w,
        &plan,
        "split",
    );
    let solo_joint = joint.task("solo").expect("ran").makespan_secs();
    let solo_split = split.task("solo").expect("ran").makespan_secs();
    assert!(
        solo_split < solo_joint,
        "isolated {solo_split:.0}s vs co-located {solo_joint:.0}s"
    );
}
