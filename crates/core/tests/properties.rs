//! Property-based tests of the Mashup engine invariants.

use mashup_core::{
    estimate_serverless_time, execute, execute_traced, fit_gamma, MashupConfig, ModelFactors, Pdc,
    PlacementPlan, PlanCache, Platform, Tracer,
};
use mashup_workflows::{generate, SyntheticConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn small_synthetic(seed: u64) -> mashup_dag::Workflow {
    generate(
        &SyntheticConfig {
            phases: 3,
            tasks_per_phase: (1, 2),
            component_choices: vec![1, 4, 16, 48],
            compute_secs: (1.0, 20.0),
            io_bytes: (1.0e5, 5.0e7),
            slowdown: (0.8, 1.5),
            recurring_prob: 0.1,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Eq. 1 estimates are monotone in component count and never below the
    /// probe's own serial time plus the conservative pad.
    #[test]
    fn estimate_is_monotone_and_bounded_below(
        c1 in 1usize..2000,
        extra in 0usize..2000,
        probe in 1u32..600,
        io in 0u64..1_000_000_000u64,
    ) {
        let f = ModelFactors {
            alpha: 0.2,
            beta: 1.5,
            gamma: 1.0,
            store_bps: 2.0e9,
            burst: 64,
        };
        let probe = probe as f64;
        let e1 = estimate_serverless_time(&f, c1, probe, io as f64, 2.0);
        let e2 = estimate_serverless_time(&f, c1 + extra, probe, io as f64, 2.0);
        prop_assert!(e2 >= e1 - 1e-9);
        prop_assert!(e1 >= probe + 2.0 - 1e-9);
    }

    /// γ fits are always ≥ 1 and reproduce the measured time under Eq. 2's
    /// form when the fit is non-degenerate.
    #[test]
    fn gamma_fit_round_trips(
        r in 1.1f64..4.0,
        c in 1usize..64,
        mult in 1.0f64..100.0,
    ) {
        let t_vm = r * mult;
        let g = fit_gamma(t_vm, r, c);
        prop_assert!(g >= 1.0);
        if g > 1.0 {
            let reconstructed = r.powf(g * c as f64);
            prop_assert!((reconstructed - t_vm).abs() / t_vm < 1e-6);
        }
    }

    /// Every synthetic workflow executes under every uniform plan, with an
    /// internally consistent report.
    #[test]
    fn executor_handles_arbitrary_valid_workflows(seed in 0u64..30) {
        let w = small_synthetic(seed);
        let cfg = MashupConfig::aws(4);
        for platform in [Platform::VmCluster, Platform::Serverless] {
            // Skip serverless plans containing over-cap memory tasks.
            if platform == Platform::Serverless
                && w.task_refs().any(|r| w.task(r).profile.memory_gb > 3.0)
            {
                continue;
            }
            let plan = PlacementPlan::uniform(&w, platform);
            let report = execute(&cfg, &w, &plan, "prop");
            prop_assert_eq!(report.tasks.len(), w.task_count());
            let last_end = report.tasks.iter().map(|t| t.end_secs).fold(0.0f64, f64::max);
            prop_assert!((report.makespan_secs - last_end).abs() < 1e-6);
            // Phase precedence.
            for t in &report.tasks {
                for e in report.tasks.iter().filter(|e| e.phase < t.phase) {
                    prop_assert!(t.start_secs >= e.end_secs - 1e-6);
                }
            }
            prop_assert!(report.expense.total() > 0.0);
        }
    }

    /// Identical configuration ⇒ identical report (determinism), and a
    /// different seed with nonzero jitter ⇒ (almost surely) different
    /// makespan.
    #[test]
    fn execution_is_deterministic(seed in 0u64..20) {
        let w = small_synthetic(seed);
        let cfg = MashupConfig::aws(4);
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let a = execute(&cfg, &w, &plan, "a");
        let b = execute(&cfg, &w, &plan, "b");
        prop_assert_eq!(a.makespan_secs, b.makespan_secs);
        prop_assert_eq!(a.expense, b.expense);
    }

    /// The planning cache is invisible to results: for any synthetic
    /// workflow, an uncached decision, a cold cached decision, and a warm
    /// cached decision (every stage a hit) produce the same `PdcReport`.
    #[test]
    fn cached_pdc_reports_are_bit_identical_to_uncached(seed in 0u64..20) {
        let w = small_synthetic(seed);
        let cfg = MashupConfig::aws(4);
        let uncached = Pdc::new(cfg.clone()).decide(&w);
        let cache = Arc::new(PlanCache::new());
        let cold = Pdc::new(cfg.clone()).with_cache(cache.clone()).decide(&w);
        let warm = Pdc::new(cfg).with_cache(cache.clone()).decide(&w);
        prop_assert_eq!(&uncached, &cold);
        prop_assert_eq!(&uncached, &warm);
        let stats = cache.stats();
        // The warm pass must have been served entirely from the cache.
        prop_assert_eq!(stats.misses(), stats.entries());
        prop_assert!(stats.hits() >= stats.entries());
    }

    /// The flight recorder is a pure observer: for any synthetic workflow
    /// and either platform, an untraced run, a flow-level traced run, and a
    /// verbose traced run produce bit-identical reports — and the recorded
    /// trace passes the invariant oracle.
    #[test]
    fn tracing_never_perturbs_execution(seed in 0u64..20) {
        let w = small_synthetic(seed);
        let cfg = MashupConfig::aws(4);
        for platform in [Platform::VmCluster, Platform::Serverless] {
            if platform == Platform::Serverless
                && w.task_refs().any(|r| w.task(r).profile.memory_gb > 3.0)
            {
                continue;
            }
            let plan = PlacementPlan::uniform(&w, platform);
            let untraced = execute(&cfg, &w, &plan, "prop");
            let flow = Tracer::new();
            let traced = execute_traced(&cfg, &w, &plan, "prop", &flow);
            let verbose = Tracer::verbose();
            let verbose_traced = execute_traced(&cfg, &w, &plan, "prop", &verbose);
            prop_assert_eq!(&untraced, &traced);
            prop_assert_eq!(&untraced, &verbose_traced);
            let flow_records = flow.take();
            prop_assert!(!flow_records.is_empty());
            // Verbose traces strictly extend flow traces.
            prop_assert!(verbose.len() > flow_records.len());
            let violations = mashup_core::trace::check(&cfg, &w, &untraced, &flow_records);
            prop_assert!(violations.is_empty(), "oracle: {:?}", violations);
        }
    }

    /// Cluster expense scales linearly with price for a fixed plan.
    #[test]
    fn vm_expense_scales_with_price(seed in 0u64..10) {
        let w = small_synthetic(seed);
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let base = MashupConfig::aws(4);
        let mut doubled = base.clone();
        doubled.cluster.instance.price_per_hour *= 2.0;
        let a = execute(&base, &w, &plan, "a");
        let b = execute(&doubled, &w, &plan, "b");
        prop_assert!((b.expense.vm_dollars - 2.0 * a.expense.vm_dollars).abs() < 1e-9);
        prop_assert_eq!(a.makespan_secs, b.makespan_secs);
    }
}
