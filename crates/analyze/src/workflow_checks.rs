//! M1xx: workflow structure and profile checks.
//!
//! Unlike `mashup_dag::validate`, which stops at the first violation, these
//! checks collect *every* finding so a user fixes a broken workflow in one
//! round trip.

use crate::diag::{Code, Diagnostic, Location};
use mashup_dag::{fusable_pairs, Workflow};
use std::collections::BTreeSet;

fn task_loc(w: &Workflow, phase: usize, task: usize) -> Location {
    Location::Task {
        phase,
        task,
        name: w.phases[phase].tasks[task].name.clone(),
    }
}

/// M109: a phase wider than this must carry batching-friendly structure
/// (shared `code_family` identities) or it gets a scale warning — wide
/// phases of structurally distinct tasks defeat warm pools, bulk event
/// scheduling, and probe sharing.
const SCALE_WIDTH_THRESHOLD: usize = 64;

/// M110: nominal object-store bandwidth (bytes/sec per component) used to
/// price the intermediate transfer a fusion would eliminate. Deliberately
/// a round mid-range figure — the check is a structural smell detector,
/// not a cost model, so it only fires when transfer *dominates* compute.
const FUSION_STORE_BPS: f64 = 5.0e7;

/// M110: only chains of *short* tasks are flagged (serverless compute per
/// component below this). Long tasks amortize their transfers; flagging
/// them would drown the signal the paper's fusion rewrite targets —
/// overhead-bound chains of small functions.
const FUSION_SHORT_TASK_SECS: f64 = 30.0;

/// Runs every M1xx check over `w`, collecting all findings.
pub fn analyze_workflow(w: &Workflow) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if w.phases.is_empty() {
        out.push(Diagnostic::new(
            Code::EmptyStructure,
            Location::Workflow,
            "workflow has no phases",
        ));
        return out;
    }
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for (pi, phase) in w.phases.iter().enumerate() {
        if phase.tasks.is_empty() {
            out.push(Diagnostic::new(
                Code::EmptyStructure,
                Location::Phase { phase: pi },
                "phase has no tasks",
            ));
        }
        for (ti, task) in phase.tasks.iter().enumerate() {
            let loc = task_loc(w, pi, ti);
            if task.components == 0 {
                out.push(Diagnostic::new(
                    Code::ZeroComponents,
                    loc.clone(),
                    "task declares zero components",
                ));
            }
            if !names.insert(task.name.as_str()) {
                out.push(Diagnostic::new(
                    Code::DuplicateTaskName,
                    loc.clone(),
                    format!("task name '{}' is already used", task.name),
                ));
            }
            if let Err(detail) = task.profile.validate() {
                out.push(Diagnostic::new(Code::BadProfile, loc.clone(), detail));
            }
            if pi > 0 && task.deps.is_empty() {
                out.push(
                    Diagnostic::new(
                        Code::OrphanTask,
                        loc.clone(),
                        "task is beyond phase 0 but depends on nothing",
                    )
                    .with_help("add a dependency on an earlier phase or move the task to phase 0"),
                );
            }
            let mut live_producers = 0usize;
            let mut producing_output = 0usize;
            for dep in &task.deps {
                let exists = dep.producer.phase < w.phases.len()
                    && dep.producer.task < w.phases[dep.producer.phase].tasks.len();
                if !exists {
                    out.push(Diagnostic::new(
                        Code::DanglingReference,
                        loc.clone(),
                        format!("dependency references nonexistent task {}", dep.producer),
                    ));
                    continue;
                }
                live_producers += 1;
                let producer = w.task(dep.producer);
                if producer.profile.output_bytes > 0.0 {
                    producing_output += 1;
                }
                if dep.producer.phase >= pi {
                    out.push(
                        Diagnostic::new(
                            Code::NotEarlierPhase,
                            loc.clone(),
                            format!(
                                "dependency on {} ('{}') is not in an earlier phase",
                                dep.producer, producer.name
                            ),
                        )
                        .with_help("phase order is the topological schedule; same- or later-phase edges would cycle"),
                    );
                } else if let Err(detail) = dep.pattern.check(producer.components, task.components)
                {
                    out.push(Diagnostic::new(Code::PatternMismatch, loc.clone(), detail));
                }
            }
            // M108: the task reads bytes nobody provides. Advisory — the
            // simulator happily moves zero bytes, but the profile is almost
            // certainly miscalibrated.
            if task.profile.input_bytes > 0.0 {
                if task.deps.is_empty() {
                    if w.initial_input_bytes <= 0.0 {
                        out.push(
                            Diagnostic::new(
                                Code::MissingConsumerData,
                                loc.clone(),
                                format!(
                                    "initial task reads {:.0} bytes/component but the workflow \
                                     declares no initial input dataset",
                                    task.profile.input_bytes
                                ),
                            )
                            .with_help("set initial_input_bytes on the workflow"),
                        );
                    }
                } else if live_producers > 0 && producing_output == 0 {
                    out.push(
                        Diagnostic::new(
                            Code::MissingConsumerData,
                            loc.clone(),
                            format!(
                                "task reads {:.0} bytes/component but every producer declares \
                                 zero output bytes",
                                task.profile.input_bytes
                            ),
                        )
                        .with_help("set output_bytes on the producer profiles"),
                    );
                }
            }
        }
        // M109: wide phases need batching-friendly structure. A task's code
        // identity is its `code_family` when declared, else its name (every
        // nameless-family task is its own identity). Advisory — everything
        // still runs, but at 10^5-wide phases the grouped forms are what
        // keep planning and simulation fast.
        if phase.tasks.len() > SCALE_WIDTH_THRESHOLD {
            let identities: BTreeSet<&str> = phase
                .tasks
                .iter()
                .map(|t| t.profile.code_family.as_deref().unwrap_or(t.name.as_str()))
                .collect();
            if identities.len() > SCALE_WIDTH_THRESHOLD {
                out.push(
                    Diagnostic::new(
                        Code::ScaleStructure,
                        Location::Phase { phase: pi },
                        format!(
                            "phase has {} tasks with {} distinct code identities; warm \
                             pools, bulk scheduling, and probe sharing cannot group them",
                            phase.tasks.len(),
                            identities.len()
                        ),
                    )
                    .with_help(
                        "give same-code tasks a shared profile.code_family so batch-friendly \
                         paths can treat them as one population",
                    ),
                );
            }
        }
    }
    // M110: a fusable pair of short tasks whose eliminated transfer costs
    // more than the pair computes. Advisory — placed serverless as-is the
    // chain still runs, it just spends most of its time in the store.
    // Skipped when any dependency dangles: pair enumeration walks the
    // task arena, which (reasonably) assumes in-range references.
    let refs_ok = out.iter().all(|d| d.code != Code::DanglingReference);
    for pair in if refs_ok {
        fusable_pairs(w)
    } else {
        Vec::new()
    } {
        let p = &w.task(pair.producer).profile;
        let c = &w.task(pair.consumer).profile;
        let compute = p.compute_secs_serverless() + c.compute_secs_serverless();
        let short = p.compute_secs_serverless() < FUSION_SHORT_TASK_SECS
            && c.compute_secs_serverless() < FUSION_SHORT_TASK_SECS;
        let transfer = (p.output_bytes + c.input_bytes) / FUSION_STORE_BPS;
        if short && transfer > compute {
            out.push(
                Diagnostic::new(
                    Code::FusionProfitable,
                    task_loc(w, pair.producer.phase, pair.producer.task),
                    format!(
                        "fusable chain '{}' -> '{}' moves {:.0} bytes/component through \
                         storage (~{:.1} s) but computes for only {:.1} s; placed \
                         serverless it is transfer-bound",
                        w.task(pair.producer).name,
                        w.task(pair.consumer).name,
                        p.output_bytes + c.input_bytes,
                        transfer,
                        compute
                    ),
                )
                .with_help(
                    "fuse the pair into one function (`mashup pareto` searches fusion \
                     rewrites) or keep the chain on the VM cluster",
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, TaskRef, WorkflowBuilder};

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn valid_workflow_is_silent() {
        let mut b = WorkflowBuilder::new("ok");
        b.initial_input_bytes(1e9);
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, TaskProfile::trivial().io(1e6, 1e6)));
        b.begin_phase();
        let c = b.add_task(Task::new("B", 1, TaskProfile::trivial().io(4e6, 0.0)));
        b.depend(c, a, DependencyPattern::AllToAll);
        let w = b.build().expect("valid");
        assert!(analyze_workflow(&w).is_empty());
    }

    #[test]
    fn empty_workflow_and_empty_phase() {
        let w = WorkflowBuilder::new("e").build_unchecked();
        assert_eq!(codes(&analyze_workflow(&w)), vec![Code::EmptyStructure]);
        let mut b = WorkflowBuilder::new("e2");
        b.begin_phase();
        let w = b.build_unchecked();
        assert_eq!(codes(&analyze_workflow(&w)), vec![Code::EmptyStructure]);
    }

    #[test]
    fn collects_multiple_findings_in_one_pass() {
        let mut b = WorkflowBuilder::new("bad");
        b.begin_phase();
        b.add_task(Task::new("A", 0, TaskProfile::trivial())); // M104
        b.add_task(Task::new("A", 1, TaskProfile::trivial().compute(-1.0))); // M106 + M105
        b.begin_phase();
        b.add_task(Task::new("C", 1, TaskProfile::trivial())); // M103
        let w = b.build_unchecked();
        let got = codes(&analyze_workflow(&w));
        assert!(got.contains(&Code::ZeroComponents));
        assert!(got.contains(&Code::DuplicateTaskName));
        assert!(got.contains(&Code::BadProfile));
        assert!(got.contains(&Code::OrphanTask));
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn dependency_findings() {
        let mut b = WorkflowBuilder::new("deps");
        b.begin_phase();
        let a = b.add_task(Task::new("A", 3, TaskProfile::trivial()));
        let x = b.add_task(Task::new("X", 1, TaskProfile::trivial()));
        b.depend(a, x, DependencyPattern::OneToOne); // M101 (same phase)
        b.begin_phase();
        let c = b.add_task(Task::new("C", 2, TaskProfile::trivial()));
        b.depend(c, TaskRef::new(0, 9), DependencyPattern::OneToOne); // M102
        b.depend(c, a, DependencyPattern::OneToOne); // M107 (3 -> 2)
        let w = b.build_unchecked();
        let got = codes(&analyze_workflow(&w));
        assert!(got.contains(&Code::NotEarlierPhase));
        assert!(got.contains(&Code::DanglingReference));
        assert!(got.contains(&Code::PatternMismatch));
    }

    #[test]
    fn wide_ungrouped_phase_warns_and_code_families_silence_it() {
        let wide = |family: Option<&str>| {
            let mut b = WorkflowBuilder::new("wide");
            b.initial_input_bytes(1e6);
            b.begin_phase();
            for i in 0..(super::SCALE_WIDTH_THRESHOLD + 1) {
                let mut p = TaskProfile::trivial();
                if let Some(f) = family {
                    p = p.family(f);
                }
                b.add_task(Task::new(format!("t{i}"), 1, p));
            }
            b.build().expect("valid")
        };
        // 65 tasks, 65 distinct identities: M109.
        let diags = analyze_workflow(&wide(None));
        assert_eq!(codes(&diags), vec![Code::ScaleStructure]);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        assert!(diags[0].message.contains("65 tasks"));
        // Same width, one shared code family: silent.
        assert!(analyze_workflow(&wide(Some("stencil"))).is_empty());
    }

    #[test]
    fn fusion_profitable_chain_warns_and_compute_bound_chain_is_silent() {
        let chain = |compute: f64| {
            let mut b = WorkflowBuilder::new("chain");
            b.initial_input_bytes(1e9);
            b.begin_phase();
            let a = b.add_task(Task::new(
                "A",
                4,
                TaskProfile::trivial().compute(compute).io(0.0, 5e8),
            ));
            b.begin_phase();
            let c = b.add_task(Task::new(
                "B",
                4,
                TaskProfile::trivial().compute(compute).io(5e8, 0.0),
            ));
            b.depend(c, a, DependencyPattern::OneToOne);
            b.build().expect("valid")
        };
        // 2 s of compute per stage against ~20 s of transfer: M110.
        let diags = analyze_workflow(&chain(2.0));
        assert_eq!(codes(&diags), vec![Code::FusionProfitable]);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        assert!(diags[0].message.contains("transfer-bound"));
        // The same bytes under long stages amortize fine: silent.
        assert!(analyze_workflow(&chain(60.0)).is_empty());
    }

    #[test]
    fn missing_consumer_data_is_a_warning() {
        // Initial task reading with no initial dataset.
        let mut b = WorkflowBuilder::new("w1");
        b.begin_phase();
        b.add_task(Task::new("A", 1, TaskProfile::trivial().io(1e6, 1e6)));
        let w = b.build().expect("valid");
        let diags = analyze_workflow(&w);
        assert_eq!(codes(&diags), vec![Code::MissingConsumerData]);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        // Consumer reading from producers that write nothing.
        let mut b = WorkflowBuilder::new("w2");
        b.initial_input_bytes(1e9);
        b.begin_phase();
        let a = b.add_task(Task::new("A", 2, TaskProfile::trivial()));
        b.begin_phase();
        let c = b.add_task(Task::new("B", 2, TaskProfile::trivial().io(5e6, 0.0)));
        b.depend(c, a, DependencyPattern::OneToOne);
        let w = b.build().expect("valid");
        assert_eq!(
            codes(&analyze_workflow(&w)),
            vec![Code::MissingConsumerData]
        );
    }
}
