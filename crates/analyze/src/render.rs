//! Terminal and JSON rendering of diagnostic lists.

use crate::diag::{Diagnostic, Severity};
use std::fmt::Write as _;

/// Renders diagnostics as human-readable terminal lines, ending with a
/// `N error(s), M warning(s)` summary (or `no diagnostics` when clean).
pub fn render_pretty(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no diagnostics\n".to_string();
    }
    let mut out = String::new();
    for d in diags {
        writeln!(out, "{d}").expect("string writes are infallible");
        if let Some(help) = &d.help {
            writeln!(out, "  help: {help}").expect("string writes are infallible");
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    writeln!(
        out,
        "{errors} error(s), {} warning(s)",
        diags.len() - errors
    )
    .expect("string writes are infallible");
    out
}

/// Renders diagnostics as a pretty-printed JSON array (machine-readable;
/// stable field names, stable code strings).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s =
        serde_json::to_string_pretty(diags).expect("diagnostic serialization is infallible");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Location};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                Code::ZeroComponents,
                Location::Task {
                    phase: 0,
                    task: 0,
                    name: "A".into(),
                },
                "task declares zero components",
            ),
            Diagnostic::warning(Code::BoundaryStaging, Location::Plan, "heavy boundary")
                .with_help("co-locate"),
        ]
    }

    #[test]
    fn pretty_lines_and_summary() {
        let text = render_pretty(&sample());
        assert!(text.contains("error[M104]: task 'A' (P0T0): task declares zero components"));
        assert!(text.contains("warning[M204]: plan: heavy boundary"));
        assert!(text.contains("  help: co-locate"));
        assert!(text.ends_with("1 error(s), 1 warning(s)\n"));
        assert_eq!(render_pretty(&[]), "no diagnostics\n");
    }

    #[test]
    fn json_round_trips() {
        let json = render_json(&sample());
        let back: Vec<Diagnostic> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, sample());
        assert!(json.contains("\"M204\""));
        assert!(json.contains("\"kind\": \"plan\""));
    }
}
