//! # mashup-analyze
//!
//! Static diagnostics for Mashup inputs, run *before* any simulation time or
//! money is spent. Three check families, each with stable codes:
//!
//! * [`analyze_workflow`] — `M1xx`: structure (empty phases, cycles via
//!   non-earlier-phase deps, dangling references, orphan tasks, zero
//!   components, duplicate names), profile sanity (negative/NaN fields),
//!   pattern/component-count compatibility, and missing consumer data;
//! * [`analyze_plan`] — `M2xx`: unassigned tasks, FaaS placements that
//!   cannot fit the timeout window even with checkpoint chaining, serverless
//!   memory above the function cap, and excessive hybrid-boundary staging;
//! * [`analyze_config`] — `M3xx`: non-positive prices/caps/bandwidths,
//!   checkpoint margins that swallow the FaaS window, and concurrency
//!   demands beyond the burst + linear-ramp scaling model.
//!
//! Every check **collects** findings rather than bailing at the first one,
//! and every error-level condition mirrors (never exceeds) an assertion the
//! executor would otherwise hit mid-simulation. The engine wires these in
//! via `mashup_core::preflight`, refusing error-diagnosed inputs with a
//! typed [`AnalysisError`]. Analysis is read-only over its inputs — it
//! draws no randomness and mutates nothing, so enabling it cannot perturb
//! simulated results.

#![warn(missing_docs)]

mod config_checks;
mod diag;
mod plan_checks;
mod render;
mod workflow_checks;

pub use config_checks::{analyze_config, EngineParams};
pub use diag::{has_errors, into_result, AnalysisError, Code, Diagnostic, Location, Severity};
pub use plan_checks::{analyze_plan, PlanContext};
pub use render::{render_json, render_pretty};
pub use workflow_checks::analyze_workflow;

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_cloud::{ClusterConfig, FaasConfig, InstanceType, ProviderPreset};
    use mashup_dag::{PlacementPlan, Platform};

    /// The paper's three workflows pass all three check families clean
    /// under the default environment.
    #[test]
    fn paper_inputs_are_clean() {
        let provider = ProviderPreset::aws_like();
        let cluster = ClusterConfig::new(InstanceType::r5_large(), 48);
        assert!(analyze_config(&provider, &cluster, &EngineParams::defaults()).is_empty());
        let ctx = PlanContext {
            faas: &provider.faas,
            wan_bps: cluster.instance.wan_bps,
            checkpoint_margin_secs: 30.0,
        };
        for w in mashup_workflows::paper_workflows() {
            assert!(analyze_workflow(&w).is_empty(), "{}", w.name);
            let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
            assert!(analyze_plan(&w, &plan, &ctx).is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn faas_config_silent_on_gcp_numbers() {
        // The GCP preset's prewarm ramp: (256 - 40) / 3 = 72 s < 600 s
        // keep-alive — silent, matching the §5 portability runs.
        let faas = FaasConfig::gcp_like();
        assert!((256.0 - faas.burst_capacity as f64) / faas.ramp_per_sec < faas.keep_alive_secs);
    }
}
