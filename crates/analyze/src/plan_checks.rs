//! M2xx: placement-plan checks.
//!
//! Each error here corresponds to an assertion the hybrid executor would
//! otherwise hit mid-simulation; the conditions deliberately mirror the
//! runtime model (`MashupConfig::margin_for`, the FaaS window chaining of
//! `mashup_cloud::run_task_on_faas`, and the executor's output-location
//! routing) so the analyzer is exactly as strict as execution — never more.

use crate::diag::{Code, Diagnostic, Location};
use mashup_cloud::FaasConfig;
use mashup_dag::{PlacementPlan, Platform, TaskRef, Workflow};

/// Environment facts the plan checks need (a slice of the engine config, so
/// `mashup-analyze` does not depend on `mashup-core`).
#[derive(Debug, Clone)]
pub struct PlanContext<'a> {
    /// Serverless platform constants.
    pub faas: &'a FaasConfig,
    /// VM-side WAN bandwidth to the object store, bytes/sec.
    pub wan_bps: f64,
    /// Configured checkpoint margin before the FaaS deadline, seconds.
    pub checkpoint_margin_secs: f64,
}

impl PlanContext<'_> {
    /// The effective checkpoint margin for a task — mirrors
    /// `MashupConfig::margin_for` (at least the configured margin, widened
    /// so the checkpoint write fits with 20 % headroom).
    fn margin_for(&self, checkpoint_bytes: f64) -> f64 {
        self.checkpoint_margin_secs
            .max(checkpoint_bytes / self.faas.per_function_bps * 1.2)
    }
}

/// Runs every M2xx check of `plan` against `w`, collecting all findings.
pub fn analyze_plan(w: &Workflow, plan: &PlacementPlan, ctx: &PlanContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in w.task_refs() {
        let t = w.task(r);
        let loc = Location::Task {
            phase: r.phase,
            task: r.task,
            name: t.name.clone(),
        };
        let Ok(platform) = plan.platform(r) else {
            out.push(
                Diagnostic::new(
                    Code::UnassignedTask,
                    loc,
                    "plan assigns no platform to this task",
                )
                .with_help("every task needs a VM-cluster or serverless assignment"),
            );
            continue;
        };
        if platform != Platform::Serverless {
            continue;
        }
        if t.profile.memory_gb > ctx.faas.memory_gb {
            out.push(
                Diagnostic::new(
                    Code::FaasMemoryExceeded,
                    loc.clone(),
                    format!(
                        "component needs {:.2} GiB but the function cap is {:.2} GiB",
                        t.profile.memory_gb, ctx.faas.memory_gb
                    ),
                )
                .with_help("place the task on the VM cluster or raise faas.memory_gb"),
            );
        }
        // M202: can the component finish inside the timeout window, possibly
        // chaining across invocations via checkpoints?
        let bps = ctx.faas.per_function_bps;
        let margin = ctx.margin_for(t.profile.checkpoint_bytes);
        let window = ctx.faas.timeout_secs - margin;
        if window <= 0.0 {
            out.push(
                Diagnostic::new(
                    Code::FaasWindowInfeasible,
                    loc,
                    format!(
                        "checkpoint margin {margin:.0}s consumes the whole {:.0}s FaaS timeout",
                        ctx.faas.timeout_secs
                    ),
                )
                .with_help(
                    "shrink checkpoint_bytes or checkpoint_margin_secs, or run on the VM cluster",
                ),
            );
            continue;
        }
        let compute = t.profile.compute_secs_serverless() / ctx.faas.core_speed;
        let worst = compute * (1.0 + t.profile.runtime_jitter);
        let resume_read = t.profile.checkpoint_bytes / bps;
        if worst > window && window - resume_read <= 0.0 {
            out.push(
                Diagnostic::new(
                    Code::FaasWindowInfeasible,
                    loc,
                    format!(
                        "component needs ~{worst:.0}s (> {window:.0}s window) so it must chain, \
                         but re-reading the {:.0}-byte checkpoint consumes every resumed window",
                        t.profile.checkpoint_bytes
                    ),
                )
                .with_help("no forward progress is possible; place the task on the VM cluster"),
            );
        }
    }
    // M204: hybrid-boundary staging volume. Mirrors the executor's output
    // routing — a task's output lands in the object store when the task or
    // any consumer is serverless, and VM tasks exchange store-resident data
    // over the WAN.
    if plan.covers(w) {
        let serverless = |r: TaskRef| plan.platform(r) == Ok(Platform::Serverless);
        // Memoized per task: evaluating this on demand re-scans the
        // producer's consumer list for every dependency edge, which is
        // quadratic on wide fan-outs (each of n workers re-checks the
        // splitter's n consumers).
        let in_store: Vec<Vec<bool>> = w
            .phases
            .iter()
            .enumerate()
            .map(|(pi, phase)| {
                (0..phase.tasks.len())
                    .map(|ti| {
                        let r = TaskRef::new(pi, ti);
                        serverless(r) || w.consumers(r).iter().any(|&(c, _)| serverless(c))
                    })
                    .collect()
            })
            .collect();
        let in_store = |r: TaskRef| in_store[r.phase][r.task];
        let mut boundary_bytes = 0.0;
        for r in w.task_refs() {
            if serverless(r) {
                continue;
            }
            let t = w.task(r);
            if in_store(r) {
                boundary_bytes += t.components as f64 * t.profile.output_bytes;
            }
            if t.deps.iter().any(|d| in_store(d.producer)) {
                boundary_bytes += t.components as f64 * t.profile.input_bytes;
            }
        }
        let staging_secs = boundary_bytes / ctx.wan_bps;
        let threshold = w.critical_path_secs().max(60.0);
        if staging_secs > threshold {
            out.push(
                Diagnostic::new(
                    Code::BoundaryStaging,
                    Location::Plan,
                    format!(
                        "hybrid boundary moves {:.1} GB over the WAN (~{staging_secs:.0}s of \
                         staging vs a ~{threshold:.0}s critical path)",
                        boundary_bytes / 1e9
                    ),
                )
                .with_help("co-locate heavy producer/consumer pairs on one platform"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};

    fn ctx(faas: &FaasConfig) -> PlanContext<'_> {
        PlanContext {
            faas,
            wan_bps: 1.0e9,
            checkpoint_margin_secs: 30.0,
        }
    }

    fn two_phase(profile0: TaskProfile, profile1: TaskProfile) -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.initial_input_bytes(1e9);
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, profile0));
        b.begin_phase();
        let c = b.add_task(Task::new("B", 1, profile1));
        b.depend(c, a, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    #[test]
    fn covering_plan_with_modest_tasks_is_silent() {
        let w = two_phase(TaskProfile::trivial(), TaskProfile::trivial());
        let faas = FaasConfig::aws_like();
        for plat in [Platform::VmCluster, Platform::Serverless] {
            let plan = PlacementPlan::uniform(&w, plat);
            assert!(analyze_plan(&w, &plan, &ctx(&faas)).is_empty());
        }
    }

    #[test]
    fn unassigned_tasks_are_errors() {
        let w = two_phase(TaskProfile::trivial(), TaskProfile::trivial());
        let mut plan = PlacementPlan::new();
        plan.set(TaskRef::new(0, 0), Platform::VmCluster);
        let diags = analyze_plan(&w, &plan, &ctx(&FaasConfig::aws_like()));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::UnassignedTask);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn memory_above_function_cap() {
        let w = two_phase(TaskProfile::trivial().memory(8.0), TaskProfile::trivial());
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let diags = analyze_plan(&w, &plan, &ctx(&FaasConfig::aws_like()));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::FaasMemoryExceeded);
        // On the VM cluster the same task is fine.
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        assert!(analyze_plan(&w, &plan, &ctx(&FaasConfig::aws_like())).is_empty());
    }

    #[test]
    fn infeasible_faas_window_two_ways() {
        let faas = FaasConfig::aws_like();
        // (a) margin swallows the timeout: 50 GB checkpoint at 50 MB/s
        // needs a 1200 s margin against a 900 s timeout.
        let w = two_phase(
            TaskProfile::trivial().checkpoint(5.0e10),
            TaskProfile::trivial(),
        );
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let diags = analyze_plan(&w, &plan, &ctx(&faas));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::FaasWindowInfeasible);
        assert!(diags[0].message.contains("consumes the whole"));
        // (b) chaining needed but the resume re-read eats the window:
        // 2.5e10 B checkpoint -> margin 600 s, window 300 s, re-read 500 s.
        let w = two_phase(
            TaskProfile::trivial().compute(2000.0).checkpoint(2.5e10),
            TaskProfile::trivial(),
        );
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let diags = analyze_plan(&w, &plan, &ctx(&faas));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::FaasWindowInfeasible);
        assert!(diags[0].message.contains("chain"));
        // Long compute alone is fine — chaining handles it.
        let w = two_phase(
            TaskProfile::trivial().compute(2000.0).checkpoint(1.0e6),
            TaskProfile::trivial(),
        );
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        assert!(analyze_plan(&w, &plan, &ctx(&faas)).is_empty());
    }

    #[test]
    fn heavy_boundary_traffic_warns() {
        // VM producer writes 4 × 5e10 B read by a serverless consumer:
        // 200 GB over a 1 GB/s WAN = 200 s >> the 60 s floor.
        let w = two_phase(
            TaskProfile::trivial().io(0.0, 5.0e10),
            TaskProfile::trivial().io(2.0e11, 0.0),
        );
        let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        plan.set(TaskRef::new(1, 0), Platform::Serverless);
        let faas = FaasConfig::aws_like();
        let diags = analyze_plan(&w, &plan, &ctx(&faas));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::BoundaryStaging);
        assert_eq!(diags[0].severity, Severity::Warning);
        // All-VM moves nothing over the WAN.
        let plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        assert!(analyze_plan(&w, &plan, &ctx(&faas)).is_empty());
    }
}
