//! `analyze` — static diagnostics for Mashup inputs, ahead of execution.
//!
//! ```text
//! analyze <workflow.json|1000Genome|SRAsearch|Epigenomics>... [flags]
//! analyze --suite [--json]
//!
//! flags:
//!   --plan <plan.json>    also check a placement plan against each workflow
//!   --nodes <N>           cluster size for the config checks (default 8)
//!   --provider <aws|gcp>  provider preset (default aws)
//!   --json                machine-readable output
//!   --suite               analyze the paper workflows + synthetic samples
//! ```
//!
//! Exit status: 0 clean (warnings allowed), 1 when error-level diagnostics
//! fire, 2 on usage or I/O problems. CI runs `--suite` plus the checked-in
//! example workflows to keep every shipped input analyzer-clean.

use mashup_analyze::{
    analyze_config, analyze_plan, analyze_workflow, has_errors, render_pretty, Diagnostic,
    EngineParams, PlanContext,
};
use mashup_cloud::{ClusterConfig, InstanceType, ProviderPreset};
use mashup_dag::{PlacementPlan, Workflow};
use mashup_workflows::{epigenomics, genome1000, srasearch, SyntheticConfig};

fn die(msg: &str) -> ! {
    eprintln!("analyze: {msg}");
    std::process::exit(2)
}

struct Args {
    targets: Vec<String>,
    plan: Option<String>,
    nodes: usize,
    provider: ProviderPreset,
    json: bool,
    suite: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        targets: Vec::new(),
        plan: None,
        nodes: 8,
        provider: ProviderPreset::aws_like(),
        json: false,
        suite: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--plan" => args.plan = Some(argv.next().unwrap_or_else(|| die("--plan needs a path"))),
            "--nodes" => {
                args.nodes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--nodes needs a positive integer"))
            }
            "--provider" => {
                args.provider = match argv.next().as_deref() {
                    Some("aws") => ProviderPreset::aws_like(),
                    Some("gcp") => ProviderPreset::gcp_like(),
                    other => die(&format!("unknown provider {other:?}")),
                }
            }
            "--json" => args.json = true,
            "--suite" => args.suite = true,
            flag if flag.starts_with("--") => die(&format!("unknown flag '{flag}'")),
            target => args.targets.push(target.to_string()),
        }
    }
    if args.targets.is_empty() && !args.suite {
        die("usage: analyze <workflow...> [--plan p.json] [--nodes N] [--provider aws|gcp] [--json] | analyze --suite");
    }
    args
}

/// Loads a workflow *without* structural validation — producing the
/// diagnostics is this tool's whole job.
fn load_workflow(spec: &str) -> Workflow {
    match spec {
        "1000Genome" => genome1000::workflow(),
        "SRAsearch" => srasearch::workflow(),
        "Epigenomics" => epigenomics::workflow(),
        path => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read '{path}': {e}")));
            serde_json::from_str(&json)
                .unwrap_or_else(|e| die(&format!("unparseable workflow '{path}': {e}")))
        }
    }
}

fn load_plan(path: &str) -> PlacementPlan {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read '{path}': {e}")));
    serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("unparseable plan '{path}': {e}")))
}

fn main() {
    let args = parse_args();
    let cluster = ClusterConfig::new(InstanceType::r5_large(), args.nodes);
    let engine = EngineParams::defaults();
    let plan = args.plan.as_deref().map(load_plan);

    // (target label, workflow) pairs to analyze.
    let mut targets: Vec<(String, Workflow)> = Vec::new();
    if args.suite {
        for w in mashup_workflows::paper_workflows() {
            targets.push((w.name.clone(), w));
        }
        for seed in 0..6 {
            let w = mashup_workflows::generate(&SyntheticConfig::default(), seed);
            targets.push((w.name.clone(), w));
        }
    }
    for spec in &args.targets {
        targets.push((spec.clone(), load_workflow(spec)));
    }

    /// One `--json` output element: a target plus its findings.
    #[derive(serde::Serialize)]
    struct JsonEntry {
        target: String,
        diagnostics: Vec<Diagnostic>,
    }

    let mut any_errors = false;
    // Config checks run once, not per workflow.
    let config_diags = analyze_config(&args.provider, &cluster, &engine);
    let mut sections: Vec<(String, Vec<Diagnostic>)> = vec![("config".to_string(), config_diags)];
    for (label, w) in &targets {
        let mut diags = analyze_workflow(w);
        if let Some(plan) = &plan {
            let ctx = PlanContext {
                faas: &args.provider.faas,
                wan_bps: cluster.instance.wan_bps,
                checkpoint_margin_secs: engine.checkpoint_margin_secs,
            };
            diags.extend(analyze_plan(w, plan, &ctx));
        }
        sections.push((label.clone(), diags));
    }

    for (label, diags) in &sections {
        any_errors |= has_errors(diags);
        if !args.json {
            print!("== {label}\n{}", render_pretty(diags));
        }
    }
    if args.json {
        let entries: Vec<JsonEntry> = sections
            .into_iter()
            .map(|(label, diags)| JsonEntry {
                target: label,
                diagnostics: diags,
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&entries).expect("diagnostics serialize")
        );
    }
    std::process::exit(if any_errors { 1 } else { 0 });
}
