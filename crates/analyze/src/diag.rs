//! The diagnostic vocabulary: stable codes, severities, locations, and the
//! typed error the engine raises when error-level diagnostics are present.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// Stable diagnostic codes. The number never changes meaning once shipped;
/// renderers, fixtures, and suppression comments key off these strings.
///
/// * `M1xx` — workflow structure and profiles,
/// * `M2xx` — placement plans,
/// * `M3xx` — environment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Workflow has no phases, or a phase has no tasks.
    EmptyStructure,
    /// A dependency points to the same or a later phase (cycle risk).
    NotEarlierPhase,
    /// A dependency references a task that does not exist.
    DanglingReference,
    /// A task beyond phase 0 has no dependencies anchoring it.
    OrphanTask,
    /// A task declares zero components.
    ZeroComponents,
    /// A task profile field is negative, NaN, or out of range.
    BadProfile,
    /// Two tasks share a name.
    DuplicateTaskName,
    /// A dependency pattern is incompatible with the component counts.
    PatternMismatch,
    /// A task reads input bytes no producer (or initial dataset) provides.
    MissingConsumerData,
    /// A very wide phase (or workflow) lacks batching-friendly structure:
    /// its tasks carry distinct code identities, so schedulers and warm
    /// pools cannot group them.
    ScaleStructure,
    /// A fusable chain of short tasks whose inter-task transfer cost
    /// exceeds its compute: placed serverless, the pair would spend more
    /// time moving its intermediate through storage than computing.
    FusionProfitable,
    /// The plan leaves a task without a platform assignment.
    UnassignedTask,
    /// A FaaS-placed task cannot fit the timeout window even with
    /// checkpoint-margin chaining.
    FaasWindowInfeasible,
    /// A FaaS-placed task needs more memory than the function cap.
    FaasMemoryExceeded,
    /// The hybrid boundary stages an excessive data volume over the WAN.
    BoundaryStaging,
    /// A price, capacity, or bandwidth knob is non-positive or NaN.
    NonPositiveConfig,
    /// The checkpoint margin is negative or consumes the whole FaaS window.
    MarginExceedsTimeout,
    /// Requested concurrency is beyond the ramp model's validity.
    RampConcurrency,
}

impl Code {
    /// Every code, in numeric order (fixture tests assert full coverage).
    pub const ALL: [Code; 18] = [
        Code::EmptyStructure,
        Code::NotEarlierPhase,
        Code::DanglingReference,
        Code::OrphanTask,
        Code::ZeroComponents,
        Code::BadProfile,
        Code::DuplicateTaskName,
        Code::PatternMismatch,
        Code::MissingConsumerData,
        Code::ScaleStructure,
        Code::FusionProfitable,
        Code::UnassignedTask,
        Code::FaasWindowInfeasible,
        Code::FaasMemoryExceeded,
        Code::BoundaryStaging,
        Code::NonPositiveConfig,
        Code::MarginExceedsTimeout,
        Code::RampConcurrency,
    ];

    /// The stable string form (`"M105"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::EmptyStructure => "M100",
            Code::NotEarlierPhase => "M101",
            Code::DanglingReference => "M102",
            Code::OrphanTask => "M103",
            Code::ZeroComponents => "M104",
            Code::BadProfile => "M105",
            Code::DuplicateTaskName => "M106",
            Code::PatternMismatch => "M107",
            Code::MissingConsumerData => "M108",
            Code::ScaleStructure => "M109",
            Code::FusionProfitable => "M110",
            Code::UnassignedTask => "M201",
            Code::FaasWindowInfeasible => "M202",
            Code::FaasMemoryExceeded => "M203",
            Code::BoundaryStaging => "M204",
            Code::NonPositiveConfig => "M301",
            Code::MarginExceedsTimeout => "M302",
            Code::RampConcurrency => "M303",
        }
    }

    /// The canonical severity of the code. `M108`/`M109`/`M110`/`M204` are
    /// advisory (the run still completes, just suspiciously); everything
    /// else stops the simulation before it starts. `M303` is an error in
    /// its nothing-can-start form and downgraded to a warning by the checks
    /// for the ramp-past-keep-alive form.
    pub fn severity(self) -> Severity {
        match self {
            Code::MissingConsumerData
            | Code::ScaleStructure
            | Code::FusionProfitable
            | Code::BoundaryStaging => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Code {
    /// Serialized as the stable string form (`"M105"`).
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Code {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let s = v
            .as_str()
            .ok_or_else(|| SerdeError::expected("diagnostic code string", v))?;
        Code::ALL
            .into_iter()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| SerdeError::custom(format!("unknown diagnostic code '{s}'")))
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Severity {
    /// Suspicious but runnable; the engine proceeds.
    Warning,
    /// The input would panic or mislead mid-simulation; the engine refuses
    /// to run.
    #[default]
    Error,
}

impl Serialize for Severity {
    /// Serialized lowercase (`"warning"` / `"error"`).
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v.as_str() {
            Some("warning") => Ok(Severity::Warning),
            Some("error") => Ok(Severity::Error),
            _ => Err(SerdeError::expected("\"warning\" or \"error\"", v)),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Where in the input a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The workflow as a whole.
    Workflow,
    /// A specific phase.
    Phase {
        /// Phase index.
        phase: usize,
    },
    /// A specific task.
    Task {
        /// Phase index.
        phase: usize,
        /// Task index within the phase.
        task: usize,
        /// Task name.
        name: String,
    },
    /// The placement plan as a whole.
    Plan,
    /// A configuration field.
    Config {
        /// Dotted field path, e.g. `"faas.timeout_secs"`.
        field: String,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Workflow => f.write_str("workflow"),
            Location::Phase { phase } => write!(f, "phase {phase}"),
            Location::Task { phase, task, name } => {
                write!(f, "task '{name}' (P{phase}T{task})")
            }
            Location::Plan => f.write_str("plan"),
            Location::Config { field } => write!(f, "config field `{field}`"),
        }
    }
}

/// Looks up a member of a serde object by name.
fn member<'a>(v: &'a Value, name: &str) -> Result<&'a Value, SerdeError> {
    v.as_object()
        .ok_or_else(|| SerdeError::expected("object", v))?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| SerdeError::missing_field(name))
}

impl Serialize for Location {
    /// Serialized as an internally tagged object, e.g.
    /// `{"kind": "task", "phase": 0, "task": 1, "name": "Align"}`.
    fn to_value(&self) -> Value {
        let kind = |k: &str| ("kind".to_string(), Value::String(k.to_string()));
        Value::Object(match self {
            Location::Workflow => vec![kind("workflow")],
            Location::Phase { phase } => vec![kind("phase"), ("phase".into(), phase.to_value())],
            Location::Task { phase, task, name } => vec![
                kind("task"),
                ("phase".into(), phase.to_value()),
                ("task".into(), task.to_value()),
                ("name".into(), name.to_value()),
            ],
            Location::Plan => vec![kind("plan")],
            Location::Config { field } => vec![kind("config"), ("field".into(), field.to_value())],
        })
    }
}

impl Deserialize for Location {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match member(v, "kind")?.as_str() {
            Some("workflow") => Ok(Location::Workflow),
            Some("phase") => Ok(Location::Phase {
                phase: usize::from_value(member(v, "phase")?)?,
            }),
            Some("task") => Ok(Location::Task {
                phase: usize::from_value(member(v, "phase")?)?,
                task: usize::from_value(member(v, "task")?)?,
                name: String::from_value(member(v, "name")?)?,
            }),
            Some("plan") => Ok(Location::Plan),
            Some("config") => Ok(Location::Config {
                field: String::from_value(member(v, "field")?)?,
            }),
            _ => Err(SerdeError::expected("location kind tag", v)),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (see [`Code`]).
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable description of the problem.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Serialize for Diagnostic {
    /// Serialized as an object; `help` is omitted when absent.
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("code".to_string(), self.code.to_value()),
            ("severity".to_string(), self.severity.to_value()),
            ("location".to_string(), self.location.to_value()),
            ("message".to_string(), self.message.to_value()),
        ];
        if let Some(help) = &self.help {
            obj.push(("help".to_string(), help.to_value()));
        }
        Value::Object(obj)
    }
}

impl Deserialize for Diagnostic {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Ok(Diagnostic {
            code: Code::from_value(member(v, "code")?)?,
            severity: Severity::from_value(member(v, "severity")?)?,
            location: Location::from_value(member(v, "location")?)?,
            message: String::from_value(member(v, "message")?)?,
            help: match member(v, "help") {
                Ok(h) => Some(String::from_value(h)?),
                Err(_) => None,
            },
        })
    }
}

impl Diagnostic {
    /// A diagnostic at the code's canonical severity.
    pub fn new(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity diagnostic (for codes whose canonical severity is
    /// error but that have an advisory form, e.g. `M303`).
    pub fn warning(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::new(code, location, message)
        }
    }

    /// Attaches a remediation hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// One `severity[code]: location: message` line (the help hint is
    /// rendered separately by the pretty renderer).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// The typed refusal raised when error-level diagnostics are present:
/// carries every finding (errors *and* warnings) so callers can render the
/// full picture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// All diagnostics of the refused analysis, in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisError {
    /// The error-level subset.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().count();
        writeln!(
            f,
            "analysis refused the input: {errors} error(s), {} warning(s)",
            self.diagnostics.len() - errors
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisError {}

/// True when any diagnostic is error-level.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Splits a finding list into "runnable" (`Ok`: warnings only, possibly
/// empty) and "refused" (`Err`: at least one error).
pub fn into_result(diags: Vec<Diagnostic>) -> Result<Vec<Diagnostic>, AnalysisError> {
    if has_errors(&diags) {
        Err(AnalysisError { diagnostics: diags })
    } else {
        Ok(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_as_stable_strings() {
        for code in Code::ALL {
            let json = serde_json::to_string(&code).expect("serialize");
            assert_eq!(json, format!("\"{}\"", code.as_str()));
            let back: Code = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, code);
        }
    }

    #[test]
    fn all_is_exhaustive_and_ordered() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(strs, sorted, "Code::ALL must be unique and ordered");
        assert_eq!(strs.len(), 18);
    }

    #[test]
    fn display_lines_read_well() {
        let d = Diagnostic::new(
            Code::BadProfile,
            Location::Task {
                phase: 0,
                task: 1,
                name: "Align".into(),
            },
            "compute_secs_vm is NaN",
        );
        assert_eq!(
            d.to_string(),
            "error[M105]: task 'Align' (P0T1): compute_secs_vm is NaN"
        );
        let w = Diagnostic::warning(
            Code::RampConcurrency,
            Location::Config {
                field: "faas.ramp_per_sec".into(),
            },
            "slow ramp",
        );
        assert_eq!(
            w.to_string(),
            "warning[M303]: config field `faas.ramp_per_sec`: slow ramp"
        );
    }

    #[test]
    fn into_result_partitions_on_errors() {
        let warn = Diagnostic::warning(Code::BoundaryStaging, Location::Plan, "w");
        assert_eq!(into_result(vec![warn.clone()]), Ok(vec![warn.clone()]));
        let err = Diagnostic::new(Code::UnassignedTask, Location::Plan, "e");
        let refused = into_result(vec![warn, err]).unwrap_err();
        assert_eq!(refused.errors().count(), 1);
        assert!(refused.to_string().contains("1 error(s), 1 warning(s)"));
    }
}
