//! M3xx: environment-configuration checks.

use crate::diag::{Code, Diagnostic, Location};
use mashup_cloud::{ClusterConfig, ProviderPreset};

/// The engine knobs the config checks need (a slice of `MashupConfig`, so
/// `mashup-analyze` does not depend on `mashup-core`).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineParams {
    /// Seconds before the FaaS deadline at which checkpoints are taken.
    pub checkpoint_margin_secs: f64,
    /// Whether next-phase serverless tasks are pre-warmed.
    pub prewarm: bool,
    /// Maximum number of microVMs pre-warmed per task.
    pub prewarm_cap: usize,
}

impl EngineParams {
    /// The engine's paper defaults (mirrors `MashupConfig::aws`), for
    /// callers that analyze provider/cluster configs standalone.
    pub fn defaults() -> Self {
        EngineParams {
            checkpoint_margin_secs: 30.0,
            prewarm: true,
            prewarm_cap: 256,
        }
    }
}

fn config_loc(field: &str) -> Location {
    Location::Config {
        field: field.into(),
    }
}

fn positive(out: &mut Vec<Diagnostic>, field: &str, v: f64) {
    if !v.is_finite() || v <= 0.0 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc(field),
            format!("must be positive, got {v}"),
        ));
    }
}

fn nonneg(out: &mut Vec<Diagnostic>, field: &str, v: f64) {
    if !v.is_finite() || v < 0.0 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc(field),
            format!("must be finite and >= 0, got {v}"),
        ));
    }
}

fn probability(out: &mut Vec<Diagnostic>, field: &str, v: f64) {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc(field),
            format!("must be a probability in [0, 1], got {v}"),
        ));
    }
}

/// Runs every M3xx check, collecting all findings.
pub fn analyze_config(
    provider: &ProviderPreset,
    cluster: &ClusterConfig,
    engine: &EngineParams,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // M301 — cluster shape.
    if cluster.nodes == 0 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc("cluster.nodes"),
            "must be positive, got 0",
        ));
    }
    if cluster.subclusters == 0 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc("cluster.subclusters"),
            "must be positive, got 0",
        ));
    } else if cluster.subclusters > cluster.nodes {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc("cluster.subclusters"),
            format!(
                "{} sub-clusters exceed the {} nodes",
                cluster.subclusters, cluster.nodes
            ),
        ));
    }
    if cluster.instance.cores == 0 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc("cluster.instance.cores"),
            "must be positive, got 0",
        ));
    }
    nonneg(&mut out, "cluster.provision_secs", cluster.provision_secs);
    let inst = &cluster.instance;
    positive(
        &mut out,
        "cluster.instance.price_per_hour",
        inst.price_per_hour,
    );
    positive(&mut out, "cluster.instance.memory_gb", inst.memory_gb);
    positive(&mut out, "cluster.instance.core_speed", inst.core_speed);
    positive(&mut out, "cluster.instance.node_nic_bps", inst.node_nic_bps);
    positive(
        &mut out,
        "cluster.instance.master_nic_bps",
        inst.master_nic_bps,
    );
    positive(&mut out, "cluster.instance.wan_bps", inst.wan_bps);

    // M301 — serverless platform.
    let faas = &provider.faas;
    positive(&mut out, "faas.memory_gb", faas.memory_gb);
    positive(&mut out, "faas.price_per_hour", faas.price_per_hour);
    positive(&mut out, "faas.timeout_secs", faas.timeout_secs);
    positive(&mut out, "faas.per_function_bps", faas.per_function_bps);
    positive(&mut out, "faas.core_speed", faas.core_speed);
    nonneg(&mut out, "faas.warm_start_secs", faas.warm_start_secs);
    nonneg(&mut out, "faas.keep_alive_secs", faas.keep_alive_secs);
    nonneg(&mut out, "faas.cold_start_secs.0", faas.cold_start_secs.0);
    nonneg(&mut out, "faas.cold_start_secs.1", faas.cold_start_secs.1);
    if faas.cold_start_secs.0 > faas.cold_start_secs.1 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc("faas.cold_start_secs"),
            format!(
                "range minimum {} exceeds maximum {}",
                faas.cold_start_secs.0, faas.cold_start_secs.1
            ),
        ));
    }
    probability(&mut out, "faas.failure_prob", faas.failure_prob);

    // M301 — object store.
    let storage = &provider.storage;
    positive(&mut out, "storage.aggregate_bps", storage.aggregate_bps);
    nonneg(
        &mut out,
        "storage.request_latency_secs",
        storage.request_latency_secs,
    );
    nonneg(
        &mut out,
        "storage.price_per_gb_month",
        storage.price_per_gb_month,
    );
    nonneg(&mut out, "storage.price_per_put", storage.price_per_put);
    nonneg(&mut out, "storage.price_per_get", storage.price_per_get);
    probability(
        &mut out,
        "storage.get_failure_prob",
        storage.get_failure_prob,
    );
    if storage.replicas == 0 {
        out.push(Diagnostic::new(
            Code::NonPositiveConfig,
            config_loc("storage.replicas"),
            "must be positive, got 0",
        ));
    }

    // M302 — checkpoint margin vs FaaS timeout.
    if !engine.checkpoint_margin_secs.is_finite() || engine.checkpoint_margin_secs < 0.0 {
        out.push(Diagnostic::new(
            Code::MarginExceedsTimeout,
            config_loc("checkpoint_margin_secs"),
            format!(
                "must be finite and >= 0, got {}",
                engine.checkpoint_margin_secs
            ),
        ));
    } else if faas.timeout_secs > 0.0 && engine.checkpoint_margin_secs >= faas.timeout_secs {
        out.push(
            Diagnostic::new(
                Code::MarginExceedsTimeout,
                config_loc("checkpoint_margin_secs"),
                format!(
                    "margin {}s leaves no execution window within the {}s FaaS timeout",
                    engine.checkpoint_margin_secs, faas.timeout_secs
                ),
            )
            .with_help("the margin must be strictly below faas.timeout_secs"),
        );
    }

    // M303 — concurrency vs the burst + linear-ramp scaling model.
    let dead_ramp = faas.ramp_per_sec <= 0.0 || !faas.ramp_per_sec.is_finite();
    if faas.burst_capacity == 0 && dead_ramp {
        out.push(
            Diagnostic::new(
                Code::RampConcurrency,
                config_loc("faas.burst_capacity"),
                format!(
                    "no function can ever start (burst 0, ramp {}/s)",
                    faas.ramp_per_sec
                ),
            )
            .with_help("set burst_capacity or ramp_per_sec to a positive value"),
        );
    } else if engine.prewarm && engine.prewarm_cap > faas.burst_capacity {
        let beyond_burst = (engine.prewarm_cap - faas.burst_capacity) as f64;
        if dead_ramp {
            out.push(Diagnostic::warning(
                Code::RampConcurrency,
                config_loc("prewarm_cap"),
                format!(
                    "prewarm cap {} exceeds burst capacity {} and the ramp is {}/s; \
                     concurrency beyond the burst is unreachable",
                    engine.prewarm_cap, faas.burst_capacity, faas.ramp_per_sec
                ),
            ));
        } else if beyond_burst / faas.ramp_per_sec > faas.keep_alive_secs {
            out.push(
                Diagnostic::warning(
                    Code::RampConcurrency,
                    config_loc("prewarm_cap"),
                    format!(
                        "ramping {beyond_burst:.0} starts at {}/s takes {:.0}s, beyond the \
                         {:.0}s keep-alive — prewarmed microVMs expire before they are used",
                        faas.ramp_per_sec,
                        beyond_burst / faas.ramp_per_sec,
                        faas.keep_alive_secs
                    ),
                )
                .with_help("lower prewarm_cap or raise ramp_per_sec/keep_alive_secs"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use mashup_cloud::InstanceType;

    fn aws() -> (ProviderPreset, ClusterConfig) {
        (
            ProviderPreset::aws_like(),
            ClusterConfig::new(InstanceType::r5_large(), 8),
        )
    }

    #[test]
    fn paper_presets_are_silent() {
        let (p, c) = aws();
        assert!(analyze_config(&p, &c, &EngineParams::defaults()).is_empty());
        let gcp = ProviderPreset::gcp_like();
        assert!(analyze_config(&gcp, &c, &EngineParams::defaults()).is_empty());
    }

    #[test]
    fn non_positive_knobs_fire_m301() {
        let (mut p, mut c) = aws();
        c.nodes = 0;
        p.faas.timeout_secs = 0.0;
        p.storage.aggregate_bps = f64::NAN;
        p.faas.failure_prob = 1.5;
        let diags = analyze_config(&p, &c, &EngineParams::defaults());
        let fields: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == Code::NonPositiveConfig)
            .map(|d| match &d.location {
                Location::Config { field } => field.as_str(),
                _ => "?",
            })
            .collect();
        assert!(fields.contains(&"cluster.nodes"));
        assert!(fields.contains(&"faas.timeout_secs"));
        assert!(fields.contains(&"storage.aggregate_bps"));
        assert!(fields.contains(&"faas.failure_prob"));
        // subclusters (1) > nodes (0) also fires.
        assert!(fields.contains(&"cluster.subclusters"));
    }

    #[test]
    fn margin_at_or_above_timeout_fires_m302() {
        let (p, c) = aws();
        let mut e = EngineParams::defaults();
        e.checkpoint_margin_secs = 900.0;
        let diags = analyze_config(&p, &c, &e);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::MarginExceedsTimeout);
        assert_eq!(diags[0].severity, Severity::Error);
        e.checkpoint_margin_secs = -1.0;
        let diags = analyze_config(&p, &c, &e);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::MarginExceedsTimeout);
    }

    #[test]
    fn ramp_concurrency_error_and_warning_forms() {
        // Error: nothing can ever start.
        let (mut p, c) = aws();
        p.faas.burst_capacity = 0;
        p.faas.ramp_per_sec = 0.0;
        let diags = analyze_config(&p, &c, &EngineParams::defaults());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::RampConcurrency);
        assert_eq!(diags[0].severity, Severity::Error);
        // Warning: the prewarm pool outlives the keep-alive under the ramp.
        let (mut p, c) = aws();
        p.faas.ramp_per_sec = 0.1; // (256 - 64) / 0.1 = 1920 s > 420 s
        let diags = analyze_config(&p, &c, &EngineParams::defaults());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::RampConcurrency);
        assert_eq!(diags[0].severity, Severity::Warning);
        // Prewarm off: the warning form is moot.
        let mut e = EngineParams::defaults();
        e.prewarm = false;
        assert!(analyze_config(&p, &c, &e).is_empty());
    }
}
