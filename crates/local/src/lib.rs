//! # mashup-local
//!
//! A *real* execution backend mirroring the simulated cloud provider: a
//! fixed thread pool stands in for the VM cluster ([`VmPool`]),
//! per-invocation workers with genuine cold-start sleeps, warm-pool reuse,
//! and timeouts stand in for the FaaS platform ([`FaasPool`]), and a
//! concurrent in-memory object store ([`MemStore`]) carries the bytes.
//!
//! [`LocalBackend`] executes any `mashup-dag` workflow with user-supplied
//! closures per task, honouring the same placement semantics as the
//! simulated hybrid executor — demonstrating that the Mashup engine's
//! abstractions are not simulator-bound.

#![warn(missing_docs)]

mod backend;
mod faas_pool;
mod store;
mod vm_pool;

pub use backend::{
    ComponentCtx, LocalBackend, LocalPlacement, LocalRunReport, LocalTaskReport, TaskLogic,
};
pub use faas_pool::{FaasPool, FaasPoolConfig, InvocationOutcome};
pub use store::MemStore;
pub use vm_pool::VmPool;
