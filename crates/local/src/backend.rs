//! End-to-end local execution of workflows with real threads and bytes.
//!
//! [`LocalBackend`] drives a `mashup-dag` workflow through the same
//! phase-ordered, placement-directed execution as the simulated hybrid
//! executor — but with actual closures producing actual bytes:
//!
//! * VM-placed tasks run on the fixed [`VmPool`] (waves beyond the slots);
//! * serverless-placed tasks run as one [`FaasPool`] invocation per
//!   component, paying real cold-start sleeps;
//! * all data flows through the [`MemStore`] under the same
//!   `out:{task}:{component}` key scheme, and consumers read their
//!   producers' bytes according to the DAG's dependency patterns.
//!
//! This proves the engine abstractions are not simulator-bound and provides
//! an executable integration path for real workloads.

// This crate executes on real hardware by design: wall-clock latency is
// the measurement, and its maps are keyed handoffs between live threads
// (never order-iterated into results).
// lint: allow-file(wall-clock)
// lint: allow-file(hash-collections)

use crate::faas_pool::{FaasPool, InvocationOutcome};
use crate::store::MemStore;
use crate::vm_pool::VmPool;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mashup_dag::{TaskRef, Workflow};

/// What a component sees when it runs.
pub struct ComponentCtx {
    /// Task name.
    pub task: String,
    /// Component index within the task.
    pub component: usize,
    /// Bytes produced by the producer components this one depends on
    /// (initial-phase components get the initial input instead).
    pub inputs: Vec<Bytes>,
}

/// The executable logic of one task: takes a component context, returns the
/// component's output bytes.
pub type TaskLogic = Arc<dyn Fn(&ComponentCtx) -> Vec<u8> + Send + Sync>;

/// Where a task runs locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalPlacement {
    /// The fixed thread pool ("cluster").
    Pool,
    /// Per-invocation workers ("serverless").
    Spawn,
}

/// Per-task outcome of a local run.
#[derive(Debug, Clone)]
pub struct LocalTaskReport {
    /// Task name.
    pub name: String,
    /// Where it ran.
    pub placement: LocalPlacement,
    /// Component count.
    pub components: usize,
    /// Wall time of the task in seconds.
    pub wall_secs: f64,
    /// Cold starts paid (serverless only).
    pub cold_starts: u64,
    /// Invocations that timed out and were retried on the pool.
    pub timeouts: u64,
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct LocalRunReport {
    /// End-to-end wall time in seconds.
    pub wall_secs: f64,
    /// Per-task reports in completion order.
    pub tasks: Vec<LocalTaskReport>,
}

/// The local execution backend.
pub struct LocalBackend {
    vm: VmPool,
    faas: FaasPool,
    store: MemStore,
    logic: HashMap<String, TaskLogic>,
}

impl LocalBackend {
    /// Creates a backend with `slots` pool workers and the given FaaS pool.
    pub fn new(slots: usize, faas: FaasPool) -> Self {
        LocalBackend {
            vm: VmPool::new(slots),
            faas,
            store: MemStore::new(),
            logic: HashMap::new(),
        }
    }

    /// The shared store (for seeding initial input and reading outputs).
    pub fn store(&self) -> &MemStore {
        &self.store
    }

    /// Registers the executable logic for a task name.
    pub fn register(&mut self, task: impl Into<String>, logic: TaskLogic) {
        self.logic.insert(task.into(), logic);
    }

    /// Registers a simple byte-transform for a task.
    pub fn register_fn(
        &mut self,
        task: impl Into<String>,
        f: impl Fn(&ComponentCtx) -> Vec<u8> + Send + Sync + 'static,
    ) {
        self.register(task, Arc::new(f));
    }

    /// Runs the workflow phase by phase under `placement_of`. Components of
    /// serverless tasks that time out are transparently retried on the pool
    /// (the local analogue of falling back after a platform kill).
    ///
    /// Panics if a task has no registered logic.
    pub fn run(
        &self,
        workflow: &Workflow,
        placement_of: impl Fn(TaskRef) -> LocalPlacement,
    ) -> LocalRunReport {
        let begin = Instant::now();
        let mut reports = Vec::new();
        for (pi, phase) in workflow.phases.iter().enumerate() {
            // Tasks within a phase run concurrently; spawn each on its own
            // coordinator thread and join at the phase barrier.
            let handles: Vec<_> = (0..phase.tasks.len())
                .map(|ti| {
                    let r = TaskRef::new(pi, ti);
                    let placement = placement_of(r);
                    self.run_task(workflow, r, placement)
                })
                .collect();
            for h in handles {
                reports.push(h);
            }
        }
        LocalRunReport {
            wall_secs: begin.elapsed().as_secs_f64(),
            tasks: reports,
        }
    }

    fn inputs_for(&self, workflow: &Workflow, r: TaskRef, comp: usize) -> Vec<Bytes> {
        let t = workflow.task(r);
        if t.deps.is_empty() {
            return self
                .store
                .get("initial")
                .map(|b| vec![b])
                .unwrap_or_default();
        }
        let mut inputs = Vec::new();
        for (producer, comps) in workflow.component_deps(r, comp) {
            let pname = &workflow.task(producer).name;
            for pc in comps {
                inputs.push(self.store.must_get(&format!("out:{pname}:{pc}")));
            }
        }
        inputs
    }

    fn run_task(
        &self,
        workflow: &Workflow,
        r: TaskRef,
        placement: LocalPlacement,
    ) -> LocalTaskReport {
        let t = workflow.task(r);
        let logic = self
            .logic
            .get(&t.name)
            .unwrap_or_else(|| panic!("no logic registered for task '{}'", t.name))
            .clone();
        let begin = Instant::now();
        let mut cold_starts = 0u64;
        let mut timeouts = 0u64;

        match placement {
            LocalPlacement::Pool => {
                let store = self.store.clone();
                let name = t.name.clone();
                let inputs: Vec<Vec<Bytes>> = (0..t.components)
                    .map(|c| self.inputs_for(workflow, r, c))
                    .collect();
                let inputs = Arc::new(inputs);
                let logic2 = logic.clone();
                self.vm.run_batch(t.components, move |i| {
                    let ctx = ComponentCtx {
                        task: name.clone(),
                        component: i,
                        inputs: inputs[i].clone(),
                    };
                    let out = logic2(&ctx);
                    store.put(format!("out:{name}:{i}"), out);
                });
            }
            LocalPlacement::Spawn => {
                let code_key = t
                    .profile
                    .code_family
                    .clone()
                    .unwrap_or_else(|| t.name.clone());
                let results: Vec<_> = (0..t.components)
                    .map(|i| {
                        let ctx = ComponentCtx {
                            task: t.name.clone(),
                            component: i,
                            inputs: self.inputs_for(workflow, r, i),
                        };
                        let logic = logic.clone();
                        self.faas.invoke(&code_key, move || logic(&ctx))
                    })
                    .collect();
                let retry: Mutex<Vec<usize>> = Mutex::new(Vec::new());
                for (i, h) in results.into_iter().enumerate() {
                    let (value, outcome) = h.join().expect("invocation thread");
                    match outcome {
                        InvocationOutcome::Completed { cold } => {
                            if cold {
                                cold_starts += 1;
                            }
                            self.store.put(
                                format!("out:{}:{i}", t.name),
                                value.expect("completed invocations carry a value"),
                            );
                        }
                        InvocationOutcome::TimedOut => {
                            timeouts += 1;
                            retry.lock().push(i);
                        }
                    }
                }
                // Fallback: timed-out components rerun on the pool, which
                // has no execution cap.
                for i in retry.into_inner() {
                    let ctx = ComponentCtx {
                        task: t.name.clone(),
                        component: i,
                        inputs: self.inputs_for(workflow, r, i),
                    };
                    let out = logic(&ctx);
                    self.store.put(format!("out:{}:{i}", t.name), out);
                }
            }
        }

        LocalTaskReport {
            name: t.name.clone(),
            placement,
            components: t.components,
            wall_secs: begin.elapsed().as_secs_f64(),
            cold_starts,
            timeouts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faas_pool::FaasPoolConfig;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};
    use std::time::Duration;

    fn sum_pipeline() -> Workflow {
        // 8 producers each emit their index; a fan-in merge sums them.
        let mut b = WorkflowBuilder::new("sum");
        b.begin_phase();
        let p = b.add_task(Task::new("emit", 8, TaskProfile::trivial()));
        b.begin_phase();
        let m = b.add_task(Task::new("sum", 1, TaskProfile::trivial()));
        b.depend(m, p, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    fn backend() -> LocalBackend {
        let mut be = LocalBackend::new(
            4,
            FaasPool::new(FaasPoolConfig {
                cold_start: Duration::from_millis(5),
                keep_alive: Duration::from_secs(5),
                timeout: Duration::from_secs(10),
            }),
        );
        be.register_fn("emit", |ctx| vec![ctx.component as u8]);
        be.register_fn("sum", |ctx| {
            let total: u64 = ctx
                .inputs
                .iter()
                .flat_map(|b| b.iter())
                .map(|&x| x as u64)
                .sum();
            total.to_le_bytes().to_vec()
        });
        be
    }

    fn read_sum(be: &LocalBackend) -> u64 {
        let out = be.store().must_get("out:sum:0");
        u64::from_le_bytes(out.as_ref().try_into().expect("8 bytes"))
    }

    #[test]
    fn pool_execution_computes_correct_result() {
        let be = backend();
        let report = be.run(&sum_pipeline(), |_| LocalPlacement::Pool);
        assert_eq!(read_sum(&be), (0..8).sum::<u64>());
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.tasks[0].placement, LocalPlacement::Pool);
    }

    #[test]
    fn spawn_execution_computes_identical_result() {
        let be = backend();
        let report = be.run(&sum_pipeline(), |_| LocalPlacement::Spawn);
        assert_eq!(read_sum(&be), (0..8).sum::<u64>());
        let emit = &report.tasks[0];
        assert!(emit.cold_starts >= 1, "at least one cold start");
    }

    #[test]
    fn hybrid_placement_crosses_the_boundary() {
        let be = backend();
        be.run(&sum_pipeline(), |r| {
            if r.phase == 0 {
                LocalPlacement::Spawn
            } else {
                LocalPlacement::Pool
            }
        });
        assert_eq!(read_sum(&be), (0..8).sum::<u64>());
    }

    #[test]
    fn timed_out_components_fall_back_to_the_pool() {
        let mut be = LocalBackend::new(
            2,
            FaasPool::new(FaasPoolConfig {
                cold_start: Duration::from_millis(1),
                keep_alive: Duration::from_secs(5),
                timeout: Duration::from_millis(20),
            }),
        );
        be.register_fn("emit", |ctx| {
            // Component 0 overruns the FaaS budget.
            if ctx.component == 0 {
                std::thread::sleep(Duration::from_millis(60));
            }
            vec![ctx.component as u8]
        });
        be.register_fn("sum", |ctx| {
            let total: u64 = ctx
                .inputs
                .iter()
                .flat_map(|b| b.iter())
                .map(|&x| x as u64)
                .sum();
            total.to_le_bytes().to_vec()
        });
        let report = be.run(&sum_pipeline(), |r| {
            if r.phase == 0 {
                LocalPlacement::Spawn
            } else {
                LocalPlacement::Pool
            }
        });
        assert_eq!(read_sum(&be), (0..8).sum::<u64>());
        assert_eq!(report.tasks[0].timeouts, 1);
    }

    #[test]
    fn initial_input_reaches_phase_zero() {
        let mut be = backend();
        be.store().put("initial", vec![100u8]);
        be.register_fn("emit", |ctx| {
            let base = ctx.inputs.first().map(|b| b[0]).unwrap_or(0);
            vec![base + ctx.component as u8]
        });
        be.run(&sum_pipeline(), |_| LocalPlacement::Pool);
        assert_eq!(read_sum(&be), (0..8).map(|i| 100 + i).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "no logic registered")]
    fn missing_logic_panics() {
        let be = LocalBackend::new(2, FaasPool::default());
        be.run(&sum_pipeline(), |_| LocalPlacement::Pool);
    }
}
