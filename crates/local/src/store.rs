//! An in-memory object store for the local execution backend.
//!
//! The real-execution counterpart of the simulated S3 model: a concurrent
//! key→bytes map that workflow components use to exchange data across the
//! thread-pool "cluster" and the per-invocation "functions", exactly as the
//! simulated executors exchange data through the simulated store.

// A concurrent key->bytes map: strictly keyed gets/puts from live
// threads, never order-iterated into results.
// lint: allow-file(hash-collections)

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A shareable in-memory object store. Cloning shares the same map.
#[derive(Clone, Default)]
pub struct MemStore {
    inner: Arc<RwLock<HashMap<String, Bytes>>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `bytes` under `key`, replacing any previous value.
    pub fn put(&self, key: impl Into<String>, bytes: impl Into<Bytes>) {
        self.inner.write().insert(key.into(), bytes.into());
    }

    /// Fetches the object under `key`.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.inner.read().get(key).cloned()
    }

    /// Fetches `key`, panicking with a scheduling-bug diagnostic when the
    /// producer has not written it yet (mirrors the simulated store's
    /// `assert_present`).
    pub fn must_get(&self, key: &str) -> Bytes {
        self.get(key)
            .unwrap_or_else(|| panic!("object '{key}' read before it was written: scheduling bug"))
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.inner.read().values().map(|b| b.len()).sum()
    }

    /// Removes an object, returning it.
    pub fn remove(&self, key: &str) -> Option<Bytes> {
        self.inner.write().remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn put_get_round_trip() {
        let s = MemStore::new();
        s.put("a", vec![1, 2, 3]);
        assert_eq!(s.get("a").expect("present").as_ref(), &[1, 2, 3]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 3);
        assert_eq!(s.remove("a").expect("present").len(), 3);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling bug")]
    fn must_get_panics_on_missing() {
        MemStore::new().must_get("nope");
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let s = MemStore::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = s.clone();
                thread::spawn(move || {
                    for j in 0..100 {
                        s.put(format!("k{i}-{j}"), vec![i as u8; 16]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer finished");
        }
        assert_eq!(s.len(), 800);
        assert_eq!(s.total_bytes(), 800 * 16);
    }
}
