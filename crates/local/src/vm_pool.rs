//! A fixed-size worker pool standing in for the VM cluster.
//!
//! `nodes × cores` long-lived worker threads pull jobs from a shared
//! channel — the local-execution analogue of the simulated cluster's core
//! slots: submitting more jobs than workers serializes them in waves, just
//! like the simulator's `Resource` admission.

// Worker scheduling measures real elapsed time on real threads.
// lint: allow-file(wall-clock)

use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of worker threads. Dropping the pool joins all workers.
pub struct VmPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    slots: usize,
    executed: Arc<AtomicUsize>,
}

impl VmPool {
    /// Creates a pool with `slots` worker threads (cluster nodes × cores).
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "pool needs at least one slot");
        let (tx, rx) = unbounded::<Job>();
        let executed = Arc::new(AtomicUsize::new(0));
        let workers = (0..slots)
            .map(|i| {
                let rx = rx.clone();
                let executed = executed.clone();
                std::thread::Builder::new()
                    .name(format!("vm-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        VmPool {
            tx: Some(tx),
            workers,
            slots,
            executed,
        }
    }

    /// Number of worker slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Jobs completed so far.
    pub fn executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }

    /// Submits a job; it runs on the next free worker.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs `n` jobs produced by `make_job(i)` and blocks until all finish.
    pub fn run_batch(&self, n: usize, make_job: impl Fn(usize) + Send + Sync + 'static) {
        let before = self.executed();
        let make_job = Arc::new(make_job);
        let (done_tx, done_rx) = unbounded::<()>();
        for i in 0..n {
            let make_job = make_job.clone();
            let done_tx = done_tx.clone();
            self.submit(move || {
                make_job(i);
                let _ = done_tx.send(());
            });
        }
        drop(done_tx);
        for _ in 0..n {
            done_rx.recv().expect("all jobs complete");
        }
        // The worker bumps `executed` after the job body (which sends the
        // done signal) returns, so the counter can trail the last signal by
        // an instant; wait it out so `executed()` is consistent with the
        // batch having finished.
        while self.executed() < before + n {
            std::thread::yield_now();
        }
    }
}

impl Drop for VmPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn batch_runs_all_jobs() {
        let pool = VmPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        pool.run_batch(100, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.executed(), 100);
    }

    #[test]
    fn limited_slots_serialize_in_waves() {
        let pool = VmPool::new(2);
        let start = Instant::now();
        pool.run_batch(6, move |_| {
            std::thread::sleep(Duration::from_millis(30));
        });
        // 6 jobs of 30 ms on 2 slots -> 3 waves -> >= 90 ms.
        assert!(start.elapsed() >= Duration::from_millis(85));
    }

    #[test]
    fn wide_pool_runs_in_parallel() {
        let pool = VmPool::new(8);
        let start = Instant::now();
        pool.run_batch(8, move |_| {
            std::thread::sleep(Duration::from_millis(50));
        });
        // All parallel: well under the 400 ms sequential time.
        assert!(start.elapsed() < Duration::from_millis(300));
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = VmPool::new(3);
        pool.run_batch(10, |_| {});
        drop(pool); // must not hang or panic
    }
}
