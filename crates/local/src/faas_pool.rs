//! Per-invocation "serverless" workers with cold starts and timeouts.
//!
//! Each invocation runs on a freshly spawned thread (a microVM stand-in).
//! First use of a code identity pays a configurable cold-start sleep;
//! finished workers leave a warm token behind for a keep-alive window, and
//! reusing one skips the cold start — the local-execution mirror of the
//! simulated FaaS platform. Timeouts are enforced cooperatively: an
//! invocation that runs past its deadline is reported as timed out (its
//! result is discarded), matching how the checkpointing executor treats the
//! platform cap as a hard budget.

// Real cold-start sleeps and keep-alive expiry need the real clock, and
// the warm-token map is keyed by code identity (never order-iterated).
// lint: allow-file(wall-clock)
// lint: allow-file(hash-collections)

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Platform constants for the local FaaS pool (durations are real time, so
/// tests scale them to milliseconds).
#[derive(Debug, Clone)]
pub struct FaasPoolConfig {
    /// Cold-start sleep before the payload runs.
    pub cold_start: Duration,
    /// How long a finished worker stays warm.
    pub keep_alive: Duration,
    /// Hard execution budget per invocation (payload time).
    pub timeout: Duration,
}

impl Default for FaasPoolConfig {
    fn default() -> Self {
        FaasPoolConfig {
            cold_start: Duration::from_millis(20),
            keep_alive: Duration::from_secs(5),
            timeout: Duration::from_secs(60),
        }
    }
}

/// Result of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationOutcome {
    /// Completed within budget; whether the start was cold.
    Completed {
        /// True when the invocation paid the cold start.
        cold: bool,
    },
    /// Ran past the timeout; the result was discarded.
    TimedOut,
}

#[derive(Default)]
struct WarmPools {
    by_key: HashMap<String, Vec<Instant>>, // expiry instants
    cold_starts: u64,
    warm_starts: u64,
}

/// A local serverless platform: spawn-per-invocation with warm reuse.
#[derive(Clone, Default)]
pub struct FaasPool {
    cfg: Arc<FaasPoolConfig>,
    pools: Arc<Mutex<WarmPools>>,
}

impl FaasPool {
    /// Creates a pool with the given constants.
    pub fn new(cfg: FaasPoolConfig) -> Self {
        FaasPool {
            cfg: Arc::new(cfg),
            pools: Arc::default(),
        }
    }

    /// Cold starts paid so far.
    pub fn cold_starts(&self) -> u64 {
        self.pools.lock().cold_starts
    }

    /// Warm starts so far.
    pub fn warm_starts(&self) -> u64 {
        self.pools.lock().warm_starts
    }

    fn take_warm(&self, key: &str) -> bool {
        let mut p = self.pools.lock();
        let now = Instant::now();
        if let Some(pool) = p.by_key.get_mut(key) {
            pool.retain(|&exp| exp > now);
            if pool.pop().is_some() {
                p.warm_starts += 1;
                return true;
            }
        }
        p.cold_starts += 1;
        false
    }

    fn return_warm(&self, key: &str) {
        let mut p = self.pools.lock();
        p.by_key
            .entry(key.to_string())
            .or_default()
            .push(Instant::now() + self.cfg.keep_alive);
    }

    /// Invokes `payload` under code identity `code_key` on a fresh thread,
    /// returning a join handle yielding the payload's value and outcome.
    pub fn invoke<T: Send + 'static>(
        &self,
        code_key: &str,
        payload: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::JoinHandle<(Option<T>, InvocationOutcome)> {
        let pool = self.clone();
        let key = code_key.to_string();
        std::thread::Builder::new()
            .name(format!("faas-{key}"))
            .spawn(move || {
                let warm = pool.take_warm(&key);
                if !warm {
                    std::thread::sleep(pool.cfg.cold_start);
                }
                let begin = Instant::now();
                let value = payload();
                let elapsed = begin.elapsed();
                if elapsed > pool.cfg.timeout {
                    // Over budget: the platform would have killed it; the
                    // worker is not rewarmed and the result is dropped.
                    (None, InvocationOutcome::TimedOut)
                } else {
                    pool.return_warm(&key);
                    (Some(value), InvocationOutcome::Completed { cold: !warm })
                }
            })
            .expect("spawn invocation thread")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> FaasPoolConfig {
        FaasPoolConfig {
            cold_start: Duration::from_millis(30),
            keep_alive: Duration::from_secs(10),
            timeout: Duration::from_millis(200),
        }
    }

    #[test]
    fn first_invocation_is_cold_second_is_warm() {
        let pool = FaasPool::new(fast_cfg());
        let (v, o) = pool.invoke("t", || 41 + 1).join().expect("join");
        assert_eq!(v, Some(42));
        assert_eq!(o, InvocationOutcome::Completed { cold: true });
        let (_, o2) = pool.invoke("t", || 0).join().expect("join");
        assert_eq!(o2, InvocationOutcome::Completed { cold: false });
        assert_eq!(pool.cold_starts(), 1);
        assert_eq!(pool.warm_starts(), 1);
    }

    #[test]
    fn different_code_keys_cold_start_independently() {
        let pool = FaasPool::new(fast_cfg());
        pool.invoke("a", || ()).join().expect("join");
        let (_, o) = pool.invoke("b", || ()).join().expect("join");
        assert_eq!(o, InvocationOutcome::Completed { cold: true });
        assert_eq!(pool.cold_starts(), 2);
    }

    #[test]
    fn cold_start_costs_real_time() {
        let pool = FaasPool::new(fast_cfg());
        let begin = Instant::now();
        pool.invoke("t", || ()).join().expect("join");
        assert!(begin.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn overrunning_invocation_times_out() {
        let pool = FaasPool::new(fast_cfg());
        let (v, o) = pool
            .invoke("slow", || {
                std::thread::sleep(Duration::from_millis(300));
                7
            })
            .join()
            .expect("join");
        assert_eq!(o, InvocationOutcome::TimedOut);
        assert_eq!(v, None);
        // Timed-out workers are not rewarmed.
        let (_, o2) = pool.invoke("slow", || ()).join().expect("join");
        assert_eq!(o2, InvocationOutcome::Completed { cold: true });
    }

    #[test]
    fn concurrent_invocations_all_complete() {
        let pool = FaasPool::new(fast_cfg());
        let handles: Vec<_> = (0..32).map(|i| pool.invoke("par", move || i * 2)).collect();
        let mut results: Vec<i32> = handles
            .into_iter()
            .map(|h| h.join().expect("join").0.expect("completed"))
            .collect();
        results.sort();
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }
}
