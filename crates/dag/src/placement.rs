//! Placement plans: which platform runs each task.
//!
//! These types live in `mashup-dag` (rather than the engine crate) so that
//! plan-consuming tooling — notably the `mashup-analyze` diagnostics — can
//! reason about placements without depending on the engine.

use crate::workflow::{TaskRef, Workflow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two execution platforms of the hybrid environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Traditional VM-based cluster.
    VmCluster,
    /// Serverless (FaaS) platform.
    Serverless,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::VmCluster => write!(f, "VM"),
            Platform::Serverless => write!(f, "serverless"),
        }
    }
}

/// Error returned when a plan is asked about a task it never assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnassignedTask(pub TaskRef);

impl fmt::Display for UnassignedTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no placement for task {}", self.0)
    }
}

impl std::error::Error for UnassignedTask {}

/// A complete task-to-platform assignment for one workflow.
///
/// Stored as a dense per-phase table indexed by `(phase, task)` — plan
/// lookups sit on the executor's and PDC's hot paths, and the table shape
/// is a canonical function of the assignment set, so derived equality is
/// exact. Serialized as a list of `(task, platform)` pairs (JSON maps need
/// string keys, and `TaskRef` is a struct) — the same wire format the
/// `BTreeMap` representation produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(from = "Vec<(TaskRef, Platform)>", into = "Vec<(TaskRef, Platform)>")]
pub struct PlacementPlan {
    assignments: Vec<Vec<Option<Platform>>>,
}

impl From<Vec<(TaskRef, Platform)>> for PlacementPlan {
    fn from(v: Vec<(TaskRef, Platform)>) -> Self {
        let mut plan = PlacementPlan::new();
        for (r, p) in v {
            plan.set(r, p);
        }
        plan
    }
}

impl From<PlacementPlan> for Vec<(TaskRef, Platform)> {
    fn from(p: PlacementPlan) -> Self {
        p.iter().collect()
    }
}

impl PlacementPlan {
    /// An empty plan.
    pub fn new() -> Self {
        PlacementPlan {
            assignments: Vec::new(),
        }
    }

    /// A plan putting every task of `w` on `platform`, pre-sized from the
    /// workflow's phase shape.
    pub fn uniform(w: &Workflow, platform: Platform) -> Self {
        PlacementPlan {
            assignments: w
                .phases
                .iter()
                .map(|p| vec![Some(platform); p.tasks.len()])
                .collect(),
        }
    }

    /// Assigns a task, growing the table as needed.
    pub fn set(&mut self, task: TaskRef, platform: Platform) {
        if task.phase >= self.assignments.len() {
            self.assignments.resize(task.phase + 1, Vec::new());
        }
        let row = &mut self.assignments[task.phase];
        if task.task >= row.len() {
            row.resize(task.task + 1, None);
        }
        row[task.task] = Some(platform);
    }

    /// The platform of `task`, or [`UnassignedTask`] when the plan never
    /// assigned it.
    pub fn platform(&self, task: TaskRef) -> Result<Platform, UnassignedTask> {
        self.assignments
            .get(task.phase)
            .and_then(|row| row.get(task.task).copied().flatten())
            .ok_or(UnassignedTask(task))
    }

    /// True when every task of `w` has an assignment.
    pub fn covers(&self, w: &Workflow) -> bool {
        w.task_refs().all(|r| self.platform(r).is_ok())
    }

    /// Number of tasks assigned to `platform`.
    pub fn count(&self, platform: Platform) -> usize {
        self.iter().filter(|&(_, p)| p == platform).count()
    }

    /// True if at least one task runs on the VM cluster.
    pub fn uses_cluster(&self) -> bool {
        self.count(Platform::VmCluster) > 0
    }

    /// True if at least one task runs serverless.
    pub fn uses_serverless(&self) -> bool {
        self.count(Platform::Serverless) > 0
    }

    /// Iterates over `(task, platform)` in task order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskRef, Platform)> + '_ {
        self.assignments.iter().enumerate().flat_map(|(pi, row)| {
            row.iter()
                .enumerate()
                .filter_map(move |(ti, p)| p.map(|p| (TaskRef::new(pi, ti), p)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::profile::TaskProfile;
    use crate::workflow::Task;

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(Task::new("A", 2, TaskProfile::trivial()));
        b.add_task(Task::new("B", 3, TaskProfile::trivial()));
        b.build().expect("valid")
    }

    #[test]
    fn uniform_covers_all_tasks() {
        let w = wf();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        assert!(plan.covers(&w));
        assert_eq!(plan.count(Platform::Serverless), 2);
        assert!(!plan.uses_cluster());
        assert!(plan.uses_serverless());
    }

    #[test]
    fn set_overrides() {
        let w = wf();
        let mut plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        plan.set(TaskRef::new(0, 1), Platform::Serverless);
        assert_eq!(plan.platform(TaskRef::new(0, 0)), Ok(Platform::VmCluster));
        assert_eq!(plan.platform(TaskRef::new(0, 1)), Ok(Platform::Serverless));
        assert!(plan.uses_cluster() && plan.uses_serverless());
    }

    #[test]
    fn missing_assignment_is_an_error() {
        let plan = PlacementPlan::new();
        let err = plan.platform(TaskRef::new(0, 0)).unwrap_err();
        assert_eq!(err, UnassignedTask(TaskRef::new(0, 0)));
        assert_eq!(err.to_string(), "no placement for task P0T0");
        // Sparse assignments error for the gaps, not just out-of-range.
        let mut sparse = PlacementPlan::new();
        sparse.set(TaskRef::new(1, 1), Platform::Serverless);
        assert!(sparse.platform(TaskRef::new(1, 0)).is_err());
        assert!(sparse.platform(TaskRef::new(0, 0)).is_err());
        assert_eq!(
            sparse.platform(TaskRef::new(1, 1)),
            Ok(Platform::Serverless)
        );
    }

    #[test]
    fn construction_order_does_not_affect_equality() {
        let mut a = PlacementPlan::new();
        a.set(TaskRef::new(0, 0), Platform::VmCluster);
        a.set(TaskRef::new(1, 2), Platform::Serverless);
        let mut b = PlacementPlan::new();
        b.set(TaskRef::new(1, 2), Platform::Serverless);
        b.set(TaskRef::new(0, 0), Platform::VmCluster);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![
                (TaskRef::new(0, 0), Platform::VmCluster),
                (TaskRef::new(1, 2), Platform::Serverless),
            ]
        );
    }

    #[test]
    fn serde_round_trip() {
        let w = wf();
        let plan = PlacementPlan::uniform(&w, Platform::Serverless);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: PlacementPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(plan, back);
    }

    #[test]
    fn platform_display() {
        assert_eq!(Platform::VmCluster.to_string(), "VM");
        assert_eq!(Platform::Serverless.to_string(), "serverless");
    }
}
