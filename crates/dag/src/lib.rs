//! # mashup-dag
//!
//! The scientific-workflow DAG model used throughout the Mashup
//! reproduction, following the paper's §2 vocabulary:
//!
//! * **component** — smallest execution unit; a task's components run the
//!   same code over different inputs;
//! * **task** — a named group of identical components;
//! * **phase** — tasks with no mutual dependencies, runnable concurrently;
//! * **workflow** — an ordered list of phases with component-level
//!   dependency edges between tasks of different phases.
//!
//! Dependencies use the paper's connection dynamics (fan-out, fan-in,
//! strong/all-to-all) via [`DependencyPattern`]. Task executables are
//! replaced by [`TaskProfile`]s — see `DESIGN.md` for the substitution
//! rationale. Workflows can be built with [`WorkflowBuilder`], derived from
//! a raw task graph with [`from_task_graph`], serialized to/from JSON with
//! [`to_json`]/[`from_json`], and exported to Graphviz with [`to_dot`].

#![warn(missing_docs)]

mod arena;
mod builder;
mod dot;
mod fusion;
mod graph;
mod pattern;
mod placement;
mod profile;
mod workflow;

pub use arena::{Symbol, TaskArena};
pub use builder::{validate, ValidationError, WorkflowBuilder};
pub use dot::to_dot;
pub use fusion::{fusable_pairs, fuse, FusionCandidate, FusionError};
pub use graph::{from_task_graph, GraphError, RawEdge};
pub use pattern::DependencyPattern;
pub use placement::{PlacementPlan, Platform, UnassignedTask};
pub use profile::TaskProfile;
pub use workflow::{Phase, Task, TaskDep, TaskRef, Workflow, WorkflowData};

/// Serializes a workflow to pretty-printed JSON.
pub fn to_json(w: &Workflow) -> String {
    serde_json::to_string_pretty(w).expect("workflow serialization is infallible")
}

/// Parses and validates a workflow from JSON.
pub fn from_json(json: &str) -> Result<Workflow, String> {
    let w: Workflow = serde_json::from_str(json).map_err(|e| e.to_string())?;
    validate(&w).map_err(|e| e.to_string())?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new("sample");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, TaskProfile::trivial().compute(2.0)));
        b.begin_phase();
        let c = b.add_task(Task::new("B", 1, TaskProfile::trivial()));
        b.depend(c, a, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    #[test]
    fn json_round_trip() {
        let w = sample();
        let json = to_json(&w);
        let back = from_json(&json).expect("parses");
        assert_eq!(w, back);
    }

    #[test]
    fn from_json_rejects_invalid_structure() {
        let mut w = sample();
        w.phases[1].tasks[0].deps[0].producer = TaskRef::new(5, 5);
        let json = serde_json::to_string(&w).expect("serialize");
        let err = from_json(&json).unwrap_err();
        assert!(err.contains("nonexistent"), "got: {err}");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }
}
