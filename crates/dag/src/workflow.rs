//! Workflow, phase, and task types (paper §2 definitions).
//!
//! A *component* is the smallest execution unit; components running the same
//! code within a phase form a *task*; all tasks that may run concurrently
//! form a *phase*; an ordered list of phases with component-level dependency
//! edges is a *workflow*.

use crate::arena::TaskArena;
use crate::pattern::DependencyPattern;
use crate::profile::TaskProfile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Location of a task inside a workflow: `(phase index, task index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskRef {
    /// Index of the phase the task belongs to.
    pub phase: usize,
    /// Index of the task within its phase.
    pub task: usize,
}

impl TaskRef {
    /// Convenience constructor.
    pub fn new(phase: usize, task: usize) -> Self {
        TaskRef { phase, task }
    }
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}T{}", self.phase, self.task)
    }
}

/// A dependency of a task on a producer task in an earlier phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDep {
    /// The producer task.
    pub producer: TaskRef,
    /// Component-level wiring pattern.
    pub pattern: DependencyPattern,
}

/// A task: `components` copies of the same logic over different inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable unique name (e.g. `"Individual"`).
    pub name: String,
    /// Number of parallel components.
    pub components: usize,
    /// Resource profile standing in for the task executable.
    pub profile: TaskProfile,
    /// Dependencies on earlier-phase tasks. Empty for initial tasks, which
    /// read the workflow's initial input dataset instead.
    pub deps: Vec<TaskDep>,
}

impl Task {
    /// Creates a dependency-free task.
    pub fn new(name: impl Into<String>, components: usize, profile: TaskProfile) -> Self {
        Task {
            name: name.into(),
            components,
            profile,
            deps: Vec::new(),
        }
    }
}

/// A set of tasks with no mutual dependencies, runnable concurrently.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Phase {
    /// The tasks of this phase.
    pub tasks: Vec<Task>,
}

impl Phase {
    /// Total number of components across tasks in this phase (the phase's
    /// maximum parallelism).
    pub fn width(&self) -> usize {
        self.tasks.iter().map(|t| t.components).sum()
    }
}

/// Serialized form of a [`Workflow`]: the semantic fields only (the
/// arena index is derived state, rebuilt on demand).
#[derive(Serialize, Deserialize)]
pub struct WorkflowData {
    /// Workflow name.
    pub name: String,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
    /// Size of the initial input dataset in bytes.
    pub initial_input_bytes: f64,
}

/// A scientific workflow: an ordered list of phases. Dependencies always
/// point from later phases to earlier ones, so the phase order is a valid
/// topological schedule.
#[derive(Debug, Serialize, Deserialize)]
#[serde(from = "WorkflowData", into = "WorkflowData")]
pub struct Workflow {
    /// Workflow name (e.g. `"1000Genome"`).
    pub name: String,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
    /// Size of the initial input dataset in bytes (informational; initial
    /// tasks additionally declare per-component input bytes).
    pub initial_input_bytes: f64,
    /// Lazily-built arena index (flat task table, interned names, CSR edges
    /// in both directions). Built on the first [`arena`](Workflow::arena) /
    /// [`consumers`](Workflow::consumers) call (or eagerly by the builder);
    /// semantic fields must not be mutated after that point — clone the
    /// workflow instead, which resets the index.
    arena_cache: OnceLock<TaskArena>,
}

impl From<WorkflowData> for Workflow {
    fn from(d: WorkflowData) -> Self {
        Workflow::new(d.name, d.phases, d.initial_input_bytes)
    }
}

impl From<Workflow> for WorkflowData {
    fn from(w: Workflow) -> Self {
        WorkflowData {
            name: w.name,
            phases: w.phases,
            initial_input_bytes: w.initial_input_bytes,
        }
    }
}

impl Clone for Workflow {
    fn clone(&self) -> Self {
        // The index is cheap to rebuild and cloning is the sanctioned way
        // to mutate a workflow, so the clone starts with a fresh cache.
        Workflow::new(
            self.name.clone(),
            self.phases.clone(),
            self.initial_input_bytes,
        )
    }
}

impl PartialEq for Workflow {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.phases == other.phases
            && self.initial_input_bytes == other.initial_input_bytes
    }
}

impl Workflow {
    /// Assembles a workflow from parts (no validation; see
    /// [`validate`](crate::validate)).
    pub fn new(name: impl Into<String>, phases: Vec<Phase>, initial_input_bytes: f64) -> Self {
        Workflow {
            name: name.into(),
            phases,
            initial_input_bytes,
            arena_cache: OnceLock::new(),
        }
    }

    /// The arena/SoA index over this workflow's tasks and edges, built on
    /// first use: flat ids, interned name symbols, O(1) name lookup, and
    /// CSR consumer/producer adjacency.
    pub fn arena(&self) -> &TaskArena {
        self.arena_cache.get_or_init(|| TaskArena::build(self))
    }

    /// Builds the arena index now (the builder calls this so fully-built
    /// workflows never pay the cost on a hot path).
    pub(crate) fn prewarm_index(&self) {
        let _ = self.arena();
    }
    /// Looks up a task by reference. Panics on an out-of-range reference
    /// (validated workflows never contain one).
    pub fn task(&self, r: TaskRef) -> &Task {
        &self.phases[r.phase].tasks[r.task]
    }

    /// Looks up a task by name via the arena's interned-name table (O(1);
    /// the first occurrence wins, as the old linear scan did).
    pub fn task_by_name(&self, name: &str) -> Option<(TaskRef, &Task)> {
        self.arena().lookup(name).map(|(r, _)| (r, self.task(r)))
    }

    /// Iterates over all task references in phase order.
    pub fn task_refs(&self) -> impl Iterator<Item = TaskRef> + '_ {
        self.phases
            .iter()
            .enumerate()
            .flat_map(|(pi, phase)| (0..phase.tasks.len()).map(move |ti| TaskRef::new(pi, ti)))
    }

    /// Number of tasks across all phases.
    pub fn task_count(&self) -> usize {
        self.phases.iter().map(|p| p.tasks.len()).sum()
    }

    /// Number of components across all tasks (paper: 2,506 for 1000Genome,
    /// 404 for SRAsearch, 2,007 for Epigenomics).
    pub fn component_count(&self) -> usize {
        self.phases.iter().map(|p| p.width()).sum()
    }

    /// Maximum phase width (the peak parallelism a cluster must provision
    /// for; the over-provisioning motivation of §1).
    pub fn max_width(&self) -> usize {
        self.phases.iter().map(|p| p.width()).max().unwrap_or(0)
    }

    /// The tasks that consume a given task's output, with patterns, in
    /// phase order. Served from the CSR index (O(1) after the first call).
    pub fn consumers(&self, producer: TaskRef) -> &[(TaskRef, DependencyPattern)] {
        self.arena().consumers(producer)
    }

    /// Component-level dependencies of `(consumer, comp)`: each entry is a
    /// producer task plus the producer component indices read.
    pub fn component_deps(&self, consumer: TaskRef, comp: usize) -> Vec<(TaskRef, Vec<usize>)> {
        let c = self.task(consumer);
        c.deps
            .iter()
            .map(|d| {
                let p = self.task(d.producer);
                (
                    d.producer,
                    d.pattern
                        .producer_components(p.components, c.components, comp),
                )
            })
            .collect()
    }

    /// Sum of per-component compute seconds over every component: the
    /// sequential work of the workflow on one VM core.
    pub fn total_vm_compute_secs(&self) -> f64 {
        self.task_refs()
            .map(|r| {
                let t = self.task(r);
                t.profile.compute_secs_vm * t.components as f64
            })
            .sum()
    }

    /// Critical-path length in seconds assuming unbounded parallelism on VM
    /// cores: the max per-phase component compute, summed over phases.
    pub fn critical_path_secs(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| {
                p.tasks
                    .iter()
                    .map(|t| t.profile.compute_secs_vm)
                    .fold(0.0, f64::max)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;

    fn two_phase() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, TaskProfile::trivial().compute(2.0)));
        b.begin_phase();
        let c = b.add_task(Task::new("B", 2, TaskProfile::trivial().compute(3.0)));
        b.depend(c, a, DependencyPattern::FanInBlocks);
        b.build().expect("valid workflow")
    }

    #[test]
    fn structure_queries() {
        let w = two_phase();
        assert_eq!(w.task_count(), 2);
        assert_eq!(w.component_count(), 6);
        assert_eq!(w.max_width(), 4);
        assert_eq!(w.phases[0].width(), 4);
        let (r, t) = w.task_by_name("B").expect("found");
        assert_eq!(r, TaskRef::new(1, 0));
        assert_eq!(t.components, 2);
        assert!(w.task_by_name("missing").is_none());
    }

    #[test]
    fn consumers_and_component_deps() {
        let w = two_phase();
        let a = TaskRef::new(0, 0);
        let b = TaskRef::new(1, 0);
        let cons = w.consumers(a);
        assert_eq!(cons.len(), 1);
        assert_eq!(cons[0].0, b);
        let deps = w.component_deps(b, 1);
        assert_eq!(deps, vec![(a, vec![2, 3])]);
    }

    #[test]
    fn work_metrics() {
        let w = two_phase();
        // 4 comps * 2s + 2 comps * 3s = 14s total, 2 + 3 = 5s critical path.
        assert_eq!(w.total_vm_compute_secs(), 14.0);
        assert_eq!(w.critical_path_secs(), 5.0);
    }

    #[test]
    fn task_ref_display() {
        assert_eq!(TaskRef::new(2, 1).to_string(), "P2T1");
    }

    #[test]
    fn multi_consumer_producers_list_every_edge() {
        // One producer feeding two consumers with different patterns.
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, TaskProfile::trivial()));
        b.begin_phase();
        let c1 = b.add_task(Task::new("B", 4, TaskProfile::trivial()));
        let c2 = b.add_task(Task::new("C", 1, TaskProfile::trivial()));
        b.depend(c1, a, DependencyPattern::OneToOne);
        b.depend(c2, a, DependencyPattern::AllToAll);
        let w = b.build().expect("valid");
        let cons = w.consumers(TaskRef::new(0, 0));
        assert_eq!(cons.len(), 2);
        assert!(cons.contains(&(c1, DependencyPattern::OneToOne)));
        assert!(cons.contains(&(c2, DependencyPattern::AllToAll)));
        // Terminal tasks have no consumers.
        assert!(w.consumers(c1).is_empty());
    }

    #[test]
    fn csr_index_lists_consumers_in_phase_then_declaration_order() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, TaskProfile::trivial()));
        let b0 = b.add_task(Task::new("B", 2, TaskProfile::trivial()));
        b.begin_phase();
        let c = b.add_task(Task::new("C", 4, TaskProfile::trivial()));
        let d = b.add_task(Task::new("D", 1, TaskProfile::trivial()));
        b.depend(c, a, DependencyPattern::OneToOne);
        b.depend(d, a, DependencyPattern::AllToAll);
        b.depend(d, b0, DependencyPattern::AllToAll);
        b.begin_phase();
        let e = b.add_task(Task::new("E", 1, TaskProfile::trivial()));
        b.depend(e, c, DependencyPattern::AllToAll);
        b.depend(e, d, DependencyPattern::OneToOne);
        let w = b.build().expect("valid");
        assert_eq!(
            w.consumers(a),
            &[
                (c, DependencyPattern::OneToOne),
                (d, DependencyPattern::AllToAll)
            ]
        );
        assert_eq!(w.consumers(b0), &[(d, DependencyPattern::AllToAll)]);
        assert_eq!(w.consumers(c), &[(e, DependencyPattern::AllToAll)]);
        assert_eq!(w.consumers(d), &[(e, DependencyPattern::OneToOne)]);
        assert!(w.consumers(e).is_empty());
        // Out-of-range producers have no consumers (matching the old scan).
        assert!(w.consumers(TaskRef::new(9, 0)).is_empty());
        assert!(w.consumers(TaskRef::new(0, 9)).is_empty());
    }

    #[test]
    fn clone_rebuilds_the_consumer_index() {
        let w = two_phase();
        let a = TaskRef::new(0, 0);
        assert_eq!(w.consumers(a).len(), 1);
        // Mutate the clone's edges: its fresh index must see the change.
        let mut w2 = w.clone();
        w2.phases[1].tasks[0].deps.clear();
        assert!(w2.consumers(a).is_empty());
        assert_eq!(w.consumers(a).len(), 1);
    }

    #[test]
    fn workflow_serde_round_trip_skips_the_index() {
        let w = two_phase();
        let _ = w.consumers(TaskRef::new(0, 0)); // force the index
        let json = serde_json::to_string(&w).expect("serialize");
        let back: Workflow = serde_json::from_str(&json).expect("parse");
        assert_eq!(w, back);
        assert_eq!(
            back.consumers(TaskRef::new(0, 0)),
            w.consumers(TaskRef::new(0, 0))
        );
    }

    #[test]
    fn task_refs_iterate_in_phase_order() {
        let w = two_phase();
        let refs: Vec<TaskRef> = w.task_refs().collect();
        assert_eq!(refs, vec![TaskRef::new(0, 0), TaskRef::new(1, 0)]);
    }
}
