//! Component-level dependency patterns between tasks.
//!
//! The paper (§2, §4) identifies three connection dynamics in scientific
//! workflow DAGs — fan-out, fan-in, and strong connection — plus the
//! implicit one-to-one pipelining between equal-width tasks. A
//! [`DependencyPattern`] names the pattern; [`DependencyPattern::producer_components`]
//! expands it to concrete component indices.

use serde::{Deserialize, Serialize};

/// How the components of a consumer task depend on the components of a
/// producer task in an earlier phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DependencyPattern {
    /// Component `i` of the consumer depends on component `i` of the
    /// producer. Requires equal component counts.
    OneToOne,
    /// Every consumer component depends on every producer component
    /// (the paper's "strong connection"; with a single consumer component
    /// this is a fan-in, with a single producer component a fan-out).
    AllToAll,
    /// Producer components each feed a contiguous block of consumer
    /// components (fan-out). Requires `consumer % producer == 0`.
    FanOutBlocks,
    /// Consumer components each consume a contiguous block of producer
    /// components (fan-in). Requires `producer % consumer == 0`.
    FanInBlocks,
}

impl DependencyPattern {
    /// Checks the component-count compatibility rule for this pattern.
    pub fn check(&self, producer: usize, consumer: usize) -> Result<(), String> {
        if producer == 0 || consumer == 0 {
            return Err("tasks must have at least one component".into());
        }
        match self {
            DependencyPattern::OneToOne if producer != consumer => Err(format!(
                "OneToOne requires equal component counts, got {producer} -> {consumer}"
            )),
            DependencyPattern::FanOutBlocks if !consumer.is_multiple_of(producer) => Err(format!(
                "FanOutBlocks requires consumer ({consumer}) divisible by producer ({producer})"
            )),
            DependencyPattern::FanInBlocks if !producer.is_multiple_of(consumer) => Err(format!(
                "FanInBlocks requires producer ({producer}) divisible by consumer ({consumer})"
            )),
            _ => Ok(()),
        }
    }

    /// The producer component indices that consumer component `comp` depends
    /// on, given the two tasks' component counts.
    pub fn producer_components(&self, producer: usize, consumer: usize, comp: usize) -> Vec<usize> {
        debug_assert!(comp < consumer);
        match self {
            DependencyPattern::OneToOne => vec![comp],
            DependencyPattern::AllToAll => (0..producer).collect(),
            DependencyPattern::FanOutBlocks => {
                let block = consumer / producer;
                vec![comp / block]
            }
            DependencyPattern::FanInBlocks => {
                let block = producer / consumer;
                (comp * block..(comp + 1) * block).collect()
            }
        }
    }

    /// Number of producer components a single consumer component reads
    /// (its fan-in degree).
    pub fn fan_in_degree(&self, producer: usize, consumer: usize) -> usize {
        match self {
            DependencyPattern::OneToOne => 1,
            DependencyPattern::AllToAll => producer,
            DependencyPattern::FanOutBlocks => 1,
            DependencyPattern::FanInBlocks => producer / consumer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_maps_identity() {
        let p = DependencyPattern::OneToOne;
        p.check(4, 4).expect("equal counts ok");
        assert!(p.check(4, 5).is_err());
        assert_eq!(p.producer_components(4, 4, 2), vec![2]);
        assert_eq!(p.fan_in_degree(4, 4), 1);
    }

    #[test]
    fn all_to_all_maps_everything() {
        let p = DependencyPattern::AllToAll;
        p.check(3, 7).expect("any counts ok");
        assert_eq!(p.producer_components(3, 7, 5), vec![0, 1, 2]);
        assert_eq!(p.fan_in_degree(1252, 1), 1252);
    }

    #[test]
    fn fan_out_blocks() {
        // 2 producers -> 6 consumers: producer 0 feeds comps 0..3.
        let p = DependencyPattern::FanOutBlocks;
        p.check(2, 6).expect("divisible");
        assert!(p.check(2, 5).is_err());
        assert_eq!(p.producer_components(2, 6, 0), vec![0]);
        assert_eq!(p.producer_components(2, 6, 2), vec![0]);
        assert_eq!(p.producer_components(2, 6, 3), vec![1]);
        assert_eq!(p.fan_in_degree(2, 6), 1);
    }

    #[test]
    fn fan_in_blocks() {
        // 6 producers -> 2 consumers: consumer 1 reads comps 3..6.
        let p = DependencyPattern::FanInBlocks;
        p.check(6, 2).expect("divisible");
        assert!(p.check(5, 2).is_err());
        assert_eq!(p.producer_components(6, 2, 1), vec![3, 4, 5]);
        assert_eq!(p.fan_in_degree(6, 2), 3);
    }

    #[test]
    fn zero_components_rejected() {
        assert!(DependencyPattern::AllToAll.check(0, 1).is_err());
        assert!(DependencyPattern::AllToAll.check(1, 0).is_err());
    }
}
