//! Graphviz DOT export of workflows (mirrors the paper's Fig. 1 renderings).

use crate::workflow::Workflow;
use std::fmt::Write as _;

/// Renders the workflow as a Graphviz `digraph`, one node per task labelled
/// with its component count, grouped into phase clusters.
pub fn to_dot(w: &Workflow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", w.name);
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, style=rounded];");
    for (pi, phase) in w.phases.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_phase{pi} {{");
        let _ = writeln!(out, "    label=\"Phase {}\";", pi + 1);
        for (ti, task) in phase.tasks.iter().enumerate() {
            let _ = writeln!(
                out,
                "    p{pi}t{ti} [label=\"{} ({})\"];",
                task.name, task.components
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for r in w.task_refs() {
        for dep in &w.task(r).deps {
            let _ = writeln!(
                out,
                "  p{}t{} -> p{}t{} [label=\"{:?}\"];",
                dep.producer.phase, dep.producer.task, r.phase, r.task, dep.pattern
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::pattern::DependencyPattern;
    use crate::profile::TaskProfile;
    use crate::workflow::Task;

    #[test]
    fn dot_contains_nodes_edges_and_clusters() {
        let mut b = WorkflowBuilder::new("demo");
        b.begin_phase();
        let a = b.add_task(Task::new("Split", 2, TaskProfile::trivial()));
        b.begin_phase();
        let m = b.add_task(Task::new("Map", 4, TaskProfile::trivial()));
        b.depend(m, a, DependencyPattern::FanOutBlocks);
        let w = b.build().expect("valid");
        let dot = to_dot(&w);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("Split (2)"));
        assert!(dot.contains("Map (4)"));
        assert!(dot.contains("p0t0 -> p1t0"));
        assert!(dot.contains("cluster_phase1"));
        assert!(dot.contains("FanOutBlocks"));
    }
}
