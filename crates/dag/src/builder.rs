//! Incremental construction and validation of workflows.

use crate::pattern::DependencyPattern;
use crate::workflow::{Phase, Task, TaskDep, TaskRef, Workflow};
// Membership tests only, never iterated; lint: allow(hash-collections)
use std::collections::HashSet;
use std::fmt;

/// Errors produced by [`WorkflowBuilder::build`] or [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The workflow has no phases.
    EmptyWorkflow,
    /// A phase contains no tasks.
    EmptyPhase(usize),
    /// A task declares zero components.
    ZeroComponents(String),
    /// Two tasks share a name.
    DuplicateTaskName(String),
    /// A dependency references a task that does not exist.
    DanglingReference {
        /// Name of the task declaring the dependency.
        consumer: String,
        /// The nonexistent reference.
        producer: TaskRef,
    },
    /// A dependency points to the same or a later phase (would create a
    /// cycle or an intra-phase ordering, both disallowed).
    NotEarlierPhase {
        /// Name of the task declaring the dependency.
        consumer: String,
        /// The offending producer reference.
        producer: TaskRef,
    },
    /// A dependency pattern is incompatible with the component counts.
    PatternMismatch {
        /// Name of the task declaring the dependency.
        consumer: String,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// A task profile has invalid values.
    BadProfile {
        /// Name of the offending task.
        task: String,
        /// Human-readable problem description.
        detail: String,
    },
    /// A task beyond phase 0 has no dependencies, so it could run earlier.
    UnanchoredTask(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyWorkflow => write!(f, "workflow has no phases"),
            ValidationError::EmptyPhase(i) => write!(f, "phase {i} has no tasks"),
            ValidationError::ZeroComponents(t) => {
                write!(f, "task '{t}' has zero components")
            }
            ValidationError::DuplicateTaskName(t) => {
                write!(f, "duplicate task name '{t}'")
            }
            ValidationError::DanglingReference { consumer, producer } => {
                write!(
                    f,
                    "task '{consumer}' depends on nonexistent task {producer}"
                )
            }
            ValidationError::NotEarlierPhase { consumer, producer } => write!(
                f,
                "task '{consumer}' depends on {producer}, which is not in an earlier phase"
            ),
            ValidationError::PatternMismatch { consumer, detail } => {
                write!(f, "task '{consumer}': {detail}")
            }
            ValidationError::BadProfile { task, detail } => {
                write!(f, "task '{task}': {detail}")
            }
            ValidationError::UnanchoredTask(t) => write!(
                f,
                "task '{t}' is beyond phase 0 but has no dependencies; move it earlier"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a workflow against all structural rules.
pub fn validate(w: &Workflow) -> Result<(), ValidationError> {
    if w.phases.is_empty() {
        return Err(ValidationError::EmptyWorkflow);
    }
    // Duplicate detection via membership only; lint: allow(hash-collections)
    let mut names = HashSet::new();
    for (pi, phase) in w.phases.iter().enumerate() {
        if phase.tasks.is_empty() {
            return Err(ValidationError::EmptyPhase(pi));
        }
        for task in &phase.tasks {
            if task.components == 0 {
                return Err(ValidationError::ZeroComponents(task.name.clone()));
            }
            if !names.insert(task.name.clone()) {
                return Err(ValidationError::DuplicateTaskName(task.name.clone()));
            }
            if let Err(detail) = task.profile.validate() {
                return Err(ValidationError::BadProfile {
                    task: task.name.clone(),
                    detail,
                });
            }
            if pi > 0 && task.deps.is_empty() {
                return Err(ValidationError::UnanchoredTask(task.name.clone()));
            }
            for dep in &task.deps {
                let exists = dep.producer.phase < w.phases.len()
                    && dep.producer.task < w.phases[dep.producer.phase].tasks.len();
                if !exists {
                    return Err(ValidationError::DanglingReference {
                        consumer: task.name.clone(),
                        producer: dep.producer,
                    });
                }
                if dep.producer.phase >= pi {
                    return Err(ValidationError::NotEarlierPhase {
                        consumer: task.name.clone(),
                        producer: dep.producer,
                    });
                }
                let producer = w.task(dep.producer);
                if let Err(detail) = dep.pattern.check(producer.components, task.components) {
                    return Err(ValidationError::PatternMismatch {
                        consumer: task.name.clone(),
                        detail,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Builds a [`Workflow`] phase by phase.
///
/// # Example
/// ```
/// use mashup_dag::{WorkflowBuilder, Task, TaskProfile, DependencyPattern};
///
/// let mut b = WorkflowBuilder::new("demo");
/// b.begin_phase();
/// let split = b.add_task(Task::new("Split", 2, TaskProfile::trivial()));
/// b.begin_phase();
/// let map = b.add_task(Task::new("Map", 8, TaskProfile::trivial()));
/// b.depend(map, split, DependencyPattern::FanOutBlocks);
/// let wf = b.build().expect("valid");
/// assert_eq!(wf.component_count(), 10);
/// ```
pub struct WorkflowBuilder {
    workflow: Workflow,
}

impl WorkflowBuilder {
    /// Starts a new workflow with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            workflow: Workflow::new(name, Vec::new(), 0.0),
        }
    }

    /// Declares the size of the initial input dataset in bytes.
    pub fn initial_input_bytes(&mut self, bytes: f64) -> &mut Self {
        self.workflow.initial_input_bytes = bytes;
        self
    }

    /// Opens a new phase; subsequent [`add_task`](Self::add_task) calls add
    /// to it.
    pub fn begin_phase(&mut self) -> usize {
        self.workflow.phases.push(Phase::default());
        self.workflow.phases.len() - 1
    }

    /// Adds a task to the current phase, returning its reference.
    /// Panics if no phase has been opened.
    pub fn add_task(&mut self, task: Task) -> TaskRef {
        let phase = self
            .workflow
            .phases
            .len()
            .checked_sub(1)
            .expect("begin_phase before add_task");
        self.workflow.phases[phase].tasks.push(task);
        TaskRef::new(phase, self.workflow.phases[phase].tasks.len() - 1)
    }

    /// Declares that `consumer` depends on `producer` with `pattern`.
    pub fn depend(&mut self, consumer: TaskRef, producer: TaskRef, pattern: DependencyPattern) {
        self.workflow.phases[consumer.phase].tasks[consumer.task]
            .deps
            .push(TaskDep { producer, pattern });
    }

    /// Validates and returns the workflow with its consumer index built.
    pub fn build(self) -> Result<Workflow, ValidationError> {
        validate(&self.workflow)?;
        self.workflow.prewarm_index();
        Ok(self.workflow)
    }

    /// Returns the workflow without validation (for negative tests).
    pub fn build_unchecked(self) -> Workflow {
        self.workflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TaskProfile;

    fn t(name: &str, comps: usize) -> Task {
        Task::new(name, comps, TaskProfile::trivial())
    }

    #[test]
    fn valid_workflow_builds() {
        let mut b = WorkflowBuilder::new("w");
        b.initial_input_bytes(1e9);
        b.begin_phase();
        let a = b.add_task(t("A", 3));
        b.begin_phase();
        let c = b.add_task(t("B", 1));
        b.depend(c, a, DependencyPattern::AllToAll);
        let w = b.build().expect("valid");
        assert_eq!(w.name, "w");
        assert_eq!(w.initial_input_bytes, 1e9);
    }

    #[test]
    fn empty_workflow_rejected() {
        assert_eq!(
            WorkflowBuilder::new("w").build().unwrap_err(),
            ValidationError::EmptyWorkflow
        );
    }

    #[test]
    fn empty_phase_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        assert_eq!(b.build().unwrap_err(), ValidationError::EmptyPhase(0));
    }

    #[test]
    fn zero_components_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(t("A", 0));
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::ZeroComponents("A".into())
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(t("A", 1));
        b.add_task(t("A", 1));
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::DuplicateTaskName("A".into())
        );
    }

    #[test]
    fn later_phase_dependency_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(t("A", 1));
        let x = b.add_task(t("X", 1));
        b.depend(a, x, DependencyPattern::OneToOne);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ValidationError::NotEarlierPhase { .. }));
    }

    #[test]
    fn dangling_reference_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(t("A", 1));
        b.begin_phase();
        let c = b.add_task(t("B", 1));
        b.depend(c, TaskRef::new(0, 9), DependencyPattern::OneToOne);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ValidationError::DanglingReference { .. }));
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(t("A", 3));
        b.begin_phase();
        let c = b.add_task(t("B", 2));
        b.depend(c, a, DependencyPattern::OneToOne);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ValidationError::PatternMismatch { .. }));
    }

    #[test]
    fn unanchored_task_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(t("A", 1));
        b.begin_phase();
        b.add_task(t("B", 1)); // no dependency declared
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::UnanchoredTask("B".into())
        );
    }

    #[test]
    fn bad_profile_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(Task::new("A", 1, TaskProfile::trivial().compute(-5.0)));
        let err = b.build().unwrap_err();
        assert!(matches!(err, ValidationError::BadProfile { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::NotEarlierPhase {
            consumer: "B".into(),
            producer: TaskRef::new(1, 0),
        };
        assert!(e.to_string().contains("earlier phase"));
        assert!(ValidationError::EmptyWorkflow
            .to_string()
            .contains("no phases"));
    }
}
