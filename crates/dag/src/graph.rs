//! Phase derivation from a raw task graph.
//!
//! Users of workflow managers often describe a DAG as tasks plus edges
//! without phase annotations. [`from_task_graph`] recovers the paper's phase
//! structure: each task is placed at its longest-path depth, so tasks in the
//! same phase have no mutual dependencies and every dependency points to an
//! earlier phase.

use crate::builder::{validate, ValidationError};
use crate::pattern::DependencyPattern;
use crate::workflow::{Phase, Task, TaskDep, TaskRef, Workflow};
use std::collections::HashMap;

/// An edge in a raw task graph, named by task names.
#[derive(Debug, Clone)]
pub struct RawEdge {
    /// Producer task name.
    pub from: String,
    /// Consumer task name.
    pub to: String,
    /// Component wiring.
    pub pattern: DependencyPattern,
}

impl RawEdge {
    /// Convenience constructor.
    pub fn new(from: impl Into<String>, to: impl Into<String>, pattern: DependencyPattern) -> Self {
        RawEdge {
            from: from.into(),
            to: to.into(),
            pattern,
        }
    }
}

/// Errors from [`from_task_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references an unknown task name.
    UnknownTask(String),
    /// The edges form a cycle involving the named task.
    Cycle(String),
    /// The derived workflow failed structural validation.
    Invalid(ValidationError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "edge references unknown task '{t}'"),
            GraphError::Cycle(t) => write!(f, "dependency cycle involving task '{t}'"),
            GraphError::Invalid(e) => write!(f, "derived workflow invalid: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Builds a phase-structured [`Workflow`] from tasks plus raw edges.
///
/// Tasks are assigned to phases by longest-path level (sources at phase 0).
/// The relative order of tasks in the input is preserved within a phase.
pub fn from_task_graph(
    name: impl Into<String>,
    tasks: Vec<Task>,
    edges: Vec<RawEdge>,
    initial_input_bytes: f64,
) -> Result<Workflow, GraphError> {
    let index: HashMap<String, usize> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.clone(), i))
        .collect();
    // Adjacency: producers[i] lists (producer index, pattern).
    let mut producers: Vec<Vec<(usize, DependencyPattern)>> = vec![Vec::new(); tasks.len()];
    for e in &edges {
        let &from = index
            .get(&e.from)
            .ok_or_else(|| GraphError::UnknownTask(e.from.clone()))?;
        let &to = index
            .get(&e.to)
            .ok_or_else(|| GraphError::UnknownTask(e.to.clone()))?;
        producers[to].push((from, e.pattern));
    }

    // Longest-path level via DFS with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn level(
        i: usize,
        producers: &[Vec<(usize, DependencyPattern)>],
        marks: &mut [Mark],
        levels: &mut [usize],
        names: &[String],
    ) -> Result<usize, GraphError> {
        match marks[i] {
            Mark::Black => return Ok(levels[i]),
            Mark::Grey => return Err(GraphError::Cycle(names[i].clone())),
            Mark::White => {}
        }
        marks[i] = Mark::Grey;
        let mut l = 0;
        for &(p, _) in &producers[i] {
            l = l.max(level(p, producers, marks, levels, names)? + 1);
        }
        marks[i] = Mark::Black;
        levels[i] = l;
        Ok(l)
    }

    let names: Vec<String> = tasks.iter().map(|t| t.name.clone()).collect();
    let mut marks = vec![Mark::White; tasks.len()];
    let mut levels = vec![0usize; tasks.len()];
    for i in 0..tasks.len() {
        level(i, &producers, &mut marks, &mut levels, &names)?;
    }

    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut phases: Vec<Phase> = (0..=max_level).map(|_| Phase::default()).collect();
    if tasks.is_empty() {
        phases.clear();
    }
    // Place tasks and remember their final TaskRef.
    let mut placed: Vec<TaskRef> = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let p = levels[i];
        phases[p].tasks.push(Task {
            name: task.name.clone(),
            components: task.components,
            profile: task.profile.clone(),
            deps: Vec::new(), // rebuilt below with final references
        });
        placed.push(TaskRef::new(p, phases[p].tasks.len() - 1));
    }
    for (i, prods) in producers.iter().enumerate() {
        let r = placed[i];
        for &(p, pattern) in prods {
            phases[r.phase].tasks[r.task].deps.push(TaskDep {
                producer: placed[p],
                pattern,
            });
        }
    }

    let workflow = Workflow::new(name, phases, initial_input_bytes);
    validate(&workflow).map_err(GraphError::Invalid)?;
    workflow.prewarm_consumer_index();
    Ok(workflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TaskProfile;

    fn t(name: &str, comps: usize) -> Task {
        Task::new(name, comps, TaskProfile::trivial())
    }

    #[test]
    fn diamond_graph_levels() {
        //    A
        //   / \
        //  B   C
        //   \ /
        //    D
        let w = from_task_graph(
            "diamond",
            vec![t("A", 1), t("B", 2), t("C", 2), t("D", 1)],
            vec![
                RawEdge::new("A", "B", DependencyPattern::AllToAll),
                RawEdge::new("A", "C", DependencyPattern::AllToAll),
                RawEdge::new("B", "D", DependencyPattern::AllToAll),
                RawEdge::new("C", "D", DependencyPattern::AllToAll),
            ],
            0.0,
        )
        .expect("valid");
        assert_eq!(w.phases.len(), 3);
        assert_eq!(w.phases[1].tasks.len(), 2); // B and C side by side
        let (d_ref, d) = w.task_by_name("D").expect("D exists");
        assert_eq!(d_ref.phase, 2);
        assert_eq!(d.deps.len(), 2);
    }

    #[test]
    fn longest_path_dominates_level() {
        // A -> B -> C, plus A -> C directly: C must land in phase 2.
        let w = from_task_graph(
            "lp",
            vec![t("A", 1), t("B", 1), t("C", 1)],
            vec![
                RawEdge::new("A", "B", DependencyPattern::OneToOne),
                RawEdge::new("B", "C", DependencyPattern::OneToOne),
                RawEdge::new("A", "C", DependencyPattern::OneToOne),
            ],
            0.0,
        )
        .expect("valid");
        assert_eq!(w.task_by_name("C").expect("C").0.phase, 2);
    }

    #[test]
    fn cycle_detected() {
        let err = from_task_graph(
            "cyc",
            vec![t("A", 1), t("B", 1)],
            vec![
                RawEdge::new("A", "B", DependencyPattern::OneToOne),
                RawEdge::new("B", "A", DependencyPattern::OneToOne),
            ],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn unknown_task_detected() {
        let err = from_task_graph(
            "bad",
            vec![t("A", 1)],
            vec![RawEdge::new("A", "Z", DependencyPattern::OneToOne)],
            0.0,
        )
        .unwrap_err();
        assert_eq!(err, GraphError::UnknownTask("Z".into()));
    }

    #[test]
    fn pattern_mismatch_surfaces_as_invalid() {
        let err = from_task_graph(
            "bad",
            vec![t("A", 3), t("B", 2)],
            vec![RawEdge::new("A", "B", DependencyPattern::OneToOne)],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Invalid(_)));
    }

    #[test]
    fn independent_tasks_share_phase_zero() {
        let w = from_task_graph("par", vec![t("A", 1), t("B", 1)], vec![], 0.0).expect("valid");
        assert_eq!(w.phases.len(), 1);
        assert_eq!(w.phases[0].tasks.len(), 2);
    }
}
