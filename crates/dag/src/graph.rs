//! Phase derivation from a raw task graph.
//!
//! Users of workflow managers often describe a DAG as tasks plus edges
//! without phase annotations. [`from_task_graph`] recovers the paper's phase
//! structure: each task is placed at its longest-path depth, so tasks in the
//! same phase have no mutual dependencies and every dependency points to an
//! earlier phase.

use crate::builder::{validate, ValidationError};
use crate::pattern::DependencyPattern;
use crate::workflow::{Phase, Task, TaskDep, TaskRef, Workflow};
// Keyed name lookups only, never iterated; lint: allow(hash-collections)
use std::collections::HashMap;

/// An edge in a raw task graph, named by task names.
#[derive(Debug, Clone)]
pub struct RawEdge {
    /// Producer task name.
    pub from: String,
    /// Consumer task name.
    pub to: String,
    /// Component wiring.
    pub pattern: DependencyPattern,
}

impl RawEdge {
    /// Convenience constructor.
    pub fn new(from: impl Into<String>, to: impl Into<String>, pattern: DependencyPattern) -> Self {
        RawEdge {
            from: from.into(),
            to: to.into(),
            pattern,
        }
    }
}

/// Errors from [`from_task_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references an unknown task name.
    UnknownTask(String),
    /// The edges form a cycle involving the named task.
    Cycle(String),
    /// The derived workflow failed structural validation.
    Invalid(ValidationError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "edge references unknown task '{t}'"),
            GraphError::Cycle(t) => write!(f, "dependency cycle involving task '{t}'"),
            GraphError::Invalid(e) => write!(f, "derived workflow invalid: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Builds a phase-structured [`Workflow`] from tasks plus raw edges.
///
/// Tasks are assigned to phases by longest-path level (sources at phase 0).
/// The relative order of tasks in the input is preserved within a phase.
///
/// Runs in O(V + E): edges are resolved into CSR adjacency (no per-task
/// `Vec<Vec<_>>` allocation), levels come from an iterative Kahn sweep (no
/// recursion, so million-task chains don't overflow the stack), and the
/// input tasks are moved — not cloned — into their phases.
pub fn from_task_graph(
    name: impl Into<String>,
    tasks: Vec<Task>,
    edges: Vec<RawEdge>,
    initial_input_bytes: f64,
) -> Result<Workflow, GraphError> {
    let n = tasks.len();
    // Borrow-keyed name index: no String clones. Later entries shadow
    // earlier duplicates (validation rejects duplicates afterwards).
    // Lookup-only; lint: allow(hash-collections)
    let mut index: HashMap<&str, usize> = HashMap::with_capacity(n);
    for (i, t) in tasks.iter().enumerate() {
        index.insert(t.name.as_str(), i);
    }
    // Resolve edges once into integer endpoints.
    let mut raw: Vec<(u32, u32, DependencyPattern)> = Vec::with_capacity(edges.len());
    for e in &edges {
        let &from = index
            .get(e.from.as_str())
            .ok_or_else(|| GraphError::UnknownTask(e.from.clone()))?;
        let &to = index
            .get(e.to.as_str())
            .ok_or_else(|| GraphError::UnknownTask(e.to.clone()))?;
        raw.push((from as u32, to as u32, e.pattern));
    }
    drop(index);

    // CSR adjacency in both directions. Filling in edge declaration order
    // keeps each consumer's dependency list in its declared order.
    let n_edges = raw.len();
    let mut prod_offsets = vec![0u32; n + 1]; // per-consumer producer slices
    let mut cons_offsets = vec![0u32; n + 1]; // per-producer consumer slices
    for &(from, to, _) in &raw {
        prod_offsets[to as usize + 1] += 1;
        cons_offsets[from as usize + 1] += 1;
    }
    for i in 1..=n {
        prod_offsets[i] += prod_offsets[i - 1];
        cons_offsets[i] += cons_offsets[i - 1];
    }
    let mut prod_entries = vec![(0u32, DependencyPattern::AllToAll); n_edges];
    let mut cons_entries = vec![0u32; n_edges];
    let mut prod_cursor: Vec<u32> = prod_offsets[..n].to_vec();
    let mut cons_cursor: Vec<u32> = cons_offsets[..n].to_vec();
    for &(from, to, pattern) in &raw {
        prod_entries[prod_cursor[to as usize] as usize] = (from, pattern);
        prod_cursor[to as usize] += 1;
        cons_entries[cons_cursor[from as usize] as usize] = to;
        cons_cursor[from as usize] += 1;
    }
    drop(raw);

    // Longest-path levels via an iterative Kahn sweep over consumer edges;
    // zero-indegree tasks seed the frontier in input order.
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| prod_offsets[i + 1] - prod_offsets[i])
        .collect();
    let mut levels = vec![0usize; n];
    let mut frontier: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut head = 0;
    let mut processed = 0usize;
    while head < frontier.len() {
        let i = frontier[head] as usize;
        head += 1;
        processed += 1;
        for &c in &cons_entries[cons_offsets[i] as usize..cons_offsets[i + 1] as usize] {
            let c = c as usize;
            levels[c] = levels[c].max(levels[i] + 1);
            indeg[c] -= 1;
            if indeg[c] == 0 {
                frontier.push(c as u32);
            }
        }
    }
    if processed < n {
        // Every unprocessed task still has an unprocessed producer, so
        // walking producers from any unprocessed task must revisit one —
        // and the revisited task provably sits on a cycle.
        let start = indeg.iter().position(|&d| d > 0).expect("unprocessed task");
        let mut seen = vec![false; n];
        let mut cur = start;
        loop {
            if seen[cur] {
                return Err(GraphError::Cycle(tasks[cur].name.clone()));
            }
            seen[cur] = true;
            cur = prod_entries[prod_offsets[cur] as usize..prod_offsets[cur + 1] as usize]
                .iter()
                .map(|&(p, _)| p as usize)
                .find(|&p| indeg[p] > 0)
                .expect("cycle member has an unprocessed producer");
        }
    }

    // Place tasks into phases, preserving input order within each phase.
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut phase_counts = vec![0u32; max_level + 1];
    let mut placed: Vec<TaskRef> = Vec::with_capacity(n);
    for &l in &levels {
        placed.push(TaskRef::new(l, phase_counts[l] as usize));
        phase_counts[l] += 1;
    }
    let mut phases: Vec<Phase> = phase_counts
        .iter()
        .map(|&c| Phase {
            tasks: Vec::with_capacity(c as usize),
        })
        .collect();
    if n == 0 {
        phases.clear();
    }
    for (i, mut task) in tasks.into_iter().enumerate() {
        let prods = &prod_entries[prod_offsets[i] as usize..prod_offsets[i + 1] as usize];
        task.deps = prods
            .iter()
            .map(|&(p, pattern)| TaskDep {
                producer: placed[p as usize],
                pattern,
            })
            .collect();
        phases[levels[i]].tasks.push(task);
    }

    let workflow = Workflow::new(name, phases, initial_input_bytes);
    validate(&workflow).map_err(GraphError::Invalid)?;
    workflow.prewarm_index();
    Ok(workflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TaskProfile;

    fn t(name: &str, comps: usize) -> Task {
        Task::new(name, comps, TaskProfile::trivial())
    }

    #[test]
    fn diamond_graph_levels() {
        //    A
        //   / \
        //  B   C
        //   \ /
        //    D
        let w = from_task_graph(
            "diamond",
            vec![t("A", 1), t("B", 2), t("C", 2), t("D", 1)],
            vec![
                RawEdge::new("A", "B", DependencyPattern::AllToAll),
                RawEdge::new("A", "C", DependencyPattern::AllToAll),
                RawEdge::new("B", "D", DependencyPattern::AllToAll),
                RawEdge::new("C", "D", DependencyPattern::AllToAll),
            ],
            0.0,
        )
        .expect("valid");
        assert_eq!(w.phases.len(), 3);
        assert_eq!(w.phases[1].tasks.len(), 2); // B and C side by side
        let (d_ref, d) = w.task_by_name("D").expect("D exists");
        assert_eq!(d_ref.phase, 2);
        assert_eq!(d.deps.len(), 2);
    }

    #[test]
    fn longest_path_dominates_level() {
        // A -> B -> C, plus A -> C directly: C must land in phase 2.
        let w = from_task_graph(
            "lp",
            vec![t("A", 1), t("B", 1), t("C", 1)],
            vec![
                RawEdge::new("A", "B", DependencyPattern::OneToOne),
                RawEdge::new("B", "C", DependencyPattern::OneToOne),
                RawEdge::new("A", "C", DependencyPattern::OneToOne),
            ],
            0.0,
        )
        .expect("valid");
        assert_eq!(w.task_by_name("C").expect("C").0.phase, 2);
    }

    #[test]
    fn cycle_detected() {
        let err = from_task_graph(
            "cyc",
            vec![t("A", 1), t("B", 1)],
            vec![
                RawEdge::new("A", "B", DependencyPattern::OneToOne),
                RawEdge::new("B", "A", DependencyPattern::OneToOne),
            ],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn unknown_task_detected() {
        let err = from_task_graph(
            "bad",
            vec![t("A", 1)],
            vec![RawEdge::new("A", "Z", DependencyPattern::OneToOne)],
            0.0,
        )
        .unwrap_err();
        assert_eq!(err, GraphError::UnknownTask("Z".into()));
    }

    #[test]
    fn pattern_mismatch_surfaces_as_invalid() {
        let err = from_task_graph(
            "bad",
            vec![t("A", 3), t("B", 2)],
            vec![RawEdge::new("A", "B", DependencyPattern::OneToOne)],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Invalid(_)));
    }

    #[test]
    fn independent_tasks_share_phase_zero() {
        let w = from_task_graph("par", vec![t("A", 1), t("B", 1)], vec![], 0.0).expect("valid");
        assert_eq!(w.phases.len(), 1);
        assert_eq!(w.phases[0].tasks.len(), 2);
    }
}
