//! Arena/SoA view of a workflow: flat task table, interned names, and CSR
//! edge storage in both directions.
//!
//! The nested `Phase { Vec<Task> }` object graph is the right shape for
//! authoring and for the serde wire format, but traversal-heavy code (the
//! PDC planner, the boundary-tax refinement, graph derivation) wants flat
//! integer ids, O(1) name lookup, and contiguous adjacency slices. The
//! [`TaskArena`] provides exactly that as *derived* state: it is built once
//! per workflow (lazily, cached in a `OnceLock`) and never serialized, so
//! the wire format and all goldens stay byte-identical.
//!
//! Tasks are numbered flat in phase-major order (`flat = phase_start +
//! task`), matching [`Workflow::task_refs`](crate::Workflow::task_refs)
//! iteration order. Names are interned to [`Symbol`]s (`u32`), with the
//! first occurrence winning for duplicate names — the same task a linear
//! name scan would have found.

use crate::pattern::DependencyPattern;
use crate::workflow::{TaskRef, Workflow};
// Keyed name lookups only, never iterated; lint: allow(hash-collections)
use std::collections::HashMap;

/// An interned task-name symbol. Two tasks share a symbol iff their names
/// are equal. Valid only for the arena that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index into the arena's name table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flat structure-of-arrays view over a workflow's tasks and edges.
///
/// Built by [`Workflow::arena`](crate::Workflow::arena); see the module
/// docs for the id scheme. Dependency edges must not be mutated after the
/// arena is built — clone the workflow instead, which resets it.
#[derive(Debug, Default)]
pub struct TaskArena {
    /// Flat id of the first task of each phase, plus a trailing total.
    phase_starts: Vec<u32>,
    /// Per-flat-id `TaskRef` (phase-major order).
    refs: Vec<TaskRef>,
    /// Per-flat-id interned name.
    symbols: Vec<Symbol>,
    /// Per-flat-id component count.
    components: Vec<u32>,
    /// Interned name table, indexed by `Symbol`.
    names: Vec<String>,
    /// Name → (symbol, flat id of first occurrence). Lookup-only (never
    /// iterated); lint: allow(hash-collections)
    by_name: HashMap<String, (Symbol, u32)>,
    /// Consumer CSR: per-producer slice bounds into `cons_entries`.
    cons_offsets: Vec<u32>,
    /// All reverse edges grouped by producer; within a producer, consumers
    /// appear in phase order and dependency-declaration order (the same
    /// order the old per-call scan produced).
    cons_entries: Vec<(TaskRef, DependencyPattern)>,
    /// Producer CSR: per-consumer slice bounds into `prod_entries`.
    prod_offsets: Vec<u32>,
    /// Forward edges grouped by consumer, in declaration order; entries are
    /// `(flat producer id, pattern)`.
    prod_entries: Vec<(u32, DependencyPattern)>,
}

impl TaskArena {
    /// Builds the arena for `w`. Assumes dependency references are in range
    /// (validated workflows always are); panics otherwise.
    pub(crate) fn build(w: &Workflow) -> Self {
        let mut phase_starts = Vec::with_capacity(w.phases.len() + 1);
        let mut acc = 0u32;
        for p in &w.phases {
            phase_starts.push(acc);
            acc += u32::try_from(p.tasks.len()).expect("phase width fits in u32");
        }
        phase_starts.push(acc);
        let n = acc as usize;

        let mut refs = Vec::with_capacity(n);
        let mut symbols = Vec::with_capacity(n);
        let mut components = Vec::with_capacity(n);
        let mut names: Vec<String> = Vec::new();
        // Lookup-only; lint: allow(hash-collections)
        let mut by_name: HashMap<String, (Symbol, u32)> = HashMap::with_capacity(n);
        let mut n_edges = 0usize;
        for (pi, phase) in w.phases.iter().enumerate() {
            for (ti, t) in phase.tasks.iter().enumerate() {
                let flat = refs.len() as u32;
                refs.push(TaskRef::new(pi, ti));
                components.push(u32::try_from(t.components).unwrap_or(u32::MAX));
                let sym = match by_name.get(&t.name) {
                    Some(&(sym, _)) => sym,
                    None => {
                        let sym = Symbol(names.len() as u32);
                        names.push(t.name.clone());
                        by_name.insert(t.name.clone(), (sym, flat));
                        sym
                    }
                };
                symbols.push(sym);
                n_edges += t.deps.len();
            }
        }

        // Producer CSR: counting pass, prefix sum, then a fill pass that
        // preserves each consumer's dependency-declaration order.
        let flat_of = |r: TaskRef| phase_starts[r.phase] as usize + r.task;
        let mut prod_offsets = vec![0u32; n + 1];
        let mut cons_offsets = vec![0u32; n + 1];
        for (flat, r) in refs.iter().enumerate() {
            let deps = &w.phases[r.phase].tasks[r.task].deps;
            prod_offsets[flat + 1] = deps.len() as u32;
            for d in deps {
                cons_offsets[flat_of(d.producer) + 1] += 1;
            }
        }
        for i in 1..=n {
            prod_offsets[i] += prod_offsets[i - 1];
            cons_offsets[i] += cons_offsets[i - 1];
        }
        let mut prod_entries = vec![(0u32, DependencyPattern::AllToAll); n_edges];
        let mut cons_entries = vec![(TaskRef::new(0, 0), DependencyPattern::AllToAll); n_edges];
        let mut cons_cursor: Vec<u32> = cons_offsets[..n].to_vec();
        let mut prod_cursor = 0usize;
        // Iterating consumers in flat order makes each producer's consumer
        // slice come out in phase/declaration order — identical to the
        // stable sort the previous `ConsumerIndex` used.
        for (flat, r) in refs.iter().enumerate() {
            for d in &w.phases[r.phase].tasks[r.task].deps {
                let p = flat_of(d.producer);
                prod_entries[prod_cursor] = (p as u32, d.pattern);
                prod_cursor += 1;
                cons_entries[cons_cursor[p] as usize] = (refs[flat], d.pattern);
                cons_cursor[p] += 1;
            }
        }

        TaskArena {
            phase_starts,
            refs,
            symbols,
            components,
            names,
            by_name,
            cons_offsets,
            cons_entries,
            prod_offsets,
            prod_entries,
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.refs.len()
    }

    /// Number of distinct task names.
    pub fn symbol_count(&self) -> usize {
        self.names.len()
    }

    /// Flat id for a task reference, or `None` if out of range.
    pub fn flat(&self, r: TaskRef) -> Option<usize> {
        let &start = self.phase_starts.get(r.phase)?;
        let end = *self.phase_starts.get(r.phase + 1)?;
        let flat = start as usize + r.task;
        (flat < end as usize).then_some(flat)
    }

    /// The `TaskRef` for a flat id. Panics if out of range.
    pub fn task_ref(&self, flat: usize) -> TaskRef {
        self.refs[flat]
    }

    /// Interned name symbol of a task. Panics if out of range.
    pub fn symbol(&self, flat: usize) -> Symbol {
        self.symbols[flat]
    }

    /// Component count of a task. Panics if out of range.
    pub fn components(&self, flat: usize) -> usize {
        self.components[flat] as usize
    }

    /// The name behind a symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Name of a task. Panics if out of range.
    pub fn name(&self, flat: usize) -> &str {
        self.resolve(self.symbols[flat])
    }

    /// O(1) name lookup: the first task with the given name, as the old
    /// linear scan would have found it.
    pub fn lookup(&self, name: &str) -> Option<(TaskRef, Symbol)> {
        self.by_name
            .get(name)
            .map(|&(sym, flat)| (self.refs[flat as usize], sym))
    }

    /// Flat id of the first task with the given name.
    pub fn flat_by_name(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).map(|&(_, flat)| flat as usize)
    }

    /// The tasks that consume `producer`'s output, with patterns, in phase
    /// order. Out-of-range producers have no consumers.
    pub fn consumers(&self, producer: TaskRef) -> &[(TaskRef, DependencyPattern)] {
        let Some(flat) = self.flat(producer) else {
            return &[];
        };
        &self.cons_entries[self.cons_offsets[flat] as usize..self.cons_offsets[flat + 1] as usize]
    }

    /// The producers a task depends on, in declaration order, as
    /// `(flat producer id, pattern)`. Panics if out of range.
    pub fn producers(&self, flat: usize) -> &[(u32, DependencyPattern)] {
        &self.prod_entries[self.prod_offsets[flat] as usize..self.prod_offsets[flat + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::profile::TaskProfile;
    use crate::workflow::Task;

    fn layered() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(Task::new("A", 4, TaskProfile::trivial()));
        let b0 = b.add_task(Task::new("B", 2, TaskProfile::trivial()));
        b.begin_phase();
        let c = b.add_task(Task::new("C", 4, TaskProfile::trivial()));
        let d = b.add_task(Task::new("D", 1, TaskProfile::trivial()));
        b.depend(c, a, DependencyPattern::OneToOne);
        b.depend(d, a, DependencyPattern::AllToAll);
        b.depend(d, b0, DependencyPattern::AllToAll);
        b.begin_phase();
        let e = b.add_task(Task::new("E", 1, TaskProfile::trivial()));
        b.depend(e, c, DependencyPattern::AllToAll);
        b.depend(e, d, DependencyPattern::OneToOne);
        b.build().expect("valid")
    }

    #[test]
    fn flat_ids_follow_phase_major_order() {
        let w = layered();
        let arena = w.arena();
        assert_eq!(arena.task_count(), 5);
        for (i, r) in w.task_refs().enumerate() {
            assert_eq!(arena.flat(r), Some(i));
            assert_eq!(arena.task_ref(i), r);
            assert_eq!(arena.name(i), w.task(r).name);
            assert_eq!(arena.components(i), w.task(r).components);
        }
        assert_eq!(arena.flat(TaskRef::new(9, 0)), None);
        assert_eq!(arena.flat(TaskRef::new(0, 9)), None);
    }

    #[test]
    fn producers_mirror_declared_deps() {
        let w = layered();
        let arena = w.arena();
        for (flat, r) in w.task_refs().enumerate() {
            let deps = &w.task(r).deps;
            let prods = arena.producers(flat);
            assert_eq!(prods.len(), deps.len());
            for (got, want) in prods.iter().zip(deps) {
                assert_eq!(arena.task_ref(got.0 as usize), want.producer);
                assert_eq!(got.1, want.pattern);
            }
        }
    }

    #[test]
    fn interning_dedups_names_first_occurrence_wins() {
        // Duplicate names are invalid workflows but the arena must still be
        // well-defined for diagnostics: the first occurrence wins.
        let w = Workflow::new(
            "dup",
            vec![crate::workflow::Phase {
                tasks: vec![
                    Task::new("X", 1, TaskProfile::trivial()),
                    Task::new("X", 2, TaskProfile::trivial()),
                ],
            }],
            0.0,
        );
        let arena = w.arena();
        assert_eq!(arena.symbol_count(), 1);
        assert_eq!(arena.symbol(0), arena.symbol(1));
        assert_eq!(arena.lookup("X").map(|(r, _)| r), Some(TaskRef::new(0, 0)));
        assert_eq!(arena.flat_by_name("X"), Some(0));
    }

    #[test]
    fn symbols_resolve_round_trip() {
        let w = layered();
        let arena = w.arena();
        let (r, sym) = arena.lookup("D").expect("found");
        assert_eq!(r, TaskRef::new(1, 1));
        assert_eq!(arena.resolve(sym), "D");
        assert!(arena.lookup("missing").is_none());
    }
}
