//! Costless-style function fusion rewrites.
//!
//! Two adjacent serverless tasks connected by a plain pipeline edge can be
//! merged into one function: the producer's output stays in function memory
//! instead of taking a round-trip through remote storage, and the consumer's
//! invocation (cold/warm start, scheduling) disappears. This module finds
//! the pairs where that rewrite is *semantics-preserving* and applies it,
//! producing a new [`Workflow`] whose fused profiles compose from the
//! originals (compute sums, the intermediate transfer vanishes, memory is
//! the max of the two stages).
//!
//! A pair `(producer, consumer)` is fusable iff
//!
//! * the consumer's **only** dependency is on the producer,
//! * that edge is [`DependencyPattern::OneToOne`] (equal component counts,
//!   component `i` feeds component `i` — the fused component is just the two
//!   bodies run back-to-back), and
//! * the consumer is the producer's **only** consumer (nobody else reads the
//!   intermediate dataset, so eliding it is unobservable).
//!
//! [`fusable_pairs`] enumerates candidates deterministically (phase-major
//! producer order); [`fuse`] applies any pairwise-disjoint subset at once,
//! dropping phases the rewrite empties and remapping every [`TaskRef`] in
//! the survivors. Chains longer than two (`a → b → c`) fuse by iterating:
//! disjointness rejects overlapping pairs within one call, but the fused
//! task is itself a candidate on the next [`fusable_pairs`] pass.

use crate::builder::{validate, ValidationError};
use crate::pattern::DependencyPattern;
use crate::profile::TaskProfile;
use crate::workflow::{Phase, Task, TaskRef, Workflow};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One fusable producer→consumer pair (see the module docs for the
/// eligibility rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FusionCandidate {
    /// The upstream task whose output would stay in function memory.
    pub producer: TaskRef,
    /// The downstream task merged into the producer's function.
    pub consumer: TaskRef,
}

impl FusionCandidate {
    /// Bytes of inter-task transfer the fusion eliminates: per component,
    /// the producer's write plus the consumer's read of the intermediate
    /// dataset, summed over components.
    pub fn eliminated_bytes(&self, w: &Workflow) -> f64 {
        let p = w.task(self.producer);
        let c = w.task(self.consumer);
        (p.profile.output_bytes + c.profile.input_bytes) * p.components as f64
    }
}

impl fmt::Display for FusionCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.producer, self.consumer)
    }
}

/// Errors produced by [`fuse`].
#[derive(Debug, Clone, PartialEq)]
pub enum FusionError {
    /// A requested pair does not satisfy the eligibility rule.
    NotFusable {
        /// The offending pair.
        pair: FusionCandidate,
        /// Human-readable reason.
        reason: String,
    },
    /// A task appears in more than one requested pair.
    Overlap(TaskRef),
    /// The rewritten workflow failed structural validation (e.g. a fused
    /// name collides with an existing task).
    Invalid(ValidationError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::NotFusable { pair, reason } => {
                write!(f, "pair {pair} is not fusable: {reason}")
            }
            FusionError::Overlap(r) => {
                write!(f, "task {r} appears in more than one fusion pair")
            }
            FusionError::Invalid(e) => write!(f, "fused workflow is invalid: {e}"),
        }
    }
}

impl std::error::Error for FusionError {}

/// Whether `pair` satisfies the fusion eligibility rule in `w`.
fn check_fusable(w: &Workflow, pair: FusionCandidate) -> Result<(), FusionError> {
    let not = |reason: String| FusionError::NotFusable { pair, reason };
    let in_range = |r: TaskRef| r.phase < w.phases.len() && r.task < w.phases[r.phase].tasks.len();
    if !in_range(pair.producer) || !in_range(pair.consumer) {
        return Err(not("reference out of range".into()));
    }
    let c = w.task(pair.consumer);
    match c.deps.as_slice() {
        [d] if d.producer == pair.producer => {
            if d.pattern != DependencyPattern::OneToOne {
                return Err(not(format!(
                    "edge pattern is {:?}, fusion requires OneToOne",
                    d.pattern
                )));
            }
        }
        [d] => {
            return Err(not(format!(
                "consumer's only dependency is on {}, not the producer",
                d.producer
            )))
        }
        deps => {
            return Err(not(format!(
                "consumer has {} dependencies, fusion requires exactly one",
                deps.len()
            )))
        }
    }
    let consumers = w.consumers(pair.producer);
    if consumers.len() != 1 {
        return Err(not(format!(
            "producer has {} consumers, fusion requires exactly one",
            consumers.len()
        )));
    }
    debug_assert_eq!(consumers[0].0, pair.consumer);
    Ok(())
}

/// Enumerates every fusable pair in `w`, in phase-major producer order.
/// Pairs may share a task (a chain `a → b → c` yields both `(a,b)` and
/// `(b,c)`); [`fuse`] requires the applied subset to be disjoint.
pub fn fusable_pairs(w: &Workflow) -> Vec<FusionCandidate> {
    let mut out = Vec::new();
    for producer in w.task_refs() {
        let consumers = w.consumers(producer);
        if let [(consumer, _)] = consumers {
            let pair = FusionCandidate {
                producer,
                consumer: *consumer,
            };
            if check_fusable(w, pair).is_ok() {
                out.push(pair);
            }
        }
    }
    out
}

/// Composes the fused task's profile from the producer's (`a`) and the
/// consumer's (`c`). Compute sums on both platforms; the intermediate
/// dataset (`a`'s output, `c`'s input) stays in function memory so the
/// fused I/O is `a`'s input and `c`'s output; memory is the max of the two
/// stages (they run back-to-back, not concurrently).
fn compose_profiles(a: &TaskProfile, c: &TaskProfile) -> TaskProfile {
    let compute_secs_vm = a.compute_secs_vm + c.compute_secs_vm;
    // Pick the slowdown that makes serverless compute compose exactly:
    // fused_vm * slowdown == a_serverless + c_serverless. When both stages
    // share a slowdown the division would only add rounding noise, so reuse
    // the common value verbatim.
    let serverless_slowdown = if a.serverless_slowdown == c.serverless_slowdown {
        a.serverless_slowdown
    } else if compute_secs_vm > 0.0 {
        (a.compute_secs_serverless() + c.compute_secs_serverless()) / compute_secs_vm
    } else {
        1.0
    };
    TaskProfile {
        compute_secs_vm,
        serverless_slowdown,
        input_bytes: a.input_bytes,
        output_bytes: c.output_bytes,
        memory_gb: a.memory_gb.max(c.memory_gb),
        vm_local_contention: a.vm_local_contention.max(c.vm_local_contention),
        runtime_jitter: a.runtime_jitter.max(c.runtime_jitter),
        recurring: a.recurring && c.recurring,
        checkpoint_bytes: a.checkpoint_bytes + c.checkpoint_bytes,
        // The fused body is a new deployable, so it joins no existing
        // warm-pool family.
        code_family: None,
    }
}

/// Applies a pairwise-disjoint set of fusions to `w`, returning the
/// rewritten workflow. Each fused task sits in its producer's phase slot
/// under the name `"{producer}+{consumer}"`; consumers of the absorbed task
/// are rewired to it; phases emptied by the rewrite are dropped and every
/// surviving reference remapped. The result is re-validated before it is
/// returned, so a `Workflow` coming out of here is as trustworthy as one
/// from [`WorkflowBuilder`](crate::WorkflowBuilder).
pub fn fuse(w: &Workflow, pairs: &[FusionCandidate]) -> Result<Workflow, FusionError> {
    let mut used: BTreeSet<TaskRef> = BTreeSet::new();
    for &pair in pairs {
        check_fusable(w, pair)?;
        if !used.insert(pair.producer) {
            return Err(FusionError::Overlap(pair.producer));
        }
        if !used.insert(pair.consumer) {
            return Err(FusionError::Overlap(pair.consumer));
        }
    }
    // producer → absorbed consumer, and the reverse for the skip pass.
    let absorbs: BTreeMap<TaskRef, TaskRef> =
        pairs.iter().map(|p| (p.producer, p.consumer)).collect();
    let absorbed: BTreeSet<TaskRef> = pairs.iter().map(|p| p.consumer).collect();

    // Pass 1: layout. Surviving tasks keep phase-major order; absorbed
    // tasks vanish from their phase; emptied phases are dropped. `remap`
    // sends every old reference (absorbed ones included — they land on
    // their fused task) to its new home.
    let mut remap: BTreeMap<TaskRef, TaskRef> = BTreeMap::new();
    let mut layout: Vec<Vec<TaskRef>> = Vec::new();
    for (pi, phase) in w.phases.iter().enumerate() {
        let survivors: Vec<TaskRef> = (0..phase.tasks.len())
            .map(|ti| TaskRef::new(pi, ti))
            .filter(|r| !absorbed.contains(r))
            .collect();
        if survivors.is_empty() {
            continue;
        }
        let new_phase = layout.len();
        for (new_ti, &old) in survivors.iter().enumerate() {
            remap.insert(old, TaskRef::new(new_phase, new_ti));
        }
        layout.push(survivors);
    }
    // Absorbed consumers resolve to their producer's fused slot (the
    // producer is in an earlier phase, so its entry already exists).
    for &pair in pairs {
        let target = remap[&pair.producer];
        remap.insert(pair.consumer, target);
    }

    // Pass 2: materialize tasks with remapped dependencies.
    let phases: Vec<Phase> = layout
        .iter()
        .map(|survivors| Phase {
            tasks: survivors
                .iter()
                .map(|&old| {
                    let t = w.task(old);
                    let (name, profile) = match absorbs.get(&old) {
                        Some(&consumer) => {
                            let c = w.task(consumer);
                            (
                                format!("{}+{}", t.name, c.name),
                                compose_profiles(&t.profile, &c.profile),
                            )
                        }
                        None => (t.name.clone(), t.profile.clone()),
                    };
                    Task {
                        name,
                        components: t.components,
                        profile,
                        deps: t
                            .deps
                            .iter()
                            .map(|d| crate::workflow::TaskDep {
                                producer: remap[&d.producer],
                                pattern: d.pattern,
                            })
                            .collect(),
                    }
                })
                .collect(),
        })
        .collect();

    let fused = Workflow::new(w.name.clone(), phases, w.initial_input_bytes);
    validate(&fused).map_err(FusionError::Invalid)?;
    Ok(fused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::workflow::Task;

    /// A → B → C pipeline with a side fan-in D reading C.
    fn chain() -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        let a = b.add_task(Task::new(
            "A",
            4,
            TaskProfile::trivial().compute(2.0).io(100.0, 200.0),
        ));
        b.begin_phase();
        let c = b.add_task(Task::new(
            "B",
            4,
            TaskProfile::trivial()
                .compute(3.0)
                .io(200.0, 50.0)
                .memory(1.5),
        ));
        b.depend(c, a, DependencyPattern::OneToOne);
        b.begin_phase();
        let d = b.add_task(Task::new("C", 1, TaskProfile::trivial()));
        b.depend(d, c, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    #[test]
    fn finds_the_pipeline_pair_only() {
        let w = chain();
        let pairs = fusable_pairs(&w);
        // A→B is OneToOne single-consumer/single-dep; B→C is AllToAll.
        assert_eq!(
            pairs,
            vec![FusionCandidate {
                producer: TaskRef::new(0, 0),
                consumer: TaskRef::new(1, 0),
            }]
        );
        assert_eq!(pairs[0].eliminated_bytes(&w), (200.0 + 200.0) * 4.0);
    }

    #[test]
    fn fuse_merges_profiles_and_rewires_consumers() {
        let w = chain();
        let pairs = fusable_pairs(&w);
        let fused = fuse(&w, &pairs).expect("fuses");
        // Phase 1 emptied and dropped: 3 phases → 2.
        assert_eq!(fused.phases.len(), 2);
        let (r, t) = fused.task_by_name("A+B").expect("fused task");
        assert_eq!(r, TaskRef::new(0, 0));
        assert_eq!(t.components, 4);
        assert_eq!(t.profile.compute_secs_vm, 5.0);
        assert_eq!(t.profile.input_bytes, 100.0);
        assert_eq!(t.profile.output_bytes, 50.0);
        assert_eq!(t.profile.memory_gb, 1.5);
        // C's dependency follows the fused task into phase 0.
        let (_, c) = fused.task_by_name("C").expect("kept");
        assert_eq!(c.deps.len(), 1);
        assert_eq!(c.deps[0].producer, TaskRef::new(0, 0));
        assert_eq!(c.deps[0].pattern, DependencyPattern::AllToAll);
    }

    #[test]
    fn serverless_compute_composes_exactly() {
        let a = TaskProfile::trivial().compute(2.0).slowdown(1.75);
        let c = TaskProfile::trivial().compute(3.0).slowdown(1.75);
        let f = compose_profiles(&a, &c);
        assert_eq!(f.serverless_slowdown, 1.75);
        assert_eq!(
            f.compute_secs_serverless(),
            a.compute_secs_serverless() + c.compute_secs_serverless()
        );
        // Differing slowdowns: the weighted average keeps total serverless
        // compute within rounding of the sum.
        let c2 = TaskProfile::trivial().compute(3.0).slowdown(2.5);
        let f2 = compose_profiles(&a, &c2);
        let sum = a.compute_secs_serverless() + c2.compute_secs_serverless();
        assert!((f2.compute_secs_serverless() - sum).abs() < 1e-12 * sum);
    }

    #[test]
    fn rejects_overlapping_pairs() {
        // A → B → C all OneToOne: both (A,B) and (B,C) are candidates, but
        // applying both at once double-books B.
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a = b.add_task(Task::new("A", 2, TaskProfile::trivial()));
        b.begin_phase();
        let m = b.add_task(Task::new("B", 2, TaskProfile::trivial()));
        b.depend(m, a, DependencyPattern::OneToOne);
        b.begin_phase();
        let z = b.add_task(Task::new("C", 2, TaskProfile::trivial()));
        b.depend(z, m, DependencyPattern::OneToOne);
        let w = b.build().expect("valid");
        let pairs = fusable_pairs(&w);
        assert_eq!(pairs.len(), 2);
        assert_eq!(fuse(&w, &pairs).unwrap_err(), FusionError::Overlap(m));
        // Either pair alone applies, and the fused task re-qualifies.
        let once = fuse(&w, &pairs[..1]).expect("single pair fuses");
        let again = fusable_pairs(&once);
        assert_eq!(again.len(), 1);
        let twice = fuse(&once, &again).expect("chain collapses");
        assert_eq!(twice.task_count(), 1);
        assert_eq!(
            twice
                .task_by_name("A+B+C")
                .unwrap()
                .1
                .profile
                .compute_secs_vm,
            3.0
        );
    }

    #[test]
    fn rejects_non_fusable_pairs() {
        let w = chain();
        let bad = FusionCandidate {
            producer: TaskRef::new(1, 0),
            consumer: TaskRef::new(2, 0),
        };
        let err = fuse(&w, &[bad]).unwrap_err();
        assert!(matches!(err, FusionError::NotFusable { .. }), "{err}");
        assert!(err.to_string().contains("OneToOne"), "{err}");
    }

    #[test]
    fn disjoint_pairs_apply_together() {
        // Two independent pipelines in shared phases.
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        let a1 = b.add_task(Task::new("A1", 2, TaskProfile::trivial().compute(1.0)));
        let a2 = b.add_task(Task::new("A2", 3, TaskProfile::trivial().compute(2.0)));
        b.begin_phase();
        let b1 = b.add_task(Task::new("B1", 2, TaskProfile::trivial().compute(4.0)));
        let b2 = b.add_task(Task::new("B2", 3, TaskProfile::trivial().compute(8.0)));
        b.depend(b1, a1, DependencyPattern::OneToOne);
        b.depend(b2, a2, DependencyPattern::OneToOne);
        let w = b.build().expect("valid");
        let pairs = fusable_pairs(&w);
        assert_eq!(pairs.len(), 2);
        let fused = fuse(&w, &pairs).expect("fuses");
        assert_eq!(fused.phases.len(), 1);
        assert_eq!(fused.task_count(), 2);
        assert_eq!(
            fused
                .task_by_name("A1+B1")
                .unwrap()
                .1
                .profile
                .compute_secs_vm,
            5.0
        );
        assert_eq!(
            fused
                .task_by_name("A2+B2")
                .unwrap()
                .1
                .profile
                .compute_secs_vm,
            10.0
        );
        // Total work is preserved.
        assert_eq!(fused.total_vm_compute_secs(), w.total_vm_compute_secs());
    }

    #[test]
    fn fused_workflow_round_trips_through_json() {
        let w = chain();
        let fused = fuse(&w, &fusable_pairs(&w)).expect("fuses");
        let back = crate::from_json(&crate::to_json(&fused)).expect("valid json");
        assert_eq!(fused, back);
    }
}
