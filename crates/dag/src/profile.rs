//! Per-task resource profiles.
//!
//! The paper's Mashup takes task *executables* plus a DAG; this reproduction
//! replaces each executable with a [`TaskProfile`] describing how the task
//! consumes compute, memory, and I/O. The cloud models in `mashup-cloud`
//! interpret these fields mechanistically, so every placement-relevant
//! behaviour in the paper (IPC differences between platforms, node-local
//! contention, I/O-heavy phases, short recurring tasks) is expressible here.

use serde::{Deserialize, Serialize};

/// Resource profile of one task. All per-component quantities describe a
/// single component; a task runs `components` identical copies on different
/// inputs (paper §2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// Seconds of pure compute for one component on one VM core.
    pub compute_secs_vm: f64,
    /// Runtime multiplier when the component runs inside a serverless
    /// function instead (captures the IPC gap the paper observes in Fig. 10;
    /// > 1 means the function is slower than a VM core).
    pub serverless_slowdown: f64,
    /// Bytes read by one component from the previous phase / initial input.
    pub input_bytes: f64,
    /// Bytes written by one component for the next phase.
    pub output_bytes: f64,
    /// Peak resident memory of one component, in GiB. Components whose
    /// footprint exceeds the FaaS memory cap cannot run serverless.
    pub memory_gb: f64,
    /// Memory-pressure thrash coefficient on VM nodes: when co-resident
    /// components oversubscribe the node's RAM, compute slows by
    /// `1 + coeff × (resident_set/node_mem − 1)` on top of timesharing
    /// (0 = no thrash; the mechanism behind the paper's superlinear Eq. 2).
    pub vm_local_contention: f64,
    /// Relative runtime spread for cloud variability (e.g. 0.05 = ±5 %).
    pub runtime_jitter: f64,
    /// True for tasks that re-appear frequently in the workflow (e.g.
    /// Mapmerge in Epigenomics). The paper's PDC makes a warm-pool exception
    /// for these.
    pub recurring: bool,
    /// Checkpointable state size of one component, in bytes. Written to
    /// remote storage when a serverless execution hits the platform time cap.
    pub checkpoint_bytes: f64,
    /// Code-identity override for serverless warm pools. Tasks sharing a
    /// family (e.g. `Mapmerge1`/`Mapmerge2` → `"Mapmerge"`) reuse each
    /// other's warm microVMs — the mechanism behind the paper's
    /// frequently-re-appearing-task exception.
    #[serde(default)]
    pub code_family: Option<String>,
}

impl TaskProfile {
    /// A small, neutral profile useful as a starting point in tests.
    pub fn trivial() -> Self {
        TaskProfile {
            compute_secs_vm: 1.0,
            serverless_slowdown: 1.0,
            input_bytes: 0.0,
            output_bytes: 0.0,
            memory_gb: 0.5,
            vm_local_contention: 0.0,
            runtime_jitter: 0.0,
            recurring: false,
            checkpoint_bytes: 0.0,
            code_family: None,
        }
    }

    /// Builder-style: sets per-component compute seconds on a VM core.
    pub fn compute(mut self, secs: f64) -> Self {
        self.compute_secs_vm = secs;
        self
    }

    /// Builder-style: sets the serverless runtime multiplier.
    pub fn slowdown(mut self, factor: f64) -> Self {
        self.serverless_slowdown = factor;
        self
    }

    /// Builder-style: sets per-component input/output bytes.
    pub fn io(mut self, input: f64, output: f64) -> Self {
        self.input_bytes = input;
        self.output_bytes = output;
        self
    }

    /// Builder-style: sets the memory footprint in GiB.
    pub fn memory(mut self, gb: f64) -> Self {
        self.memory_gb = gb;
        self
    }

    /// Builder-style: sets the per-co-resident VM contention coefficient.
    pub fn contention(mut self, coeff: f64) -> Self {
        self.vm_local_contention = coeff;
        self
    }

    /// Builder-style: sets the runtime jitter spread.
    pub fn jitter(mut self, spread: f64) -> Self {
        self.runtime_jitter = spread;
        self
    }

    /// Builder-style: marks the task as frequently recurring.
    pub fn recurring(mut self, yes: bool) -> Self {
        self.recurring = yes;
        self
    }

    /// Builder-style: sets the checkpointable state size in bytes.
    pub fn checkpoint(mut self, bytes: f64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Builder-style: sets the shared code family for warm-pool reuse.
    pub fn family(mut self, name: impl Into<String>) -> Self {
        self.code_family = Some(name.into());
        self
    }

    /// Validates that all fields are finite and in range.
    pub fn validate(&self) -> Result<(), String> {
        let nonneg = [
            ("compute_secs_vm", self.compute_secs_vm),
            ("input_bytes", self.input_bytes),
            ("output_bytes", self.output_bytes),
            ("memory_gb", self.memory_gb),
            ("vm_local_contention", self.vm_local_contention),
            ("checkpoint_bytes", self.checkpoint_bytes),
        ];
        for (name, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "profile field {name} must be finite and >= 0, got {v}"
                ));
            }
        }
        if !self.serverless_slowdown.is_finite() || self.serverless_slowdown <= 0.0 {
            return Err(format!(
                "serverless_slowdown must be positive, got {}",
                self.serverless_slowdown
            ));
        }
        if !(0.0..1.0).contains(&self.runtime_jitter) {
            return Err(format!(
                "runtime_jitter must be in [0,1), got {}",
                self.runtime_jitter
            ));
        }
        Ok(())
    }

    /// Total bytes moved by one component (read + write).
    pub fn io_bytes(&self) -> f64 {
        self.input_bytes + self.output_bytes
    }

    /// Seconds of pure compute for one component inside a serverless
    /// function.
    pub fn compute_secs_serverless(&self) -> f64 {
        self.compute_secs_vm * self.serverless_slowdown
    }
}

impl Default for TaskProfile {
    fn default() -> Self {
        Self::trivial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = TaskProfile::trivial()
            .compute(10.0)
            .slowdown(1.5)
            .io(100.0, 50.0)
            .memory(2.0)
            .contention(0.1)
            .jitter(0.05)
            .recurring(true)
            .checkpoint(42.0);
        assert_eq!(p.compute_secs_vm, 10.0);
        assert_eq!(p.compute_secs_serverless(), 15.0);
        assert_eq!(p.io_bytes(), 150.0);
        assert!(p.recurring);
        assert_eq!(p.checkpoint_bytes, 42.0);
        p.validate().expect("valid profile");
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(TaskProfile::trivial().compute(-1.0).validate().is_err());
        assert!(TaskProfile::trivial().slowdown(0.0).validate().is_err());
        assert!(TaskProfile::trivial().jitter(1.5).validate().is_err());
        let mut p = TaskProfile::trivial();
        p.input_bytes = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = TaskProfile::trivial().compute(3.0).io(1.0, 2.0);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: TaskProfile = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }
}
