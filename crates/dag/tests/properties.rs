//! Property-based tests of DAG invariants.

use mashup_dag::{
    from_json, from_task_graph, to_json, DependencyPattern, RawEdge, Task, TaskProfile,
    WorkflowBuilder,
};
use proptest::prelude::*;

/// Strategy: a random layered workflow with valid dependencies.
fn layered_workflow() -> impl Strategy<Value = mashup_dag::Workflow> {
    // Phases: 1..5, each with 1..4 tasks of 1..64 components, each non-first
    // task depending (AllToAll) on one random task of the previous phase.
    (
        proptest::collection::vec(proptest::collection::vec(1usize..64, 1..4), 1..5),
        any::<u64>(),
    )
        .prop_map(|(shape, seed)| {
            let mut b = WorkflowBuilder::new("prop");
            let mut prev: Vec<mashup_dag::TaskRef> = Vec::new();
            let mut counter = 0usize;
            for (pi, phase) in shape.iter().enumerate() {
                b.begin_phase();
                let mut current = Vec::new();
                for &comps in phase {
                    let t = b.add_task(Task::new(
                        format!("t{counter}"),
                        comps,
                        TaskProfile::trivial(),
                    ));
                    counter += 1;
                    if pi > 0 {
                        let pick = (seed as usize + counter) % prev.len();
                        b.depend(t, prev[pick], DependencyPattern::AllToAll);
                    }
                    current.push(t);
                }
                prev = current;
            }
            b.build().expect("layered construction is always valid")
        })
}

proptest! {
    /// Valid construction always passes validation and JSON round-trips.
    #[test]
    fn json_round_trip_preserves_workflow(w in layered_workflow()) {
        let json = to_json(&w);
        let back = from_json(&json).expect("round trip");
        prop_assert_eq!(w, back);
    }

    /// Component/width arithmetic is consistent.
    #[test]
    fn width_sums_match_component_count(w in layered_workflow()) {
        let sum: usize = w.phases.iter().map(|p| p.width()).sum();
        prop_assert_eq!(sum, w.component_count());
        prop_assert!(w.max_width() <= w.component_count());
        prop_assert!(w.max_width() >= 1);
    }

    /// Every dependency points strictly backwards in phase order.
    #[test]
    fn dependencies_point_backwards(w in layered_workflow()) {
        for r in w.task_refs() {
            for d in &w.task(r).deps {
                prop_assert!(d.producer.phase < r.phase);
            }
        }
    }

    /// Pattern expansion: every consumer component's producer indices are in
    /// range, and union over consumer components covers all producers for
    /// the surjective patterns.
    #[test]
    fn pattern_expansion_in_range(
        producer in 1usize..64,
        pattern_idx in 0usize..4,
    ) {
        use DependencyPattern::*;
        // Derive a compatible consumer count per pattern.
        let (pattern, consumer) = match pattern_idx {
            0 => (OneToOne, producer),
            1 => (AllToAll, (producer % 7) + 1),
            2 => (FanOutBlocks, producer * 3),
            _ => (FanInBlocks, {
                // pick a divisor of producer
                let mut d = 1;
                for c in (1..=producer).rev() {
                    if producer % c == 0 && c <= producer {
                        d = c;
                        break;
                    }
                }
                d
            }),
        };
        pattern.check(producer, consumer).expect("compatible by construction");
        let mut covered = vec![false; producer];
        for comp in 0..consumer {
            for p in pattern.producer_components(producer, consumer, comp) {
                prop_assert!(p < producer, "index {p} out of range {producer}");
                covered[p] = true;
            }
        }
        // All four patterns consume every producer component.
        prop_assert!(covered.iter().all(|&c| c), "pattern {pattern:?} left producers unread");
    }

    /// from_task_graph places every task at its longest-path level, so a
    /// chain of length n yields n phases.
    #[test]
    fn chain_graph_has_one_phase_per_task(n in 1usize..12) {
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(format!("t{i}"), 2, TaskProfile::trivial()))
            .collect();
        let edges: Vec<RawEdge> = (1..n)
            .map(|i| RawEdge::new(format!("t{}", i - 1), format!("t{i}"), DependencyPattern::OneToOne))
            .collect();
        let w = from_task_graph("chain", tasks, edges, 0.0).expect("valid chain");
        prop_assert_eq!(w.phases.len(), n);
        for p in &w.phases {
            prop_assert_eq!(p.tasks.len(), 1);
        }
    }
}
