//! Thread-shardable shared state: [`AtomicRefCell`] and the [`Shared`]
//! handle alias.
//!
//! The engine's world state (links, platforms, drivers) is built from
//! cheap-clone handles to interior-mutable cells. Historically those were
//! `Rc<RefCell<..>>`, which made every engine type `!Send` and pinned each
//! run — and everything holding a handle to one — to the thread that built
//! it. [`AtomicRefCell`] keeps the exact `RefCell` discipline (any number
//! of overlapping shared borrows, or one exclusive borrow; conflicting
//! borrows panic immediately rather than deadlock) but tracks borrows with
//! an atomic counter, so a fully-built world can be handed to a worker
//! thread and executed there.
//!
//! # Concurrency contract
//!
//! This is a *handoff* primitive, not a synchronization primitive. A
//! simulation run is single-threaded internally: one thread builds the
//! world, (at most) one thread at a time drives it, and determinism comes
//! from that confinement. `AtomicRefCell` makes the handoff between
//! threads sound (the atomic counter is sequentially consistent, so borrow
//! state is visible across the move) and turns any accidental cross-thread
//! *concurrent* mutation into a deterministic panic instead of a data
//! race on the counter. It does not make concurrent access to the same
//! cell a supported pattern — genuinely shared state (the plan cache,
//! metric sinks) uses locks or atomics instead.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A cheap-clone, thread-movable handle to interior-mutable state — the
/// `Send` replacement for `Rc<RefCell<T>>`. Cloning shares the same cell.
pub type Shared<T> = Arc<AtomicRefCell<T>>;

/// Wraps `value` in a fresh [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Arc::new(AtomicRefCell::new(value))
}

/// Write-borrow marker: the high bit of the borrow counter. Values below
/// it count live shared borrows; `WRITING` alone marks the one exclusive
/// borrow.
const WRITING: usize = usize::MAX / 2 + 1;

/// A `RefCell` whose borrow flag is an atomic counter, making it `Send`
/// (and shareable behind [`Arc`]) for thread-confined state that only ever
/// *moves* between threads. Borrow rules and panic behaviour are identical
/// to [`std::cell::RefCell`]; see the module docs for the concurrency
/// contract.
pub struct AtomicRefCell<T: ?Sized> {
    borrows: AtomicUsize,
    value: UnsafeCell<T>,
}

// SAFETY: moving the cell moves the T; with T: Send that is fine, and the
// borrow counter is atomic so a handoff between threads observes a
// consistent borrow state. The `Sync` impl intentionally mirrors
// `Mutex<T>` (requires only `T: Send`) rather than `RwLock<T>` (which
// also needs `T: Sync` for concurrent readers): the engine's runtime
// contract is that a cell's borrows — shared ones included — all happen
// on whichever single thread currently owns the run, so cross-thread
// concurrent `&T` never occurs. See the module docs.
unsafe impl<T: ?Sized + Send> Send for AtomicRefCell<T> {}
unsafe impl<T: ?Sized + Send> Sync for AtomicRefCell<T> {}

impl<T> AtomicRefCell<T> {
    /// Creates a cell owning `value`.
    pub fn new(value: T) -> Self {
        AtomicRefCell {
            borrows: AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the cell and returns the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> AtomicRefCell<T> {
    /// Immutably borrows the value. Any number of shared borrows may
    /// overlap. Panics if an exclusive borrow is live — same discipline as
    /// [`std::cell::RefCell::borrow`].
    #[track_caller]
    pub fn borrow(&self) -> AtomicRef<'_, T> {
        let prev = self.borrows.fetch_add(1, Ordering::SeqCst);
        if prev >= WRITING {
            self.borrows.fetch_sub(1, Ordering::SeqCst);
            panic!("already mutably borrowed");
        }
        // SAFETY: the counter now records a shared borrow and excluded any
        // live exclusive borrow, so no `&mut T` exists.
        AtomicRef {
            value: unsafe { &*self.value.get() },
            borrows: &self.borrows,
        }
    }

    /// Mutably borrows the value. Panics if any borrow is live — same
    /// discipline as [`std::cell::RefCell::borrow_mut`].
    #[track_caller]
    pub fn borrow_mut(&self) -> AtomicRefMut<'_, T> {
        if self
            .borrows
            .compare_exchange(0, WRITING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            panic!("already borrowed");
        }
        // SAFETY: the CAS succeeded, so this is the only live borrow.
        AtomicRefMut {
            value: unsafe { &mut *self.value.get() },
            borrows: &self.borrows,
        }
    }

    /// Exclusive access through a unique reference — no runtime check
    /// needed, mirroring [`std::cell::RefCell::get_mut`].
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Copy> AtomicRefCell<T> {
    /// Copies the value out — the [`std::cell::Cell::get`] convenience for
    /// `Copy` payloads (takes a momentary shared borrow).
    #[track_caller]
    pub fn get(&self) -> T {
        *self.borrow()
    }

    /// Replaces the value — the [`std::cell::Cell::set`] convenience for
    /// `Copy` payloads (takes a momentary exclusive borrow).
    #[track_caller]
    pub fn set(&self, value: T) {
        *self.borrow_mut() = value;
    }
}

impl<T: Default> Default for AtomicRefCell<T> {
    fn default() -> Self {
        AtomicRefCell::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for AtomicRefCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRefCell")
            .field("value", &&*self.borrow())
            .finish()
    }
}

/// Shared borrow guard for [`AtomicRefCell`].
pub struct AtomicRef<'a, T: ?Sized> {
    value: &'a T,
    borrows: &'a AtomicUsize,
}

impl<T: ?Sized> Deref for AtomicRef<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T: ?Sized> Drop for AtomicRef<'_, T> {
    fn drop(&mut self) {
        self.borrows.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Exclusive borrow guard for [`AtomicRefCell`].
pub struct AtomicRefMut<'a, T: ?Sized> {
    value: &'a mut T,
    borrows: &'a AtomicUsize,
}

impl<T: ?Sized> Deref for AtomicRefMut<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T: ?Sized> DerefMut for AtomicRefMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
    }
}

impl<T: ?Sized> Drop for AtomicRefMut<'_, T> {
    fn drop(&mut self) {
        self.borrows.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let cell = shared(41);
        *cell.borrow_mut() += 1;
        assert_eq!(*cell.borrow(), 42);
    }

    #[test]
    fn clones_share_the_same_cell() {
        let a = shared(vec![1u32]);
        let b = a.clone();
        b.borrow_mut().push(2);
        assert_eq!(*a.borrow(), vec![1, 2]);
    }

    #[test]
    fn shared_borrows_overlap() {
        let cell = AtomicRefCell::new(7);
        let r1 = cell.borrow();
        let r2 = cell.borrow();
        assert_eq!(*r1 + *r2, 14);
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn write_under_read_panics() {
        let cell = AtomicRefCell::new(0);
        let _r = cell.borrow();
        let _w = cell.borrow_mut();
    }

    #[test]
    #[should_panic(expected = "already mutably borrowed")]
    fn read_under_write_panics() {
        let cell = AtomicRefCell::new(0);
        let _w = cell.borrow_mut();
        let _r = cell.borrow();
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn double_write_panics() {
        let cell = AtomicRefCell::new(0);
        let _w1 = cell.borrow_mut();
        let _w2 = cell.borrow_mut();
    }

    #[test]
    fn borrows_release_on_drop() {
        let cell = AtomicRefCell::new(1);
        drop(cell.borrow());
        drop(cell.borrow_mut());
        assert_eq!(*cell.borrow(), 1);
    }

    #[test]
    fn failed_read_does_not_leak_a_borrow() {
        let cell = shared(0u32);
        {
            let _w = cell.borrow_mut();
            let cell2 = cell.clone();
            let read = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _ = cell2.borrow();
            }));
            assert!(read.is_err());
        }
        // The failed read must have rolled its increment back.
        assert_eq!(*cell.borrow_mut(), 0);
    }

    #[test]
    fn a_world_built_here_runs_on_another_thread() {
        let cell = shared(vec![0u64]);
        let moved = cell.clone();
        let handle = std::thread::spawn(move || {
            moved.borrow_mut().push(9);
            moved.borrow().iter().sum::<u64>()
        });
        assert_eq!(handle.join().expect("worker"), 9);
        assert_eq!(cell.borrow().len(), 2);
    }

    #[test]
    fn get_mut_bypasses_the_counter() {
        let mut cell = AtomicRefCell::new(5);
        *cell.get_mut() = 6;
        assert_eq!(cell.into_inner(), 6);
    }

    /// Compile-time: the whole point of the type.
    #[test]
    fn shared_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Shared<Vec<u32>>>();
        assert_send_sync::<AtomicRefCell<String>>();
    }
}
