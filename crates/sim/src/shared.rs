//! Thread-shardable shared state: [`AtomicRefCell`] and the [`Shared`]
//! handle alias.
//!
//! The engine's world state (links, platforms, drivers) is built from
//! cheap-clone handles to interior-mutable cells. Historically those were
//! `Rc<RefCell<..>>`, which made every engine type `!Send` and pinned each
//! run — and everything holding a handle to one — to the thread that built
//! it. [`AtomicRefCell`] tracks its borrow flag with an atomic, so a
//! fully-built world can be handed to a worker thread and executed there.
//!
//! The borrow discipline is *stricter* than `RefCell`: **every** borrow is
//! exclusive — at most one live borrow per cell at any instant, shared or
//! mutable — and a conflicting borrow panics immediately rather than
//! deadlock. This is what makes the cell sound to share across threads
//! (see below); the engine never overlaps borrows of a single cell, so the
//! stricter rule costs it nothing.
//!
//! # Concurrency contract — why `Sync` only needs `T: Send`
//!
//! The cell is `Sync` for `T: Send` for the same reason `Mutex<T>` is: no
//! two threads can ever observe `&T` (or `&mut T`) at the same time. A
//! `borrow()` here is a try-lock that panics instead of blocking, not a
//! reader-count — if shared borrows could overlap, two threads could both
//! reach a `Send`-but-`!Sync` payload through `&T` (e.g. both calling
//! `Cell::set`), a data race reachable from safe code. Exclusivity closes
//! that hole at the cost of disallowing overlapping reads, which the
//! engine's `RefCell`-era code never relied on.
//!
//! Operationally this remains a *handoff* primitive, not a contention
//! primitive. A simulation run is single-threaded internally: one thread
//! builds the world, (at most) one thread at a time drives it, and
//! determinism comes from that confinement. The sequentially consistent
//! borrow flag makes the handoff sound, and any accidental cross-thread
//! concurrent access panics deterministically. Genuinely shared state (the
//! plan cache, metric sinks) uses locks or atomics instead.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A cheap-clone, thread-movable handle to interior-mutable state — the
/// `Send` replacement for `Rc<RefCell<T>>`. Cloning shares the same cell.
pub type Shared<T> = Arc<AtomicRefCell<T>>;

/// Wraps `value` in a fresh [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Arc::new(AtomicRefCell::new(value))
}

/// Shared-borrow marker: the flag is `READING` while an [`AtomicRef`] is
/// live. Borrows are exclusive, so the flag is exactly `0`, `READING`, or
/// `WRITING` — never a count.
const READING: usize = 1;

/// Exclusive-borrow marker: the flag is `WRITING` while an
/// [`AtomicRefMut`] is live.
const WRITING: usize = usize::MAX / 2 + 1;

/// A `RefCell`-style cell whose borrow flag is an atomic, making it `Send`
/// and `Sync` (and shareable behind [`Arc`]) for thread-confined state
/// that only ever *moves* between threads. Stricter than
/// [`std::cell::RefCell`]: every borrow — [`borrow`](Self::borrow)
/// included — is exclusive, like a [`std::sync::Mutex`] try-lock that
/// panics instead of blocking. See the module docs for why that
/// exclusivity is what makes sharing the cell across threads sound.
pub struct AtomicRefCell<T: ?Sized> {
    borrows: AtomicUsize,
    value: UnsafeCell<T>,
}

// SAFETY: moving the cell moves the T; with T: Send that is fine, and the
// borrow flag is atomic so a handoff between threads observes a consistent
// borrow state.
unsafe impl<T: ?Sized + Send> Send for AtomicRefCell<T> {}
// SAFETY: `Sync` with only `T: Send` is sound for the same reason it is
// for `Mutex<T>`: every borrow — shared or mutable — is exclusive (the
// flag transitions 0 -> READING/WRITING via compare-exchange and back to 0
// on guard drop), so no two threads can simultaneously hold references
// into the cell, and the SeqCst flag orders each access after the previous
// one's release. Concurrent borrow attempts panic rather than race. A
// reader-counted variant (overlapping shared borrows, as in the published
// `atomic_refcell` crate) would instead require `T: Sync`, because two
// threads could then reach a `!Sync` payload through `&T` concurrently.
unsafe impl<T: ?Sized + Send> Sync for AtomicRefCell<T> {}

impl<T> AtomicRefCell<T> {
    /// Creates a cell owning `value`.
    pub fn new(value: T) -> Self {
        AtomicRefCell {
            borrows: AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the cell and returns the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> AtomicRefCell<T> {
    /// Immutably borrows the value. Panics if **any** borrow is live —
    /// stricter than [`std::cell::RefCell::borrow`]: shared borrows do not
    /// overlap (each one is an exclusive lock), which is what lets the
    /// cell be `Sync` without `T: Sync`. See the module docs.
    #[track_caller]
    pub fn borrow(&self) -> AtomicRef<'_, T> {
        if self
            .borrows
            .compare_exchange(0, READING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            if self.borrows.load(Ordering::SeqCst) >= WRITING {
                panic!("already mutably borrowed");
            }
            panic!("already borrowed");
        }
        // SAFETY: the CAS succeeded, so this is the only live borrow — no
        // other `&T` or `&mut T` exists anywhere, on any thread.
        AtomicRef {
            value: unsafe { &*self.value.get() },
            borrows: &self.borrows,
        }
    }

    /// Mutably borrows the value. Panics if any borrow is live — same
    /// discipline as [`std::cell::RefCell::borrow_mut`].
    #[track_caller]
    pub fn borrow_mut(&self) -> AtomicRefMut<'_, T> {
        if self
            .borrows
            .compare_exchange(0, WRITING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            panic!("already borrowed");
        }
        // SAFETY: the CAS succeeded, so this is the only live borrow.
        AtomicRefMut {
            value: unsafe { &mut *self.value.get() },
            borrows: &self.borrows,
        }
    }

    /// Exclusive access through a unique reference — no runtime check
    /// needed, mirroring [`std::cell::RefCell::get_mut`].
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Copy> AtomicRefCell<T> {
    /// Copies the value out — the [`std::cell::Cell::get`] convenience for
    /// `Copy` payloads (takes a momentary shared borrow).
    #[track_caller]
    pub fn get(&self) -> T {
        *self.borrow()
    }

    /// Replaces the value — the [`std::cell::Cell::set`] convenience for
    /// `Copy` payloads (takes a momentary exclusive borrow).
    #[track_caller]
    pub fn set(&self, value: T) {
        *self.borrow_mut() = value;
    }
}

impl<T: Default> Default for AtomicRefCell<T> {
    fn default() -> Self {
        AtomicRefCell::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for AtomicRefCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRefCell")
            .field("value", &&*self.borrow())
            .finish()
    }
}

/// Shared borrow guard for [`AtomicRefCell`].
pub struct AtomicRef<'a, T: ?Sized> {
    value: &'a T,
    borrows: &'a AtomicUsize,
}

impl<T: ?Sized> Deref for AtomicRef<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T: ?Sized> Drop for AtomicRef<'_, T> {
    fn drop(&mut self) {
        self.borrows.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Exclusive borrow guard for [`AtomicRefCell`].
pub struct AtomicRefMut<'a, T: ?Sized> {
    value: &'a mut T,
    borrows: &'a AtomicUsize,
}

impl<T: ?Sized> Deref for AtomicRefMut<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T: ?Sized> DerefMut for AtomicRefMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
    }
}

impl<T: ?Sized> Drop for AtomicRefMut<'_, T> {
    fn drop(&mut self) {
        self.borrows.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let cell = shared(41);
        *cell.borrow_mut() += 1;
        assert_eq!(*cell.borrow(), 42);
    }

    #[test]
    fn clones_share_the_same_cell() {
        let a = shared(vec![1u32]);
        let b = a.clone();
        b.borrow_mut().push(2);
        assert_eq!(*a.borrow(), vec![1, 2]);
    }

    #[test]
    fn sequential_reads_work() {
        let cell = AtomicRefCell::new(7);
        let a = *cell.borrow();
        let b = *cell.borrow();
        assert_eq!(a + b, 14);
    }

    /// Shared borrows are exclusive — the soundness lynchpin of the
    /// `Sync for T: Send` impl (two overlapping `&T` across threads would
    /// be a data race on a `Send`-but-`!Sync` payload).
    #[test]
    #[should_panic(expected = "already borrowed")]
    fn read_under_read_panics() {
        let cell = AtomicRefCell::new(7);
        let _r1 = cell.borrow();
        // the panic under test is the overlap itself; lint: allow(borrow-overlap)
        let _r2 = cell.borrow();
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn write_under_read_panics() {
        let cell = AtomicRefCell::new(0);
        let _r = cell.borrow();
        // the panic under test is the overlap itself; lint: allow(borrow-overlap)
        let _w = cell.borrow_mut();
    }

    #[test]
    #[should_panic(expected = "already mutably borrowed")]
    fn read_under_write_panics() {
        let cell = AtomicRefCell::new(0);
        let _w = cell.borrow_mut();
        // the panic under test is the overlap itself; lint: allow(borrow-overlap)
        let _r = cell.borrow();
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn double_write_panics() {
        let cell = AtomicRefCell::new(0);
        let _w1 = cell.borrow_mut();
        // the panic under test is the overlap itself; lint: allow(borrow-overlap)
        let _w2 = cell.borrow_mut();
    }

    #[test]
    fn borrows_release_on_drop() {
        let cell = AtomicRefCell::new(1);
        drop(cell.borrow());
        drop(cell.borrow_mut());
        assert_eq!(*cell.borrow(), 1);
    }

    #[test]
    fn failed_read_does_not_leak_a_borrow() {
        let cell = shared(0u32);
        {
            let _w = cell.borrow_mut();
            let cell2 = cell.clone();
            let read = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _ = cell2.borrow();
            }));
            assert!(read.is_err());
        }
        // The failed read must not have disturbed the borrow flag.
        assert_eq!(*cell.borrow_mut(), 0);
    }

    #[test]
    fn a_world_built_here_runs_on_another_thread() {
        let cell = shared(vec![0u64]);
        let moved = cell.clone();
        let handle = std::thread::spawn(move || {
            moved.borrow_mut().push(9);
            moved.borrow().iter().sum::<u64>()
        });
        assert_eq!(handle.join().expect("worker"), 9);
        assert_eq!(cell.borrow().len(), 2);
    }

    #[test]
    fn get_mut_bypasses_the_counter() {
        let mut cell = AtomicRefCell::new(5);
        *cell.get_mut() = 6;
        assert_eq!(cell.into_inner(), 6);
    }

    /// Compile-time: the whole point of the type. The `Cell` payload is
    /// `Send` but `!Sync` — admissible here precisely because borrows are
    /// exclusive, so no two threads ever reach it through `&Cell<_>`.
    #[test]
    fn shared_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Shared<Vec<u32>>>();
        assert_send_sync::<AtomicRefCell<String>>();
        assert_send_sync::<AtomicRefCell<std::cell::Cell<u64>>>();
        assert_send_sync::<Shared<Box<dyn FnOnce() + Send>>>();
    }
}
