//! Simulation clock types.
//!
//! The engine measures time in seconds stored as `f64`. Two newtypes keep
//! instants and durations from being mixed up and provide the total ordering
//! the event queue needs (`NaN` is rejected at construction).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in seconds since simulation start.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. Always finite and non-negative.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds. Panics on NaN or negative values.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration elapsed since `earlier`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }

    /// Saturating difference: zero when `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds. Panics on NaN, infinity, or negatives.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid SimDuration: {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1000.0)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in hours (useful for per-hour pricing).
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True if this duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Difference clamped at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Constructors reject NaN, so a total order exists.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}
impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!((t - SimTime::from_secs(10.0)).as_secs(), 5.0);
    }

    #[test]
    fn duration_unit_constructors() {
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_hours(1.0).as_secs(), 3600.0);
        assert_eq!(SimDuration::from_millis(250.0).as_secs(), 0.25);
        assert_eq!(SimDuration::from_hours(0.5).as_hours(), 0.5);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(4.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_secs(), 3.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid SimDuration")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        let ta = SimTime::from_secs(1.0);
        let tb = SimTime::from_secs(2.0);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
