//! The discrete-event simulation core.
//!
//! Events are boxed `FnOnce(&mut Simulation) + Send` closures ordered by
//! `(time, sequence-number)`. The sequence number makes simultaneous events
//! fire in scheduling order, so a run is fully deterministic for a given
//! seed and program order. World state lives outside the engine (typically
//! behind [`Shared`](crate::Shared) handles captured by the event
//! closures), which keeps the engine free of domain knowledge. Closures
//! are `Send` so an entire simulation — queue, world handles, and all —
//! can be built on one thread and executed on another; each run still
//! executes single-threaded, which is where its determinism comes from.
//!
//! Cancellation uses a slot/generation slab rather than a tombstone set: a
//! handle names a slot plus the generation it was issued for, and cancelling
//! (or firing) bumps the generation so stale heap entries are recognised and
//! skipped on pop. A live-event counter makes `is_idle` O(1), and the heap is
//! compacted in place once dead entries outnumber live ones, so replan-heavy
//! workloads (cancel + reschedule per transfer arrival) no longer accumulate
//! unbounded garbage.

use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// An event callback: runs at its scheduled instant with access to the engine
/// so it can schedule follow-up events. `Send` so simulations can migrate
/// between worker threads while parked.
pub type EventFn = Box<dyn FnOnce(&mut Simulation) + Send>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
    run: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Slab entry backing one event slot. The generation is bumped whenever the
/// slot's event fires or is cancelled, so previously issued handles and stale
/// heap entries stop matching.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
}

/// Token identifying a scheduled event, usable to cancel it before it fires.
///
/// Internally packs (slot, generation); cancelling an already-fired or
/// already-cancelled event finds a bumped generation and is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(slot: u32, gen: u32) -> Self {
        EventHandle(u64::from(slot) | (u64::from(gen) << 32))
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Dead-entry count below which compaction is never attempted; tiny queues
/// are cheap to scan and compacting them would thrash.
const COMPACT_MIN_DEAD: usize = 64;

/// A deterministic discrete-event simulator.
///
/// # Example
/// ```
/// use mashup_sim::{shared, Simulation, SimDuration};
///
/// let mut sim = Simulation::new();
/// let hits = shared(0);
/// let h = hits.clone();
/// sim.schedule_in(SimDuration::from_secs(5.0), move |sim| {
///     *h.borrow_mut() += 1;
///     assert_eq!(sim.now().as_secs(), 5.0);
/// });
/// sim.run();
/// assert_eq!(*hits.borrow(), 1);
/// ```
pub struct Simulation {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Same-instant fast path: events scheduled for exactly `now` land in
    /// this FIFO ring instead of the heap (O(1) instead of O(log n)), so a
    /// wide fan-out spawned within one instant doesn't pay per-event heap
    /// operations. Invariant: every ring entry has `at == now` (the ring
    /// drains before the clock can advance), and ring sequence numbers
    /// exceed those of any equal-time heap entries, so the dispatch loop
    /// merges the two sources by `(at, seq)` without reordering anything.
    now_ring: VecDeque<Scheduled>,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Events in the heap whose generation still matches their slot.
    live: usize,
    /// Stale heap entries (cancelled) awaiting skip-on-pop or compaction.
    dead: usize,
    events_processed: u64,
    /// Hard cap on processed events; guards against runaway event loops.
    event_limit: u64,
    /// Flight recorder; dispatch instants are emitted at verbose level only.
    tracer: Tracer,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at t = 0.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            now_ring: VecDeque::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            dead: 0,
            events_processed: 0,
            event_limit: u64::MAX,
            tracer: Tracer::off(),
        }
    }

    /// Attaches a flight recorder. Verbose tracers capture one `Dispatch`
    /// instant per processed event; flow-level tracers record nothing here
    /// (the domain layers carry their own handles).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached flight recorder (off by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Sets a hard cap on the number of events processed; `run` panics when
    /// exceeded. Useful for catching accidental event storms in tests.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules `event` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut Simulation) + Send + 'static,
    ) -> EventHandle {
        self.push_event(at, Box::new(event))
    }

    fn push_event(&mut self, at: SimTime, run: EventFn) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("event slot index overflow");
                self.slots.push(Slot { gen: 0 });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        let scheduled = Scheduled {
            at,
            seq,
            slot,
            gen,
            run,
        };
        if at == self.now {
            self.now_ring.push_back(scheduled);
        } else {
            self.queue.push(Reverse(scheduled));
        }
        self.live += 1;
        EventHandle::new(slot, gen)
    }

    /// Schedules a homogeneous batch of events at absolute time `at`, in
    /// iteration order. Equivalent to calling [`schedule_at`](Self::schedule_at)
    /// per event (consecutive sequence numbers, identical dispatch order)
    /// but amortizes slot bookkeeping, and same-instant batches bypass the
    /// heap entirely.
    pub fn schedule_batch_at(&mut self, at: SimTime, events: impl IntoIterator<Item = EventFn>) {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        if at == self.now {
            self.now_ring.reserve(lower);
        } else {
            self.queue.reserve(lower);
        }
        for event in events {
            self.push_event(at, event);
        }
    }

    /// Schedules a batch after `delay` from now (see
    /// [`schedule_batch_at`](Self::schedule_batch_at)).
    pub fn schedule_batch_in(
        &mut self,
        delay: SimDuration,
        events: impl IntoIterator<Item = EventFn>,
    ) {
        self.schedule_batch_at(self.now + delay, events);
    }

    /// Schedules a batch at the current instant, after all events already
    /// queued for this instant (see [`schedule_batch_at`](Self::schedule_batch_at)).
    pub fn schedule_batch_now(&mut self, events: impl IntoIterator<Item = EventFn>) {
        self.schedule_batch_at(self.now, events);
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Simulation) + Send + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to run at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(
        &mut self,
        event: impl FnOnce(&mut Simulation) + Send + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now, event)
    }

    /// Cancels a scheduled event. Cancelling an already-fired or already-
    /// cancelled event is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        let slot = handle.slot() as usize;
        if slot >= self.slots.len() || self.slots[slot].gen != handle.gen() {
            return;
        }
        self.retire_slot(slot);
        self.live -= 1;
        self.dead += 1;
        self.maybe_compact();
    }

    /// Invalidates a slot's outstanding generation and returns it to the free
    /// list for reuse by a later `schedule_*`.
    fn retire_slot(&mut self, slot: usize) {
        self.slots[slot].gen = self.slots[slot].gen.wrapping_add(1);
        self.free_slots.push(slot as u32);
    }

    /// Rebuilds the queues without dead entries once they outnumber live
    /// ones. Ordering is untouched: the heap is rebuilt from the surviving
    /// `(at, seq)` pairs, which are totally ordered, and the ring keeps its
    /// FIFO (= seq) order.
    fn maybe_compact(&mut self) {
        if self.dead < COMPACT_MIN_DEAD || self.dead * 2 <= self.queue.len() + self.now_ring.len() {
            return;
        }
        let heap = std::mem::take(&mut self.queue);
        let mut entries = heap.into_vec();
        entries.retain(|Reverse(s)| self.slots[s.slot as usize].gen == s.gen);
        self.queue = BinaryHeap::from(entries);
        let mut ring = std::mem::take(&mut self.now_ring);
        ring.retain(|s| self.slots[s.slot as usize].gen == s.gen);
        self.now_ring = ring;
        self.dead = 0;
    }

    /// Runs until the queue drains. Returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(None)
    }

    /// Runs until the queue drains or the clock passes `deadline`.
    /// Events scheduled exactly at the deadline still fire.
    pub fn run_until(&mut self, deadline: Option<SimTime>) -> SimTime {
        loop {
            // Merge the same-instant ring with the heap by (at, seq): ring
            // entries sit at the current instant with later sequence
            // numbers, so equal-time heap entries (scheduled from an
            // earlier instant) still fire first.
            let from_ring = match (self.now_ring.front(), self.queue.peek()) {
                (Some(r), Some(Reverse(h))) => (r.at, r.seq) < (h.at, h.seq),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let head = if from_ring {
                self.now_ring.pop_front().expect("ring head")
            } else {
                let Reverse(h) = self.queue.pop().expect("heap head");
                h
            };
            if self.slots[head.slot as usize].gen != head.gen {
                // Stale entry for a cancelled event: drop it.
                self.dead -= 1;
                continue;
            }
            if let Some(d) = deadline {
                if head.at > d {
                    // Put it back for a later resume and stop at the deadline.
                    if from_ring {
                        self.now_ring.push_front(head);
                    } else {
                        self.queue.push(Reverse(head));
                    }
                    self.now = d;
                    return self.now;
                }
            }
            debug_assert!(head.at >= self.now, "event queue went backwards");
            self.now = head.at;
            self.retire_slot(head.slot as usize);
            self.live -= 1;
            self.events_processed += 1;
            if self.events_processed > self.event_limit {
                panic!(
                    "simulation exceeded event limit of {} events",
                    self.event_limit
                );
            }
            let events = self.events_processed;
            self.tracer
                .emit_verbose(self.now, || TraceEvent::Dispatch { events });
            (head.run)(self);
        }
        if let Some(d) = deadline {
            self.now = self.now.max(d);
        }
        self.now
    }

    /// True if no events remain. O(1): tracked by a live-event counter
    /// rather than scanning the heap for non-cancelled entries.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::{shared, Shared};

    fn record(log: &Shared<Vec<u32>>, id: u32) -> impl FnOnce(&mut Simulation) + Send + 'static {
        let log = log.clone();
        move |_| log.borrow_mut().push(id)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        sim.schedule_at(SimTime::from_secs(3.0), record(&log, 3));
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 2));
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(end.as_secs(), 3.0);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        for id in 0..10 {
            sim.schedule_at(SimTime::from_secs(1.0), record(&log, id));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let log2 = log.clone();
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            log2.borrow_mut().push(sim.now().as_secs() as u32);
            let log3 = log2.clone();
            sim.schedule_in(SimDuration::from_secs(4.0), move |sim| {
                log3.borrow_mut().push(sim.now().as_secs() as u32);
            });
        });
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 5]);
        assert_eq!(end.as_secs(), 5.0);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let h = sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 2));
        sim.cancel(h);
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn run_until_deadline_pauses_and_resumes() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.schedule_at(SimTime::from_secs(10.0), record(&log, 10));
        let t = sim.run_until(Some(SimTime::from_secs(5.0)));
        assert_eq!(t.as_secs(), 5.0);
        assert_eq!(*log.borrow(), vec![1]);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 10]);
    }

    #[test]
    fn deadline_advances_clock_even_when_idle() {
        let mut sim = Simulation::new();
        let t = sim.run_until(Some(SimTime::from_secs(7.0)));
        assert_eq!(t.as_secs(), 7.0);
        assert_eq!(sim.now().as_secs(), 7.0);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let log2 = log.clone();
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            log2.borrow_mut().push(100);
            let log3 = log2.clone();
            sim.schedule_now(move |_| log3.borrow_mut().push(101));
        });
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 200));
        sim.run();
        // The follow-up runs at the same instant, but after event 200 which
        // was scheduled earlier.
        assert_eq!(*log.borrow(), vec![100, 200, 101]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5.0), |sim| {
            sim.schedule_at(SimTime::from_secs(1.0), |_| {});
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_detects_runaway_loops() {
        let mut sim = Simulation::new().with_event_limit(100);
        fn rearm(sim: &mut Simulation) {
            sim.schedule_in(SimDuration::from_secs(1.0), rearm);
        }
        sim.schedule_now(rearm);
        sim.run();
    }

    #[test]
    fn events_processed_counts_fired_events_only() {
        let mut sim = Simulation::new();
        let h = sim.schedule_at(SimTime::from_secs(1.0), |_| {});
        sim.schedule_at(SimTime::from_secs(2.0), |_| {});
        sim.cancel(h);
        sim.run();
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn cancel_of_fired_event_is_noop_even_after_slot_reuse() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let h1 = sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.run();
        // h1's slot is free now; the next schedule reuses it with a bumped
        // generation. Cancelling the stale h1 must not kill the new event.
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 2));
        sim.cancel(h1);
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn double_cancel_is_noop_even_after_slot_reuse() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let h1 = sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.cancel(h1);
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 2));
        sim.cancel(h1);
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn is_idle_is_exact_under_cancel_churn() {
        let mut sim = Simulation::new();
        assert!(sim.is_idle());
        let mut handle = None;
        for _ in 0..10_000 {
            if let Some(h) = handle.take() {
                sim.cancel(h);
            }
            handle = Some(sim.schedule_in(SimDuration::from_secs(1.0), |_| {}));
            assert!(!sim.is_idle());
        }
        sim.run();
        assert!(sim.is_idle());
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn batch_scheduling_matches_individual_scheduling_order() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 0));
        let batch: Vec<EventFn> = (1..=5)
            .map(|i| Box::new(record(&log, i)) as EventFn)
            .collect();
        sim.schedule_batch_at(SimTime::from_secs(1.0), batch);
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 6));
        sim.run();
        assert_eq!(*log.borrow(), (0..=6).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_batch_interleaves_with_heap_events_by_seq() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let log2 = log.clone();
        // At t=1 the first event batch-schedules followups at the current
        // instant (ring path); an equal-time heap event scheduled earlier
        // must still fire before the batch.
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            log2.borrow_mut().push(100);
            let batch: Vec<EventFn> = (0..3)
                .map(|i| Box::new(record(&log2, 300 + i)) as EventFn)
                .collect();
            sim.schedule_batch_now(batch);
        });
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 200));
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 400));
        sim.run();
        assert_eq!(*log.borrow(), vec![100, 200, 300, 301, 302, 400]);
    }

    #[test]
    fn same_instant_events_are_cancellable() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let log2 = log.clone();
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            let h = sim.schedule_now(record(&log2, 1));
            sim.schedule_now(record(&log2, 2));
            sim.cancel(h);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
        assert!(sim.is_idle());
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn compaction_retains_live_ring_entries() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let log2 = log.clone();
        // Inside one instant: a live ring event, then enough cancelled ones
        // to trip compaction; the survivor must still fire.
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            sim.schedule_now(record(&log2, 7));
            let doomed: Vec<_> = (0..200).map(|_| sim.schedule_now(|_| {})).collect();
            for h in doomed {
                sim.cancel(h);
            }
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![7]);
    }

    #[test]
    fn batch_deadline_pause_preserves_pending_events() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        let batch: Vec<EventFn> = vec![Box::new(record(&log, 1)), Box::new(record(&log, 2))];
        sim.schedule_batch_at(SimTime::from_secs(10.0), batch);
        let t = sim.run_until(Some(SimTime::from_secs(5.0)));
        assert_eq!(t.as_secs(), 5.0);
        assert!(log.borrow().is_empty());
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn compaction_keeps_live_events_and_ordering() {
        let mut sim = Simulation::new();
        let log = shared(Vec::new());
        // Interleave survivors with a tombstone flood large enough to trip
        // compaction several times over.
        let mut doomed = Vec::new();
        for i in 0..500u32 {
            sim.schedule_at(SimTime::from_secs(f64::from(i) + 0.5), record(&log, i));
            doomed.push(sim.schedule_at(
                SimTime::from_secs(f64::from(i) + 0.7),
                record(&log, 10_000 + i),
            ));
        }
        for h in doomed {
            sim.cancel(h);
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..500).collect::<Vec<_>>());
        assert_eq!(sim.events_processed(), 500);
    }
}
