//! The discrete-event simulation core.
//!
//! Events are boxed `FnOnce(&mut Simulation)` closures ordered by
//! `(time, sequence-number)`. The sequence number makes simultaneous events
//! fire in scheduling order, so a run is fully deterministic for a given
//! seed and program order. World state lives outside the engine (typically
//! behind `Rc<RefCell<..>>` handles captured by the event closures), which
//! keeps the engine free of domain knowledge.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event callback: runs at its scheduled instant with access to the engine
/// so it can schedule follow-up events.
pub type EventFn = Box<dyn FnOnce(&mut Simulation)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    run: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Token identifying a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A deterministic discrete-event simulator.
///
/// # Example
/// ```
/// use mashup_sim::{Simulation, SimDuration};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new();
/// let hits = Rc::new(Cell::new(0));
/// let h = hits.clone();
/// sim.schedule_in(SimDuration::from_secs(5.0), move |sim| {
///     h.set(h.get() + 1);
///     assert_eq!(sim.now().as_secs(), 5.0);
/// });
/// sim.run();
/// assert_eq!(hits.get(), 1);
/// ```
pub struct Simulation {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    cancelled: std::collections::HashSet<u64>,
    events_processed: u64,
    /// Hard cap on processed events; guards against runaway event loops.
    event_limit: u64,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at t = 0.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            events_processed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Sets a hard cap on the number of events processed; `run` panics when
    /// exceeded. Useful for catching accidental event storms in tests.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules `event` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            run: Box::new(event),
        }));
        EventHandle(seq)
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to run at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: impl FnOnce(&mut Simulation) + 'static) -> EventHandle {
        self.schedule_at(self.now, event)
    }

    /// Cancels a scheduled event. Cancelling an already-fired or already-
    /// cancelled event is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Runs until the queue drains. Returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(None)
    }

    /// Runs until the queue drains or the clock passes `deadline`.
    /// Events scheduled exactly at the deadline still fire.
    pub fn run_until(&mut self, deadline: Option<SimTime>) -> SimTime {
        while let Some(Reverse(head)) = self.queue.pop() {
            if self.cancelled.remove(&head.seq) {
                continue;
            }
            if let Some(d) = deadline {
                if head.at > d {
                    // Put it back for a later resume and stop at the deadline.
                    self.queue.push(Reverse(head));
                    self.now = d;
                    return self.now;
                }
            }
            debug_assert!(head.at >= self.now, "event queue went backwards");
            self.now = head.at;
            self.events_processed += 1;
            if self.events_processed > self.event_limit {
                panic!(
                    "simulation exceeded event limit of {} events",
                    self.event_limit
                );
            }
            (head.run)(self);
        }
        if let Some(d) = deadline {
            self.now = self.now.max(d);
        }
        self.now
    }

    /// True if no events remain (ignoring cancelled ones still in the heap).
    pub fn is_idle(&self) -> bool {
        self.queue
            .iter()
            .all(|Reverse(s)| self.cancelled.contains(&s.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn record(log: &Rc<RefCell<Vec<u32>>>, id: u32) -> impl FnOnce(&mut Simulation) + 'static {
        let log = log.clone();
        move |_| log.borrow_mut().push(id)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_at(SimTime::from_secs(3.0), record(&log, 3));
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 2));
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(end.as_secs(), 3.0);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for id in 0..10 {
            sim.schedule_at(SimTime::from_secs(1.0), record(&log, id));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            log2.borrow_mut().push(sim.now().as_secs() as u32);
            let log3 = log2.clone();
            sim.schedule_in(SimDuration::from_secs(4.0), move |sim| {
                log3.borrow_mut().push(sim.now().as_secs() as u32);
            });
        });
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 5]);
        assert_eq!(end.as_secs(), 5.0);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let h = sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.schedule_at(SimTime::from_secs(2.0), record(&log, 2));
        sim.cancel(h);
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn run_until_deadline_pauses_and_resumes() {
        let mut sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 1));
        sim.schedule_at(SimTime::from_secs(10.0), record(&log, 10));
        let t = sim.run_until(Some(SimTime::from_secs(5.0)));
        assert_eq!(t.as_secs(), 5.0);
        assert_eq!(*log.borrow(), vec![1]);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 10]);
    }

    #[test]
    fn deadline_advances_clock_even_when_idle() {
        let mut sim = Simulation::new();
        let t = sim.run_until(Some(SimTime::from_secs(7.0)));
        assert_eq!(t.as_secs(), 7.0);
        assert_eq!(sim.now().as_secs(), 7.0);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        sim.schedule_at(SimTime::from_secs(1.0), move |sim| {
            log2.borrow_mut().push(100);
            let log3 = log2.clone();
            sim.schedule_now(move |_| log3.borrow_mut().push(101));
        });
        sim.schedule_at(SimTime::from_secs(1.0), record(&log, 200));
        sim.run();
        // The follow-up runs at the same instant, but after event 200 which
        // was scheduled earlier.
        assert_eq!(*log.borrow(), vec![100, 200, 101]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5.0), |sim| {
            sim.schedule_at(SimTime::from_secs(1.0), |_| {});
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_detects_runaway_loops() {
        let mut sim = Simulation::new().with_event_limit(100);
        fn rearm(sim: &mut Simulation) {
            sim.schedule_in(SimDuration::from_secs(1.0), rearm);
        }
        sim.schedule_now(rearm);
        sim.run();
    }

    #[test]
    fn events_processed_counts_fired_events_only() {
        let mut sim = Simulation::new();
        let h = sim.schedule_at(SimTime::from_secs(1.0), |_| {});
        sim.schedule_at(SimTime::from_secs(2.0), |_| {});
        sim.cancel(h);
        sim.run();
        assert_eq!(sim.events_processed(), 1);
    }
}
