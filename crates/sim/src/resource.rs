//! Counted resources with FIFO admission.
//!
//! A [`Resource`] models a pool of identical capacity units (VM core slots,
//! concurrency caps, ...). Acquisition requests beyond the capacity queue up
//! and are granted strictly in FIFO order as units are released, which keeps
//! simulations deterministic and starvation-free.

use crate::engine::Simulation;
use crate::shared::{shared, Shared};
use crate::time::SimTime;
use crate::trace::{TraceEvent, Tracer};
use std::collections::VecDeque;

type Waiter = Box<dyn FnOnce(&mut Simulation) + Send>;

struct State {
    name: String,
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<Waiter>,
    // Time-weighted utilization accounting.
    last_change: SimTime,
    busy_unit_seconds: f64,
    peak_in_use: usize,
    total_grants: u64,
    tracer: Tracer,
}

impl State {
    fn advance_accounting(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_secs();
        self.busy_unit_seconds += dt * self.in_use as f64;
        self.last_change = now;
    }

    /// Records one grant instant (verbose-level tracers only).
    fn trace_grant(&self, now: SimTime) {
        self.tracer.emit_verbose(now, || TraceEvent::ResourceGrant {
            resource: self.name.clone(),
            in_use: self.in_use,
            capacity: self.capacity,
        });
    }
}

/// A shareable handle to a counted resource. Cloning shares the same pool.
#[derive(Clone)]
pub struct Resource {
    inner: Shared<State>,
}

impl Resource {
    /// Creates a pool with `capacity` units.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            inner: shared(State {
                name: name.into(),
                capacity,
                in_use: 0,
                waiters: VecDeque::new(),
                last_change: SimTime::ZERO,
                busy_unit_seconds: 0.0,
                peak_in_use: 0,
                total_grants: 0,
                tracer: Tracer::off(),
            }),
        }
    }

    /// Attaches a flight recorder; grants become verbose-level instants.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// The configured number of units.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Units currently held.
    pub fn in_use(&self) -> usize {
        self.inner.borrow().in_use
    }

    /// Requests queued behind the capacity limit.
    pub fn queued(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Maximum concurrent units observed.
    pub fn peak_in_use(&self) -> usize {
        self.inner.borrow().peak_in_use
    }

    /// Number of grants issued so far.
    pub fn total_grants(&self) -> u64 {
        self.inner.borrow().total_grants
    }

    /// Busy unit-seconds accumulated up to `now` (utilization numerator).
    pub fn busy_unit_seconds(&self, now: SimTime) -> f64 {
        let mut s = self.inner.borrow_mut();
        s.advance_accounting(now);
        s.busy_unit_seconds
    }

    /// Acquires one unit, invoking `granted` immediately (via a same-instant
    /// event) if a unit is free, otherwise when one is released.
    pub fn acquire(
        &self,
        sim: &mut Simulation,
        granted: impl FnOnce(&mut Simulation) + Send + 'static,
    ) {
        let mut s = self.inner.borrow_mut();
        if s.in_use < s.capacity {
            s.advance_accounting(sim.now());
            s.in_use += 1;
            s.peak_in_use = s.peak_in_use.max(s.in_use);
            s.total_grants += 1;
            s.trace_grant(sim.now());
            drop(s);
            sim.schedule_now(granted);
        } else {
            s.waiters.push_back(Box::new(granted));
        }
    }

    /// Attempts a non-blocking acquisition. Returns true and consumes a unit
    /// on success; does not queue on failure.
    pub fn try_acquire(&self, now: SimTime) -> bool {
        let mut s = self.inner.borrow_mut();
        if s.in_use < s.capacity && s.waiters.is_empty() {
            s.advance_accounting(now);
            s.in_use += 1;
            s.peak_in_use = s.peak_in_use.max(s.in_use);
            s.total_grants += 1;
            s.trace_grant(now);
            true
        } else {
            false
        }
    }

    /// Releases one unit, waking the oldest waiter if any.
    pub fn release(&self, sim: &mut Simulation) {
        let mut s = self.inner.borrow_mut();
        assert!(s.in_use > 0, "release on idle resource '{}'", s.name);
        s.advance_accounting(sim.now());
        if let Some(w) = s.waiters.pop_front() {
            // Unit transfers directly to the waiter; in_use stays constant.
            s.total_grants += 1;
            s.trace_grant(sim.now());
            drop(s);
            sim.schedule_now(w);
        } else {
            s.in_use -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Runs `n` jobs of `dur` seconds each over a pool of `cap` units and
    /// returns the completion order and makespan.
    fn run_jobs(cap: usize, n: usize, dur: f64) -> (Vec<usize>, f64) {
        let mut sim = Simulation::new();
        let pool = Resource::new("slots", cap);
        let done: Shared<Vec<usize>> = shared(Vec::new());
        for job in 0..n {
            let pool2 = pool.clone();
            let done2 = done.clone();
            pool.acquire(&mut sim, move |sim| {
                sim.schedule_in(SimDuration::from_secs(dur), move |sim| {
                    done2.borrow_mut().push(job);
                    pool2.release(sim);
                });
            });
        }
        let end = sim.run();
        let order = done.borrow().clone();
        (order, end.as_secs())
    }

    #[test]
    fn serializes_beyond_capacity_in_waves() {
        // 10 jobs of 1s on 4 slots -> ceil(10/4) = 3 waves -> 3 seconds.
        let (order, makespan) = run_jobs(4, 10, 1.0);
        assert_eq!(order.len(), 10);
        assert_eq!(makespan, 3.0);
    }

    #[test]
    fn fifo_grant_order() {
        let (order, _) = run_jobs(1, 5, 1.0);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn all_parallel_when_capacity_suffices() {
        let (_, makespan) = run_jobs(16, 10, 2.5);
        assert_eq!(makespan, 2.5);
    }

    #[test]
    fn try_acquire_respects_capacity_and_queue() {
        let mut sim = Simulation::new();
        let pool = Resource::new("slots", 1);
        assert!(pool.try_acquire(sim.now()));
        assert!(!pool.try_acquire(sim.now()));
        pool.release(&mut sim);
        sim.run();
        assert!(pool.try_acquire(sim.now()));
    }

    #[test]
    fn utilization_accounting() {
        let mut sim = Simulation::new();
        let pool = Resource::new("slots", 2);
        let p2 = pool.clone();
        pool.acquire(&mut sim, move |sim| {
            sim.schedule_in(SimDuration::from_secs(10.0), move |sim| p2.release(sim));
        });
        let end = sim.run();
        // One unit busy for 10 seconds.
        assert!((pool.busy_unit_seconds(end) - 10.0).abs() < 1e-9);
        assert_eq!(pool.peak_in_use(), 1);
        assert_eq!(pool.total_grants(), 1);
    }

    #[test]
    #[should_panic(expected = "release on idle resource")]
    fn release_without_acquire_panics() {
        let mut sim = Simulation::new();
        let pool = Resource::new("slots", 1);
        pool.release(&mut sim);
    }
}
