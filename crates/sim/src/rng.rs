//! Deterministic, labelled random-number streams.
//!
//! Every stochastic element of the cloud models (cold-start jitter, runtime
//! variability, failure injection) draws from its own named stream so that
//! adding a new consumer never perturbs the draws seen by existing ones —
//! the property that makes A/B experiment sweeps comparable run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FNV-1a 64-bit hash, used to derive per-label stream seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Derives an independent RNG for (`seed`, `label`).
///
/// The same pair always yields the same stream; different labels yield
/// streams that are independent for all practical purposes.
pub fn stream_rng(seed: u64, label: &str) -> StdRng {
    let mixed = seed ^ fnv1a(label.as_bytes()).rotate_left(17);
    StdRng::seed_from_u64(mixed)
}

/// A convenience wrapper bundling a base seed with stream derivation.
#[derive(Debug, Clone, Copy)]
pub struct SeedSource {
    seed: u64,
}

impl SeedSource {
    /// Creates a source with the given base seed.
    pub fn new(seed: u64) -> Self {
        SeedSource { seed }
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the stream for `label`.
    pub fn stream(&self, label: &str) -> StdRng {
        stream_rng(self.seed, label)
    }

    /// Derives a child source (for nesting, e.g. per-task substreams).
    pub fn child(&self, label: &str) -> SeedSource {
        SeedSource {
            seed: self.seed ^ fnv1a(label.as_bytes()),
        }
    }
}

/// Samples a truncated-normal-ish jitter factor in `[1-spread, 1+spread]`.
///
/// Used to model run-to-run cloud variability around nominal task runtimes.
pub fn jitter_factor(rng: &mut StdRng, spread: f64) -> f64 {
    assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
    if spread == 0.0 {
        return 1.0;
    }
    // Average three uniforms for a cheap bell shape, then scale.
    let u = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 3.0;
    1.0 + (u * 2.0 - 1.0) * spread
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = stream_rng(42, "cold-start");
        let mut b = stream_rng(42, "cold-start");
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = stream_rng(42, "cold-start");
        let mut b = stream_rng(42, "io-jitter");
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream_rng(1, "x");
        let mut b = stream_rng(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn child_sources_are_stable() {
        let s = SeedSource::new(7);
        let c1 = s.child("task:Map");
        let c2 = s.child("task:Map");
        let mut a = c1.stream("runtime");
        let mut b = c2.stream("runtime");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let mut rng = stream_rng(9, "jitter");
        for _ in 0..1000 {
            let f = jitter_factor(&mut rng, 0.2);
            assert!((0.8..=1.2).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn zero_spread_is_deterministic_one() {
        let mut rng = stream_rng(9, "jitter");
        assert_eq!(jitter_factor(&mut rng, 0.0), 1.0);
    }
}
