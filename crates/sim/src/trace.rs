//! The execution flight recorder.
//!
//! A [`Tracer`] is a cheap, cloneable handle to an optional in-memory event
//! buffer. When *off* (the default) every emission is a branch on a `None`
//! and the simulation runs exactly as it would without the recorder — the
//! observer must never perturb the observed run ("observer purity", enforced
//! by property tests in `mashup-core`). When *on*, domain layers append
//! typed [`TraceEvent`] records stamped with the simulated time and a
//! monotone sequence number, so equal-instant records keep their emission
//! order and a recorded trace is bit-for-bit deterministic for a given seed.
//!
//! Two recording levels exist:
//!
//! * **flow** ([`Tracer::new`]) — the domain records every checker and
//!   golden fixture consumes: function invocations, checkpoint chains,
//!   VM component grants, store traffic, task/phase lifecycle;
//! * **verbose** ([`Tracer::verbose`]) — adds engine-level instants (event
//!   dispatch, resource grants, individual link transfers) for deep-dive
//!   timelines; too chatty for fixtures.
//!
//! Serialization is deliberately hand-rolled and stable: the compact JSONL
//! form ([`to_jsonl`]/[`from_jsonl`]) writes one flat JSON object per record
//! with floats in Rust's shortest round-trip formatting, so traces diff
//! cleanly and parse back bit-identically. [`to_chrome_trace`] converts the
//! same records into Chrome's `trace_event` JSON for `chrome://tracing` /
//! Perfetto.

use crate::shared::Shared;
use crate::time::SimTime;

/// Why a function invocation was killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillReason {
    /// The platform watchdog ended the invocation at its timeout deadline.
    Watchdog,
    /// An injected microVM failure ended it mid-window.
    Injected,
}

impl KillReason {
    /// Stable string form used in serialized traces.
    pub fn as_str(self) -> &'static str {
        match self {
            KillReason::Watchdog => "watchdog",
            KillReason::Injected => "injected",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "watchdog" => Some(KillReason::Watchdog),
            "injected" => Some(KillReason::Injected),
            _ => None,
        }
    }
}

/// One typed flight-recorder event.
///
/// Labels are plain strings because the engine is domain-free; the cloud and
/// core layers put task names, code keys, and platform labels in them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Engine dispatched one event (verbose level only).
    Dispatch {
        /// Events processed so far, including this one.
        events: u64,
    },
    /// A counted resource granted one unit (verbose level only).
    ResourceGrant {
        /// Resource name.
        resource: String,
        /// Units in use after the grant.
        in_use: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// A transfer started on a shared link (verbose level only).
    TransferStart {
        /// Link name.
        link: String,
        /// Link-local transfer id.
        id: u64,
        /// Transfer size in bytes.
        bytes: f64,
    },
    /// A transfer finished on a shared link (verbose level only).
    TransferEnd {
        /// Link name.
        link: String,
        /// Link-local transfer id.
        id: u64,
    },
    /// A function invocation was admitted and assigned a microVM.
    FnStart {
        /// Platform-wide invocation id.
        id: u64,
        /// Code identity (warm pools key on this).
        code: String,
        /// True for a cold start, false for a warm-pool hit.
        cold: bool,
        /// Start latency in seconds (cold or warm).
        latency_secs: f64,
        /// Instant the function body becomes runnable, seconds.
        ready_secs: f64,
        /// Watchdog deadline, seconds.
        deadline_secs: f64,
    },
    /// A function invocation completed and was billed.
    FnEnd {
        /// Platform-wide invocation id.
        id: u64,
        /// Billed function-seconds for this invocation.
        billed_secs: f64,
    },
    /// A function invocation was killed (watchdog or injected failure).
    FnKill {
        /// Platform-wide invocation id.
        id: u64,
        /// What killed it.
        reason: KillReason,
        /// Billed function-seconds up to the kill.
        billed_secs: f64,
    },
    /// A microVM was pre-warmed into the pool (billed as a cold start).
    FnPrewarm {
        /// Code identity the warm entry is usable for.
        code: String,
        /// Billed cold-start latency, seconds.
        latency_secs: f64,
        /// Instant the entry becomes available, seconds.
        warm_secs: f64,
        /// Instant the entry expires, seconds.
        expires_secs: f64,
    },
    /// A FaaS execution segment began running inside an invocation.
    SegmentStart {
        /// Task label (code key).
        task: String,
        /// Component chain id within the task.
        chain: u32,
        /// Invocation id hosting this segment.
        inv: u64,
        /// True when the segment resumes from a checkpoint.
        resume: bool,
        /// Memory footprint of the component, GiB.
        mem_gb: f64,
    },
    /// A segment finished writing a checkpoint before the time cap.
    Checkpoint {
        /// Task label.
        task: String,
        /// Component chain id.
        chain: u32,
        /// Invocation id that wrote the checkpoint.
        inv: u64,
        /// Checkpoint size in bytes.
        bytes: f64,
        /// Compute seconds still owed after this checkpoint.
        remaining_secs: f64,
    },
    /// A successor segment restored the chain's last checkpoint.
    CheckpointResume {
        /// Task label.
        task: String,
        /// Component chain id.
        chain: u32,
        /// Invocation id doing the restore.
        inv: u64,
        /// Compute seconds the restored state still owes.
        remaining_secs: f64,
    },
    /// A VM-side component started computing on a node.
    VmCompStart {
        /// Task label.
        task: String,
        /// Sub-cluster index.
        sub: usize,
        /// Node index within the sub-cluster.
        node: usize,
        /// Components on the node after this one joined.
        load: usize,
        /// Memory footprint of the component, GiB.
        mem_gb: f64,
        /// Timeshare slowdown factor applied to this component.
        factor: f64,
        /// True when memory pressure (thrash) contributes to the factor.
        thrash: bool,
    },
    /// A VM-side component finished computing.
    VmCompEnd {
        /// Task label.
        task: String,
        /// Sub-cluster index.
        sub: usize,
        /// Node index within the sub-cluster.
        node: usize,
    },
    /// Cluster billing began (nodes provisioned).
    BillingStart {
        /// Number of nodes billed.
        nodes: usize,
    },
    /// Cluster billing stopped.
    BillingStop {
        /// Billed node-seconds for the whole span.
        node_seconds: f64,
    },
    /// An object-store read (GET batch) was issued.
    StoreGet {
        /// Bytes read.
        bytes: f64,
        /// GET requests issued (billed; doubled when retried).
        requests: u64,
        /// True when the primary failed and a replica served the read.
        retried: bool,
    },
    /// An object-store write (PUT batch) was issued.
    StorePut {
        /// Bytes written.
        bytes: f64,
        /// PUT requests issued (each billed once per replica).
        requests: u64,
        /// Replication factor the requests were billed at.
        replicas: u64,
    },
    /// A named object became readable in the store.
    ObjectPut {
        /// Object key.
        key: String,
        /// Object size in bytes.
        bytes: f64,
    },
    /// A named object was removed from the store.
    ObjectRemove {
        /// Object key.
        key: String,
    },
    /// A workflow phase began executing.
    PhaseStart {
        /// Phase index.
        phase: usize,
        /// Tasks in the phase.
        tasks: usize,
    },
    /// A task began executing.
    TaskStart {
        /// Task name.
        task: String,
        /// Phase index.
        phase: usize,
        /// Platform label (`vm` or `serverless`).
        platform: String,
        /// Component count.
        components: usize,
    },
    /// A task finished executing (all components done, outputs readable).
    TaskEnd {
        /// Task name.
        task: String,
    },
    /// The PDC committed a placement decision for one task.
    PdcDecision {
        /// Task name.
        task: String,
        /// Profiled cluster-side time, seconds.
        t_vm_secs: f64,
        /// Estimated serverless time, seconds (infinite when forced to VM).
        t_serverless_secs: f64,
        /// Chosen platform label.
        platform: String,
        /// Forcing rule, or empty when the argmin decided.
        forced: String,
    },
    /// A PDC profiling stage was served by the planning cache (or not).
    PdcCache {
        /// Stage name: `calibration`, `vm-profile`, or `probe`.
        section: String,
        /// True when the stage was a cache hit.
        hit: bool,
    },
    /// A spot VM node was reclaimed by the provider (seeded fault plan).
    SpotPreempt {
        /// Fault id within the plan (retries chain to this).
        id: u64,
        /// Sub-cluster index of the reclaimed node.
        sub: usize,
        /// Node index within the sub-cluster.
        node: usize,
    },
    /// A scheduled storage/network fault window became active.
    FaultInjected {
        /// Fault id within the plan (retries chain to this).
        id: u64,
        /// Fault kind: `storage-error`, `storage-latency`, or `link-degrade`.
        kind: String,
        /// Instant the window deactivates, seconds.
        until_secs: f64,
        /// Kind-specific magnitude: error probability, extra latency in
        /// seconds, or bandwidth factor.
        magnitude: f64,
    },
    /// A store operation was retried or delayed by an injected fault.
    FaultRetry {
        /// Id of the injected fault that hit the operation.
        id: u64,
        /// Operation kind: `get` or `put`.
        op: String,
    },
    /// A VM component lost to a preemption restarted on a surviving node.
    CompRetry {
        /// Id of the preemption fault that killed the attempt.
        id: u64,
        /// Task label.
        task: String,
        /// Sub-cluster index the retry runs in.
        sub: usize,
        /// Surviving node the retry was placed on.
        node: usize,
    },
    /// The online controller re-placed the remaining subgraph.
    Replan {
        /// First phase the new placement applies to.
        phase: usize,
        /// Trigger: `preemption` or `straggler`.
        reason: String,
        /// Cluster nodes the previous plan assumed.
        nodes_before: usize,
        /// Surviving nodes the new plan was sized for.
        nodes_after: usize,
        /// Tasks whose platform changed.
        moved: usize,
    },
    /// Per-node spot billing settled at the end of a run (piecewise price).
    SpotBill {
        /// Sub-cluster index.
        sub: usize,
        /// Node index within the sub-cluster.
        node: usize,
        /// Node-seconds billed for this node (to preemption or run end).
        node_seconds: f64,
        /// Dollars charged across the node's price segments.
        dollars: f64,
    },
}

/// One recorded event: sequence number, simulated time, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotone emission index (orders equal-instant records).
    pub seq: u64,
    /// Simulated time of the event, seconds.
    pub t_secs: f64,
    /// The event payload.
    pub event: TraceEvent,
}

struct TraceBuf {
    records: Vec<TraceRecord>,
    next_seq: u64,
    verbose: bool,
}

/// A cheap handle to the flight recorder. Cloning shares the buffer; the
/// default handle is off and records nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    buf: Option<Shared<TraceBuf>>,
}

impl Tracer {
    /// A disabled recorder: every emission is a no-op.
    pub fn off() -> Self {
        Tracer { buf: None }
    }

    /// A recording tracer at flow level (domain records only).
    pub fn new() -> Self {
        Tracer {
            buf: Some(crate::shared::shared(TraceBuf {
                records: Vec::new(),
                next_seq: 0,
                verbose: false,
            })),
        }
    }

    /// A recording tracer that also keeps engine-level instants (event
    /// dispatch, resource grants, link transfers).
    pub fn verbose() -> Self {
        Tracer {
            buf: Some(crate::shared::shared(TraceBuf {
                records: Vec::new(),
                next_seq: 0,
                verbose: true,
            })),
        }
    }

    /// True when the recorder is capturing events.
    pub fn is_on(&self) -> bool {
        self.buf.is_some()
    }

    /// True when engine-level instants are captured too.
    pub fn is_verbose(&self) -> bool {
        self.buf.as_ref().is_some_and(|b| b.borrow().verbose)
    }

    /// Records `event` at simulated instant `now`. No-op when off.
    pub fn emit(&self, now: SimTime, event: TraceEvent) {
        if let Some(buf) = &self.buf {
            let mut b = buf.borrow_mut();
            let seq = b.next_seq;
            b.next_seq += 1;
            b.records.push(TraceRecord {
                seq,
                t_secs: now.as_secs(),
                event,
            });
        }
    }

    /// Records an engine-level instant; kept only at verbose level.
    /// The closure defers payload construction so the flow level pays
    /// nothing for verbose-only call sites.
    pub fn emit_verbose(&self, now: SimTime, event: impl FnOnce() -> TraceEvent) {
        if self.is_verbose() {
            self.emit(now, event());
        }
    }

    /// Number of records captured so far (0 when off).
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.borrow().records.len())
    }

    /// True when no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all captured records (empty when off). The
    /// sequence counter keeps running, so a later drain stays ordered.
    pub fn take(&self) -> Vec<TraceRecord> {
        self.buf
            .as_ref()
            .map_or_else(Vec::new, |b| std::mem::take(&mut b.borrow_mut().records))
    }

    /// Clones out the captured records without draining them.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.buf
            .as_ref()
            .map_or_else(Vec::new, |b| b.borrow().records.clone())
    }
}

// --------------------------------------------------------------------------
// Compact JSONL form
// --------------------------------------------------------------------------

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Flat JSON-object builder for one record line. Floats use `{:?}`
/// (shortest round-trip), so written traces parse back bit-identically.
struct Line(String);

impl Line {
    fn new(seq: u64, t_secs: f64, ev: &str) -> Self {
        Line(format!("{{\"seq\":{seq},\"t\":{t_secs:?},\"ev\":\"{ev}\""))
    }
    fn s(mut self, key: &str, v: &str) -> Self {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":");
        push_escaped(v, &mut self.0);
        self
    }
    fn f(mut self, key: &str, v: f64) -> Self {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":{v:?}");
        self
    }
    fn u(mut self, key: &str, v: u64) -> Self {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":{v}");
        self
    }
    fn b(mut self, key: &str, v: bool) -> Self {
        use std::fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":{v}");
        self
    }
    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// Serializes one record to its compact JSONL line (no trailing newline).
pub fn record_to_json(r: &TraceRecord) -> String {
    let line = |ev: &str| Line::new(r.seq, r.t_secs, ev);
    match &r.event {
        TraceEvent::Dispatch { events } => line("Dispatch").u("events", *events).finish(),
        TraceEvent::ResourceGrant {
            resource,
            in_use,
            capacity,
        } => line("ResourceGrant")
            .s("resource", resource)
            .u("in_use", *in_use as u64)
            .u("capacity", *capacity as u64)
            .finish(),
        TraceEvent::TransferStart { link, id, bytes } => line("TransferStart")
            .s("link", link)
            .u("id", *id)
            .f("bytes", *bytes)
            .finish(),
        TraceEvent::TransferEnd { link, id } => {
            line("TransferEnd").s("link", link).u("id", *id).finish()
        }
        TraceEvent::FnStart {
            id,
            code,
            cold,
            latency_secs,
            ready_secs,
            deadline_secs,
        } => line("FnStart")
            .u("id", *id)
            .s("code", code)
            .b("cold", *cold)
            .f("latency", *latency_secs)
            .f("ready", *ready_secs)
            .f("deadline", *deadline_secs)
            .finish(),
        TraceEvent::FnEnd { id, billed_secs } => line("FnEnd")
            .u("id", *id)
            .f("billed", *billed_secs)
            .finish(),
        TraceEvent::FnKill {
            id,
            reason,
            billed_secs,
        } => line("FnKill")
            .u("id", *id)
            .s("reason", reason.as_str())
            .f("billed", *billed_secs)
            .finish(),
        TraceEvent::FnPrewarm {
            code,
            latency_secs,
            warm_secs,
            expires_secs,
        } => line("FnPrewarm")
            .s("code", code)
            .f("latency", *latency_secs)
            .f("warm", *warm_secs)
            .f("expires", *expires_secs)
            .finish(),
        TraceEvent::SegmentStart {
            task,
            chain,
            inv,
            resume,
            mem_gb,
        } => line("SegmentStart")
            .s("task", task)
            .u("chain", u64::from(*chain))
            .u("inv", *inv)
            .b("resume", *resume)
            .f("mem_gb", *mem_gb)
            .finish(),
        TraceEvent::Checkpoint {
            task,
            chain,
            inv,
            bytes,
            remaining_secs,
        } => line("Checkpoint")
            .s("task", task)
            .u("chain", u64::from(*chain))
            .u("inv", *inv)
            .f("bytes", *bytes)
            .f("remaining", *remaining_secs)
            .finish(),
        TraceEvent::CheckpointResume {
            task,
            chain,
            inv,
            remaining_secs,
        } => line("CheckpointResume")
            .s("task", task)
            .u("chain", u64::from(*chain))
            .u("inv", *inv)
            .f("remaining", *remaining_secs)
            .finish(),
        TraceEvent::VmCompStart {
            task,
            sub,
            node,
            load,
            mem_gb,
            factor,
            thrash,
        } => line("VmCompStart")
            .s("task", task)
            .u("sub", *sub as u64)
            .u("node", *node as u64)
            .u("load", *load as u64)
            .f("mem_gb", *mem_gb)
            .f("factor", *factor)
            .b("thrash", *thrash)
            .finish(),
        TraceEvent::VmCompEnd { task, sub, node } => line("VmCompEnd")
            .s("task", task)
            .u("sub", *sub as u64)
            .u("node", *node as u64)
            .finish(),
        TraceEvent::BillingStart { nodes } => {
            line("BillingStart").u("nodes", *nodes as u64).finish()
        }
        TraceEvent::BillingStop { node_seconds } => line("BillingStop")
            .f("node_seconds", *node_seconds)
            .finish(),
        TraceEvent::StoreGet {
            bytes,
            requests,
            retried,
        } => line("StoreGet")
            .f("bytes", *bytes)
            .u("requests", *requests)
            .b("retried", *retried)
            .finish(),
        TraceEvent::StorePut {
            bytes,
            requests,
            replicas,
        } => line("StorePut")
            .f("bytes", *bytes)
            .u("requests", *requests)
            .u("replicas", *replicas)
            .finish(),
        TraceEvent::ObjectPut { key, bytes } => {
            line("ObjectPut").s("key", key).f("bytes", *bytes).finish()
        }
        TraceEvent::ObjectRemove { key } => line("ObjectRemove").s("key", key).finish(),
        TraceEvent::PhaseStart { phase, tasks } => line("PhaseStart")
            .u("phase", *phase as u64)
            .u("tasks", *tasks as u64)
            .finish(),
        TraceEvent::TaskStart {
            task,
            phase,
            platform,
            components,
        } => line("TaskStart")
            .s("task", task)
            .u("phase", *phase as u64)
            .s("platform", platform)
            .u("components", *components as u64)
            .finish(),
        TraceEvent::TaskEnd { task } => line("TaskEnd").s("task", task).finish(),
        TraceEvent::PdcDecision {
            task,
            t_vm_secs,
            t_serverless_secs,
            platform,
            forced,
        } => line("PdcDecision")
            .s("task", task)
            .f("t_vm", *t_vm_secs)
            .f("t_serverless", *t_serverless_secs)
            .s("platform", platform)
            .s("forced", forced)
            .finish(),
        TraceEvent::PdcCache { section, hit } => line("PdcCache")
            .s("section", section)
            .b("hit", *hit)
            .finish(),
        TraceEvent::SpotPreempt { id, sub, node } => line("SpotPreempt")
            .u("id", *id)
            .u("sub", *sub as u64)
            .u("node", *node as u64)
            .finish(),
        TraceEvent::FaultInjected {
            id,
            kind,
            until_secs,
            magnitude,
        } => line("FaultInjected")
            .u("id", *id)
            .s("kind", kind)
            .f("until", *until_secs)
            .f("magnitude", *magnitude)
            .finish(),
        TraceEvent::FaultRetry { id, op } => line("FaultRetry").u("id", *id).s("op", op).finish(),
        TraceEvent::CompRetry {
            id,
            task,
            sub,
            node,
        } => line("CompRetry")
            .u("id", *id)
            .s("task", task)
            .u("sub", *sub as u64)
            .u("node", *node as u64)
            .finish(),
        TraceEvent::Replan {
            phase,
            reason,
            nodes_before,
            nodes_after,
            moved,
        } => line("Replan")
            .u("phase", *phase as u64)
            .s("reason", reason)
            .u("nodes_before", *nodes_before as u64)
            .u("nodes_after", *nodes_after as u64)
            .u("moved", *moved as u64)
            .finish(),
        TraceEvent::SpotBill {
            sub,
            node,
            node_seconds,
            dollars,
        } => line("SpotBill")
            .u("sub", *sub as u64)
            .u("node", *node as u64)
            .f("node_seconds", *node_seconds)
            .f("dollars", *dollars)
            .finish(),
    }
}

/// Serializes records to the compact JSONL form: one record per line,
/// stable field order, shortest round-trip floats, trailing newline.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_to_json(r));
        out.push('\n');
    }
    out
}

fn req<'v>(v: &'v serde::Value, key: &str, line: usize) -> Result<&'v serde::Value, String> {
    v.get(key)
        .ok_or_else(|| format!("line {line}: missing field '{key}'"))
}

fn req_f64(v: &serde::Value, key: &str, line: usize) -> Result<f64, String> {
    req(v, key, line)?
        .as_f64()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a number"))
}

fn req_u64(v: &serde::Value, key: &str, line: usize) -> Result<u64, String> {
    req(v, key, line)?
        .as_u64()
        .ok_or_else(|| format!("line {line}: field '{key}' is not an integer"))
}

fn req_usize(v: &serde::Value, key: &str, line: usize) -> Result<usize, String> {
    usize::try_from(req_u64(v, key, line)?).map_err(|_| format!("line {line}: '{key}' overflows"))
}

fn req_bool(v: &serde::Value, key: &str, line: usize) -> Result<bool, String> {
    req(v, key, line)?
        .as_bool()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a bool"))
}

fn req_str(v: &serde::Value, key: &str, line: usize) -> Result<String, String> {
    Ok(req(v, key, line)?
        .as_str()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a string"))?
        .to_string())
}

/// Parses the compact JSONL form back into records. Unknown event names are
/// an error, so readers notice vocabulary drift instead of skipping data.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let n = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v: serde::Value =
            serde_json::from_str(raw).map_err(|e| format!("line {n}: invalid JSON: {e}"))?;
        let ev = req_str(&v, "ev", n)?;
        let event = match ev.as_str() {
            "Dispatch" => TraceEvent::Dispatch {
                events: req_u64(&v, "events", n)?,
            },
            "ResourceGrant" => TraceEvent::ResourceGrant {
                resource: req_str(&v, "resource", n)?,
                in_use: req_usize(&v, "in_use", n)?,
                capacity: req_usize(&v, "capacity", n)?,
            },
            "TransferStart" => TraceEvent::TransferStart {
                link: req_str(&v, "link", n)?,
                id: req_u64(&v, "id", n)?,
                bytes: req_f64(&v, "bytes", n)?,
            },
            "TransferEnd" => TraceEvent::TransferEnd {
                link: req_str(&v, "link", n)?,
                id: req_u64(&v, "id", n)?,
            },
            "FnStart" => TraceEvent::FnStart {
                id: req_u64(&v, "id", n)?,
                code: req_str(&v, "code", n)?,
                cold: req_bool(&v, "cold", n)?,
                latency_secs: req_f64(&v, "latency", n)?,
                ready_secs: req_f64(&v, "ready", n)?,
                deadline_secs: req_f64(&v, "deadline", n)?,
            },
            "FnEnd" => TraceEvent::FnEnd {
                id: req_u64(&v, "id", n)?,
                billed_secs: req_f64(&v, "billed", n)?,
            },
            "FnKill" => TraceEvent::FnKill {
                id: req_u64(&v, "id", n)?,
                reason: KillReason::parse(&req_str(&v, "reason", n)?)
                    .ok_or_else(|| format!("line {n}: unknown kill reason"))?,
                billed_secs: req_f64(&v, "billed", n)?,
            },
            "FnPrewarm" => TraceEvent::FnPrewarm {
                code: req_str(&v, "code", n)?,
                latency_secs: req_f64(&v, "latency", n)?,
                warm_secs: req_f64(&v, "warm", n)?,
                expires_secs: req_f64(&v, "expires", n)?,
            },
            "SegmentStart" => TraceEvent::SegmentStart {
                task: req_str(&v, "task", n)?,
                chain: req_u64(&v, "chain", n)? as u32,
                inv: req_u64(&v, "inv", n)?,
                resume: req_bool(&v, "resume", n)?,
                mem_gb: req_f64(&v, "mem_gb", n)?,
            },
            "Checkpoint" => TraceEvent::Checkpoint {
                task: req_str(&v, "task", n)?,
                chain: req_u64(&v, "chain", n)? as u32,
                inv: req_u64(&v, "inv", n)?,
                bytes: req_f64(&v, "bytes", n)?,
                remaining_secs: req_f64(&v, "remaining", n)?,
            },
            "CheckpointResume" => TraceEvent::CheckpointResume {
                task: req_str(&v, "task", n)?,
                chain: req_u64(&v, "chain", n)? as u32,
                inv: req_u64(&v, "inv", n)?,
                remaining_secs: req_f64(&v, "remaining", n)?,
            },
            "VmCompStart" => TraceEvent::VmCompStart {
                task: req_str(&v, "task", n)?,
                sub: req_usize(&v, "sub", n)?,
                node: req_usize(&v, "node", n)?,
                load: req_usize(&v, "load", n)?,
                mem_gb: req_f64(&v, "mem_gb", n)?,
                factor: req_f64(&v, "factor", n)?,
                thrash: req_bool(&v, "thrash", n)?,
            },
            "VmCompEnd" => TraceEvent::VmCompEnd {
                task: req_str(&v, "task", n)?,
                sub: req_usize(&v, "sub", n)?,
                node: req_usize(&v, "node", n)?,
            },
            "BillingStart" => TraceEvent::BillingStart {
                nodes: req_usize(&v, "nodes", n)?,
            },
            "BillingStop" => TraceEvent::BillingStop {
                node_seconds: req_f64(&v, "node_seconds", n)?,
            },
            "StoreGet" => TraceEvent::StoreGet {
                bytes: req_f64(&v, "bytes", n)?,
                requests: req_u64(&v, "requests", n)?,
                retried: req_bool(&v, "retried", n)?,
            },
            "StorePut" => TraceEvent::StorePut {
                bytes: req_f64(&v, "bytes", n)?,
                requests: req_u64(&v, "requests", n)?,
                replicas: req_u64(&v, "replicas", n)?,
            },
            "ObjectPut" => TraceEvent::ObjectPut {
                key: req_str(&v, "key", n)?,
                bytes: req_f64(&v, "bytes", n)?,
            },
            "ObjectRemove" => TraceEvent::ObjectRemove {
                key: req_str(&v, "key", n)?,
            },
            "PhaseStart" => TraceEvent::PhaseStart {
                phase: req_usize(&v, "phase", n)?,
                tasks: req_usize(&v, "tasks", n)?,
            },
            "TaskStart" => TraceEvent::TaskStart {
                task: req_str(&v, "task", n)?,
                phase: req_usize(&v, "phase", n)?,
                platform: req_str(&v, "platform", n)?,
                components: req_usize(&v, "components", n)?,
            },
            "TaskEnd" => TraceEvent::TaskEnd {
                task: req_str(&v, "task", n)?,
            },
            "PdcDecision" => TraceEvent::PdcDecision {
                task: req_str(&v, "task", n)?,
                t_vm_secs: req_f64(&v, "t_vm", n)?,
                t_serverless_secs: req_f64(&v, "t_serverless", n)?,
                platform: req_str(&v, "platform", n)?,
                forced: req_str(&v, "forced", n)?,
            },
            "PdcCache" => TraceEvent::PdcCache {
                section: req_str(&v, "section", n)?,
                hit: req_bool(&v, "hit", n)?,
            },
            "SpotPreempt" => TraceEvent::SpotPreempt {
                id: req_u64(&v, "id", n)?,
                sub: req_usize(&v, "sub", n)?,
                node: req_usize(&v, "node", n)?,
            },
            "FaultInjected" => TraceEvent::FaultInjected {
                id: req_u64(&v, "id", n)?,
                kind: req_str(&v, "kind", n)?,
                until_secs: req_f64(&v, "until", n)?,
                magnitude: req_f64(&v, "magnitude", n)?,
            },
            "FaultRetry" => TraceEvent::FaultRetry {
                id: req_u64(&v, "id", n)?,
                op: req_str(&v, "op", n)?,
            },
            "CompRetry" => TraceEvent::CompRetry {
                id: req_u64(&v, "id", n)?,
                task: req_str(&v, "task", n)?,
                sub: req_usize(&v, "sub", n)?,
                node: req_usize(&v, "node", n)?,
            },
            "Replan" => TraceEvent::Replan {
                phase: req_usize(&v, "phase", n)?,
                reason: req_str(&v, "reason", n)?,
                nodes_before: req_usize(&v, "nodes_before", n)?,
                nodes_after: req_usize(&v, "nodes_after", n)?,
                moved: req_usize(&v, "moved", n)?,
            },
            "SpotBill" => TraceEvent::SpotBill {
                sub: req_usize(&v, "sub", n)?,
                node: req_usize(&v, "node", n)?,
                node_seconds: req_f64(&v, "node_seconds", n)?,
                dollars: req_f64(&v, "dollars", n)?,
            },
            other => return Err(format!("line {n}: unknown event '{other}'")),
        };
        out.push(TraceRecord {
            seq: req_u64(&v, "seq", n)?,
            t_secs: req_f64(&v, "t", n)?,
            event,
        });
    }
    Ok(out)
}

// --------------------------------------------------------------------------
// Chrome trace_event export
// --------------------------------------------------------------------------

/// Stable thread-id registry for the Chrome export: names get dense ids in
/// first-seen order (deterministic because records are ordered).
struct TidMap {
    ids: std::collections::BTreeMap<String, u64>,
}

impl TidMap {
    fn new() -> Self {
        TidMap {
            ids: std::collections::BTreeMap::new(),
        }
    }
    fn get(&mut self, name: &str) -> u64 {
        let next = self.ids.len() as u64;
        *self.ids.entry(name.to_string()).or_insert(next)
    }
}

fn chrome_event(
    out: &mut Vec<String>,
    name: &str,
    ph: &str,
    ts_secs: f64,
    pid: u64,
    tid: u64,
    args: &[(&str, String)],
) {
    let mut e = String::from("{\"name\":");
    push_escaped(name, &mut e);
    use std::fmt::Write as _;
    // Chrome timestamps are microseconds.
    let _ = write!(
        e,
        ",\"ph\":\"{ph}\",\"ts\":{:?},\"pid\":{pid},\"tid\":{tid}",
        ts_secs * 1e6
    );
    if ph == "i" {
        e.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        e.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                e.push(',');
            }
            push_escaped(k, &mut e);
            e.push(':');
            e.push_str(v);
        }
        e.push('}');
    }
    e.push('}');
    out.push(e);
}

/// Converts records into Chrome `trace_event` JSON (load in
/// `chrome://tracing` or <https://ui.perfetto.dev>). Tasks, VM components,
/// and function invocations become duration pairs on per-lane threads;
/// everything else becomes instant markers.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events = Vec::new();
    let mut task_tids = TidMap::new();
    for r in records {
        match &r.event {
            TraceEvent::TaskStart { task, platform, .. } => {
                let tid = task_tids.get(task);
                chrome_event(
                    &mut events,
                    task,
                    "B",
                    r.t_secs,
                    1,
                    tid,
                    &[("platform", format!("{platform:?}"))],
                );
            }
            TraceEvent::TaskEnd { task } => {
                let tid = task_tids.get(task);
                chrome_event(&mut events, task, "E", r.t_secs, 1, tid, &[]);
            }
            TraceEvent::VmCompStart {
                task,
                sub,
                node,
                factor,
                ..
            } => {
                let tid = (*sub as u64) * 1000 + *node as u64;
                chrome_event(
                    &mut events,
                    task,
                    "B",
                    r.t_secs,
                    2,
                    tid,
                    &[("factor", format!("{factor:?}"))],
                );
            }
            TraceEvent::VmCompEnd { task, sub, node } => {
                let tid = (*sub as u64) * 1000 + *node as u64;
                chrome_event(&mut events, task, "E", r.t_secs, 2, tid, &[]);
            }
            TraceEvent::FnStart { id, code, cold, .. } => {
                chrome_event(
                    &mut events,
                    code,
                    "B",
                    r.t_secs,
                    3,
                    id % 64,
                    &[("cold", cold.to_string()), ("inv", id.to_string())],
                );
            }
            TraceEvent::FnEnd { id, .. } => {
                chrome_event(&mut events, "fn", "E", r.t_secs, 3, id % 64, &[]);
            }
            TraceEvent::FnKill { id, reason, .. } => {
                chrome_event(
                    &mut events,
                    "fn",
                    "E",
                    r.t_secs,
                    3,
                    id % 64,
                    &[("kill", format!("\"{}\"", reason.as_str()))],
                );
            }
            other => {
                // Everything else is an instant marker named after the
                // serialized event tag.
                let json = record_to_json(r);
                let tag = match other {
                    TraceEvent::SegmentStart { .. } => "SegmentStart",
                    TraceEvent::Checkpoint { .. } => "Checkpoint",
                    TraceEvent::CheckpointResume { .. } => "CheckpointResume",
                    TraceEvent::FnPrewarm { .. } => "FnPrewarm",
                    TraceEvent::StoreGet { .. } => "StoreGet",
                    TraceEvent::StorePut { .. } => "StorePut",
                    TraceEvent::ObjectPut { .. } => "ObjectPut",
                    TraceEvent::ObjectRemove { .. } => "ObjectRemove",
                    TraceEvent::PhaseStart { .. } => "PhaseStart",
                    TraceEvent::BillingStart { .. } => "BillingStart",
                    TraceEvent::BillingStop { .. } => "BillingStop",
                    TraceEvent::PdcDecision { .. } => "PdcDecision",
                    TraceEvent::PdcCache { .. } => "PdcCache",
                    TraceEvent::SpotPreempt { .. } => "SpotPreempt",
                    TraceEvent::FaultInjected { .. } => "FaultInjected",
                    TraceEvent::FaultRetry { .. } => "FaultRetry",
                    TraceEvent::CompRetry { .. } => "CompRetry",
                    TraceEvent::Replan { .. } => "Replan",
                    TraceEvent::SpotBill { .. } => "SpotBill",
                    TraceEvent::Dispatch { .. } => "Dispatch",
                    TraceEvent::ResourceGrant { .. } => "ResourceGrant",
                    TraceEvent::TransferStart { .. } => "TransferStart",
                    TraceEvent::TransferEnd { .. } => "TransferEnd",
                    _ => unreachable!("duration events handled above"),
                };
                chrome_event(
                    &mut events,
                    tag,
                    "i",
                    r.t_secs,
                    0,
                    0,
                    &[("record", format!("{json:?}"))],
                );
            }
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        let t = Tracer::new();
        t.emit(
            SimTime::from_secs(0.0),
            TraceEvent::TaskStart {
                task: "a".into(),
                phase: 0,
                platform: "serverless".into(),
                components: 2,
            },
        );
        t.emit(
            SimTime::from_secs(0.5),
            TraceEvent::FnStart {
                id: 1,
                code: "a".into(),
                cold: true,
                latency_secs: 1.25,
                ready_secs: 1.75,
                deadline_secs: 901.75,
            },
        );
        t.emit(
            SimTime::from_secs(2.0),
            TraceEvent::Checkpoint {
                task: "a".into(),
                chain: 0,
                inv: 1,
                bytes: 1e6,
                remaining_secs: 33.333333333333336,
            },
        );
        t.emit(
            SimTime::from_secs(3.0),
            TraceEvent::FnKill {
                id: 1,
                reason: KillReason::Injected,
                billed_secs: 2.5,
            },
        );
        t.emit(
            SimTime::from_secs(9.0),
            TraceEvent::TaskEnd { task: "a".into() },
        );
        t.take()
    }

    #[test]
    fn off_tracer_records_nothing_and_is_cheap_to_clone() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.emit(
            SimTime::from_secs(1.0),
            TraceEvent::TaskEnd { task: "x".into() },
        );
        assert!(t.is_empty());
        assert_eq!(t.clone().take(), Vec::new());
        assert!(!Tracer::default().is_on());
    }

    #[test]
    fn clones_share_one_buffer_and_seq_is_monotone() {
        let a = Tracer::new();
        let b = a.clone();
        a.emit(
            SimTime::from_secs(1.0),
            TraceEvent::TaskEnd { task: "x".into() },
        );
        b.emit(
            SimTime::from_secs(1.0),
            TraceEvent::TaskEnd { task: "y".into() },
        );
        let records = a.take();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        // Seq keeps counting across a drain.
        b.emit(
            SimTime::from_secs(2.0),
            TraceEvent::TaskEnd { task: "z".into() },
        );
        assert_eq!(b.take()[0].seq, 2);
    }

    #[test]
    fn verbose_instants_are_dropped_at_flow_level() {
        let flow = Tracer::new();
        flow.emit_verbose(SimTime::ZERO, || TraceEvent::Dispatch { events: 1 });
        assert!(flow.is_empty());
        let verbose = Tracer::verbose();
        verbose.emit_verbose(SimTime::ZERO, || TraceEvent::Dispatch { events: 1 });
        assert_eq!(verbose.len(), 1);
    }

    #[test]
    fn jsonl_round_trips_bit_for_bit() {
        let records = sample_records();
        let text = to_jsonl(&records);
        let parsed = from_jsonl(&text).expect("parse");
        assert_eq!(parsed, records);
        // Re-serializing the parsed records reproduces the bytes.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn jsonl_lines_are_flat_stable_objects() {
        let text = to_jsonl(&sample_records());
        let first = text.lines().next().expect("non-empty");
        assert!(first.starts_with("{\"seq\":0,\"t\":0.0,\"ev\":\"TaskStart\""));
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn parser_rejects_unknown_events_and_bad_fields() {
        assert!(from_jsonl("{\"seq\":0,\"t\":0.0,\"ev\":\"Nope\"}").is_err());
        assert!(from_jsonl("{\"seq\":0,\"t\":0.0}").is_err());
        assert!(from_jsonl("{\"seq\":0,\"t\":0.0,\"ev\":\"TaskEnd\"}").is_err());
        assert!(from_jsonl("not json").is_err());
        assert_eq!(from_jsonl("\n\n").expect("blank ok"), Vec::new());
    }

    #[test]
    fn chaos_events_round_trip_bit_for_bit() {
        let t = Tracer::new();
        t.emit(
            SimTime::from_secs(1.0),
            TraceEvent::FaultInjected {
                id: 3,
                kind: "storage-error".into(),
                until_secs: 42.5,
                magnitude: 0.25,
            },
        );
        t.emit(
            SimTime::from_secs(2.0),
            TraceEvent::SpotPreempt {
                id: 0,
                sub: 1,
                node: 2,
            },
        );
        t.emit(
            SimTime::from_secs(2.5),
            TraceEvent::FaultRetry {
                id: 3,
                op: "get".into(),
            },
        );
        t.emit(
            SimTime::from_secs(3.0),
            TraceEvent::CompRetry {
                id: 0,
                task: "wide".into(),
                sub: 1,
                node: 0,
            },
        );
        t.emit(
            SimTime::from_secs(4.0),
            TraceEvent::Replan {
                phase: 2,
                reason: "preemption".into(),
                nodes_before: 4,
                nodes_after: 3,
                moved: 5,
            },
        );
        t.emit(
            SimTime::from_secs(9.0),
            TraceEvent::SpotBill {
                sub: 0,
                node: 1,
                node_seconds: 7.25,
                dollars: 0.000241666666666,
            },
        );
        let records = t.take();
        let text = to_jsonl(&records);
        let parsed = from_jsonl(&text).expect("parse");
        assert_eq!(parsed, records);
        assert_eq!(to_jsonl(&parsed), text);
        // Chaos records export as instant markers in the Chrome form.
        let chrome = to_chrome_trace(&records);
        assert!(chrome.contains("SpotPreempt"));
        assert!(chrome.contains("Replan"));
    }

    #[test]
    fn string_escaping_survives_round_trip() {
        let records = vec![TraceRecord {
            seq: 0,
            t_secs: 1.5,
            event: TraceEvent::ObjectPut {
                key: "out:\"weird\\name\"\twith\nnewline".into(),
                bytes: 7.0,
            },
        }];
        let text = to_jsonl(&records);
        assert_eq!(from_jsonl(&text).expect("parse"), records);
    }

    #[test]
    fn chrome_export_pairs_tasks_and_marks_instants() {
        let chrome = to_chrome_trace(&sample_records());
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"ts\":500000.0"), "{chrome}");
    }
}
