//! Lightweight metric primitives used by the cloud models.
//!
//! These are deliberately simple value types (no global registry): the cloud
//! components own their metrics and expose them through their reports. The
//! [`Series`] type backs the Fig. 10 system-metric traces (IPC, network and
//! memory bandwidth over time).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A monotonically growing sum.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    total: f64,
    events: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` (must be non-negative).
    pub fn add(&mut self, amount: f64) {
        debug_assert!(amount >= 0.0, "counters only grow");
        self.total += amount;
        self.events += 1;
    }

    /// The accumulated sum.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of `add` calls.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean contribution per event (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total / self.events as f64
        }
    }
}

/// A gauge whose time-weighted average is tracked against the sim clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeightedGauge {
    value: f64,
    last_change: f64,
    weighted_sum: f64,
    peak: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge starting at `initial` at t = 0.
    pub fn new(initial: f64) -> Self {
        TimeWeightedGauge {
            value: initial,
            last_change: 0.0,
            weighted_sum: 0.0,
            peak: initial,
        }
    }

    /// Sets the gauge at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let t = now.as_secs();
        self.weighted_sum += self.value * (t - self.last_change).max(0.0);
        self.last_change = t;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Adjusts the gauge by `delta` at time `now`.
    pub fn adjust(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The maximum value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[0, now]` (0 for an empty interval).
    pub fn average(&self, now: SimTime) -> f64 {
        let t = now.as_secs();
        if t <= 0.0 {
            return self.value;
        }
        let sum = self.weighted_sum + self.value * (t - self.last_change).max(0.0);
        sum / t
    }
}

/// A sample reservoir with quantile queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite());
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// The `q`-quantile via nearest-rank on the sorted samples (0 if empty).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }
}

/// A time series of `(seconds, value)` points for figure traces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point at `now`.
    pub fn push(&mut self, now: SimTime, value: f64) {
        self.points.push((now.as_secs(), value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Resamples onto `n` buckets over the recorded span, averaging values
    /// within each bucket (step-function semantics between points).
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let t0 = self.points.first().expect("non-empty").0;
        let t1 = self.points.last().expect("non-empty").0;
        if t1 <= t0 {
            return vec![(t0, self.points.last().expect("non-empty").1)];
        }
        let step = (t1 - t0) / n as f64;
        let mut out = Vec::with_capacity(n);
        let mut idx = 0usize;
        let mut current = self.points[0].1;
        for b in 0..n {
            let bucket_end = t0 + step * (b as f64 + 1.0);
            while idx < self.points.len() && self.points[idx].0 <= bucket_end {
                current = self.points[idx].1;
                idx += 1;
            }
            out.push((t0 + step * (b as f64 + 0.5), current));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(2.0);
        c.add(3.0);
        assert_eq!(c.total(), 5.0);
        assert_eq!(c.events(), 2);
        assert_eq!(c.mean(), 2.5);
    }

    #[test]
    fn gauge_time_weighted_average() {
        let mut g = TimeWeightedGauge::new(0.0);
        g.set(SimTime::from_secs(0.0), 10.0);
        g.set(SimTime::from_secs(5.0), 20.0);
        // [0,5): 10, [5,10): 20 -> avg at t=10 is 15.
        assert!((g.average(SimTime::from_secs(10.0)) - 15.0).abs() < 1e-9);
        assert_eq!(g.peak(), 20.0);
        assert_eq!(g.value(), 20.0);
    }

    #[test]
    fn gauge_adjust() {
        let mut g = TimeWeightedGauge::new(1.0);
        g.adjust(SimTime::from_secs(1.0), 4.0);
        assert_eq!(g.value(), 5.0);
        g.adjust(SimTime::from_secs(2.0), -2.0);
        assert_eq!(g.value(), 3.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn series_resample_steps() {
        let mut s = Series::new();
        s.push(SimTime::from_secs(0.0), 1.0);
        s.push(SimTime::from_secs(10.0), 2.0);
        let r = s.resample(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].1, 1.0);
        assert_eq!(r[1].1, 2.0);
    }

    #[test]
    fn series_single_point() {
        let mut s = Series::new();
        s.push(SimTime::from_secs(3.0), 9.0);
        let r = s.resample(4);
        assert_eq!(r, vec![(3.0, 9.0)]);
    }
}
