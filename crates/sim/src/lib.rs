//! # mashup-sim
//!
//! A small, deterministic discrete-event simulation engine: the substrate
//! underneath the Mashup reproduction's cloud models.
//!
//! The engine is deliberately domain-free. It provides:
//!
//! * [`Simulation`] — an event loop ordered by `(time, sequence)`, so runs
//!   are bit-for-bit reproducible for a given seed and program order;
//! * [`Resource`] — counted capacity with FIFO admission (core slots,
//!   concurrency caps);
//! * [`SharedLink`] — max-min fair-share bandwidth channels, the mechanism
//!   behind every network/storage contention effect in the paper;
//! * [`SeedSource`]/[`stream_rng`] — labelled deterministic RNG streams;
//! * metric primitives ([`Counter`], [`TimeWeightedGauge`], [`Histogram`],
//!   [`Series`]) for reports and figure traces;
//! * [`Tracer`] — the execution flight recorder: a zero-overhead-when-off
//!   structured event stream (see [`trace`]) the cloud and core layers
//!   thread through every mechanism.
//!
//! Domain state lives outside the engine behind [`Shared`] handles
//! (`Arc<AtomicRefCell<..>>`, see [`shared`](crate::shared())) captured by
//! event closures; see `mashup-cloud` for the cloud models built on top.
//! Every engine type is `Send`: a run is built, owned, and driven by one
//! thread at a time (that confinement is where determinism comes from),
//! but whole runs can be sharded across worker threads — the basis of the
//! planning service and the parallel figure sweep.

#![warn(missing_docs)]

mod bandwidth;
mod engine;
mod metrics;
mod resource;
mod rng;
mod shared;
mod time;
pub mod trace;

pub use bandwidth::{SharedLink, TransferId};
pub use engine::{EventFn, EventHandle, Simulation};
pub use metrics::{Counter, Histogram, Series, TimeWeightedGauge};
pub use resource::Resource;
pub use rng::{jitter_factor, stream_rng, SeedSource};
pub use shared::{shared, AtomicRef, AtomicRefCell, AtomicRefMut, Shared};
pub use time::{SimDuration, SimTime};
pub use trace::{KillReason, TraceEvent, TraceRecord, Tracer};
