//! Max-min fair-share bandwidth links.
//!
//! A [`SharedLink`] models a network or storage channel of fixed aggregate
//! capacity. Concurrent transfers receive max-min fair shares (water-filling
//! over optional per-flow caps); whenever the set of active transfers
//! changes, progress is advanced under the old shares and the next completion
//! is re-planned under the new ones. This is the mechanism behind every
//! contention effect in the cloud models: master-NIC bottlenecks, S3
//! aggregate-bandwidth saturation, and cluster-network congestion.
//!
//! Shares are cached per transfer and recomputed lazily: the cache is
//! invalidated only when the transfer set (or a cap) changes, so the three
//! share consumers on a completion tick (advance, utilization trace, replan)
//! trigger at most one water-fill pass instead of three, and the pass itself
//! runs over a slab + sorted index vectors with no per-call allocation. The
//! recompute walks flows in exactly the order the original per-call
//! `BTreeMap` build did (cap ascending, id breaking ties), so every
//! floating-point operation happens in the same sequence and simulated
//! results are bit-for-bit unchanged.

use crate::engine::{EventHandle, Simulation};
use crate::shared::{shared, Shared};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};

/// Completion epsilon: transfers within this many bytes of done are finished.
const EPS_BYTES: f64 = 1e-6;

type DoneFn = Box<dyn FnOnce(&mut Simulation) + Send>;

/// Identifier of an in-flight transfer on a particular link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

struct Transfer {
    id: u64,
    remaining: f64,
    /// Per-flow bandwidth cap in bytes/sec (`f64::INFINITY` when uncapped).
    cap: f64,
    /// Cached fair share in bytes/sec; valid only while `shares_dirty` is
    /// false on the owning link.
    share: f64,
    on_done: Option<DoneFn>,
}

struct LinkState {
    name: String,
    capacity: f64,
    /// Slab of transfers; `None` entries are free and listed in `free`.
    slab: Vec<Option<Transfer>>,
    free: Vec<u32>,
    /// Slot indices ordered by transfer id ascending. Ids are allocated
    /// monotonically, so arrivals append; removals shift (cheap: `u32`s).
    by_id: Vec<u32>,
    /// Slot indices ordered by (cap, id) ascending — the water-fill order.
    by_cap: Vec<u32>,
    /// Set whenever the transfer set changes; cleared by `refresh_shares`.
    shares_dirty: bool,
    next_id: u64,
    last_update: SimTime,
    completion_event: Option<EventHandle>,
    bytes_delivered: f64,
    // Time series of (time, utilized fraction) for figure traces.
    utilization_trace: Vec<(f64, f64)>,
    trace_enabled: bool,
    /// Flight recorder; transfer start/end instants at verbose level only.
    tracer: Tracer,
}

impl LinkState {
    fn transfer(&self, slot: u32) -> &Transfer {
        self.slab[slot as usize].as_ref().expect("live slot")
    }

    /// Binary-searches `by_id` for the slot holding transfer `id`.
    fn find_by_id(&self, id: u64) -> Option<usize> {
        self.by_id
            .binary_search_by(|&slot| self.transfer(slot).id.cmp(&id))
            .ok()
    }

    /// Position in `by_cap` where `(cap, id)` belongs (present or not).
    fn cap_position(&self, cap: f64, id: u64) -> usize {
        self.by_cap
            .binary_search_by(|&slot| {
                let t = self.transfer(slot);
                t.cap
                    .partial_cmp(&cap)
                    .expect("caps are never NaN")
                    .then(t.id.cmp(&id))
            })
            .unwrap_or_else(|i| i)
    }

    fn insert(&mut self, t: Transfer) {
        let (id, cap) = (t.id, t.cap);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(t);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len()).expect("transfer slot overflow");
                self.slab.push(Some(t));
                s
            }
        };
        // Ids are monotone, so the id index always appends.
        self.by_id.push(slot);
        let pos = self.cap_position(cap, id);
        self.by_cap.insert(pos, slot);
        self.shares_dirty = true;
    }

    fn remove(&mut self, id: u64) -> Option<Transfer> {
        let id_pos = self.find_by_id(id)?;
        let slot = self.by_id.remove(id_pos);
        let t = self.slab[slot as usize].take().expect("live slot");
        let cap_pos = {
            // `cap_position` can't look the slot up any more; search the
            // index vector for it directly (still O(n), shifts u32s).
            self.by_cap
                .iter()
                .position(|&s| s == slot)
                .expect("cap index in sync")
        };
        self.by_cap.remove(cap_pos);
        self.free.push(slot);
        self.shares_dirty = true;
        Some(t)
    }

    /// Recomputes max-min fair shares (water-filling with per-flow caps) if
    /// the transfer set changed since the last pass. The sum of shares never
    /// exceeds capacity. Flows are visited cap-ascending with id breaking
    /// ties — identical operation order to a stable sort over an
    /// id-ascending scan, which is what the per-call rebuild used to do.
    fn refresh_shares(&mut self) {
        if !self.shares_dirty {
            return;
        }
        let n = self.by_cap.len();
        let mut remaining_cap = self.capacity;
        for i in 0..n {
            let slot = self.by_cap[i] as usize;
            let n_left = (n - i) as f64;
            let fair = remaining_cap / n_left;
            let t = self.slab[slot].as_mut().expect("live slot");
            let share = t.cap.min(fair);
            t.share = share;
            remaining_cap -= share;
        }
        self.shares_dirty = false;
    }

    /// Advances every transfer's progress from `last_update` to `now` under
    /// the current shares.
    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_secs();
        if dt > 0.0 && !self.by_id.is_empty() {
            self.refresh_shares();
            let mut delivered = 0.0;
            for i in 0..self.by_id.len() {
                let slot = self.by_id[i] as usize;
                let t = self.slab[slot].as_mut().expect("live slot");
                let moved = (t.share * dt).min(t.remaining);
                t.remaining -= moved;
                delivered += moved;
            }
            self.bytes_delivered += delivered;
        }
        self.last_update = now;
    }

    fn record_utilization(&mut self, now: SimTime) {
        if self.trace_enabled {
            self.refresh_shares();
            // Sum in id order, matching the original `shares().values().sum()`.
            let used: f64 = self.by_id.iter().map(|&s| self.transfer(s).share).sum();
            let frac = if self.capacity > 0.0 {
                used / self.capacity
            } else {
                0.0
            };
            self.utilization_trace.push((now.as_secs(), frac));
        }
    }
}

/// A shareable handle to a fair-share link. Cloning shares the same channel.
#[derive(Clone)]
pub struct SharedLink {
    inner: Shared<LinkState>,
}

impl SharedLink {
    /// Creates a link with `capacity_bps` aggregate bytes/sec.
    pub fn new(name: impl Into<String>, capacity_bps: f64) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive"
        );
        SharedLink {
            inner: shared(LinkState {
                name: name.into(),
                capacity: capacity_bps,
                slab: Vec::new(),
                free: Vec::new(),
                by_id: Vec::new(),
                by_cap: Vec::new(),
                shares_dirty: false,
                next_id: 0,
                last_update: SimTime::ZERO,
                completion_event: None,
                bytes_delivered: 0.0,
                utilization_trace: Vec::new(),
                trace_enabled: false,
                tracer: Tracer::off(),
            }),
        }
    }

    /// Attaches a flight recorder; transfer lifecycles become verbose-level
    /// instants carrying the link name.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// Enables recording of a `(time, utilized fraction)` trace.
    pub fn enable_trace(&self) {
        self.inner.borrow_mut().trace_enabled = true;
    }

    /// Returns the recorded utilization trace.
    pub fn trace(&self) -> Vec<(f64, f64)> {
        self.inner.borrow().utilization_trace.clone()
    }

    /// The link name (for diagnostics).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Aggregate capacity in bytes/sec.
    pub fn capacity_bps(&self) -> f64 {
        self.inner.borrow().capacity
    }

    /// Number of in-flight transfers.
    pub fn active_transfers(&self) -> usize {
        self.inner.borrow().by_id.len()
    }

    /// Total bytes delivered so far (advanced to `now`).
    pub fn bytes_delivered(&self, now: SimTime) -> f64 {
        let mut s = self.inner.borrow_mut();
        s.advance(now);
        s.bytes_delivered
    }

    /// The current fair share of every in-flight transfer, as
    /// `(transfer id, bytes/sec)` in id order. Diagnostic surface for tests
    /// and tools; forces a share refresh if the set changed.
    pub fn current_shares(&self) -> Vec<(u64, f64)> {
        let mut s = self.inner.borrow_mut();
        s.refresh_shares();
        s.by_id
            .iter()
            .map(|&slot| {
                let t = s.transfer(slot);
                (t.id, t.share)
            })
            .collect()
    }

    /// Starts a transfer of `bytes` with an optional per-flow cap, invoking
    /// `on_done` when the last byte arrives. Zero-byte transfers complete at
    /// the current instant.
    pub fn start_transfer(
        &self,
        sim: &mut Simulation,
        bytes: f64,
        per_flow_cap: Option<f64>,
        on_done: impl FnOnce(&mut Simulation) + Send + 'static,
    ) -> TransferId {
        assert!(bytes.is_finite() && bytes >= 0.0, "invalid transfer size");
        if bytes <= EPS_BYTES {
            sim.schedule_now(on_done);
            // Allocate an id anyway so callers can treat it uniformly.
            let mut s = self.inner.borrow_mut();
            let id = s.next_id;
            s.next_id += 1;
            return TransferId(id);
        }
        let id = {
            let mut s = self.inner.borrow_mut();
            s.advance(sim.now());
            let id = s.next_id;
            s.next_id += 1;
            s.insert(Transfer {
                id,
                remaining: bytes,
                cap: per_flow_cap.unwrap_or(f64::INFINITY),
                share: 0.0,
                on_done: Some(Box::new(on_done)),
            });
            s.record_utilization(sim.now());
            s.tracer
                .emit_verbose(sim.now(), || TraceEvent::TransferStart {
                    link: s.name.clone(),
                    id,
                    bytes,
                });
            id
        };
        self.replan(sim);
        TransferId(id)
    }

    /// Cancels an in-flight transfer; its completion callback never fires.
    /// Returns the bytes that were still outstanding (0 if already finished).
    pub fn cancel_transfer(&self, sim: &mut Simulation, id: TransferId) -> f64 {
        let remaining = {
            let mut s = self.inner.borrow_mut();
            s.advance(sim.now());
            let rem = s.remove(id.0).map(|t| t.remaining);
            s.record_utilization(sim.now());
            rem
        };
        if remaining.is_some() {
            self.replan(sim);
        }
        remaining.unwrap_or(0.0)
    }

    /// Re-plans the next completion event from the current state.
    fn replan(&self, sim: &mut Simulation) {
        let next_completion: Option<SimDuration> = {
            let mut s = self.inner.borrow_mut();
            if let Some(h) = s.completion_event.take() {
                sim.cancel(h);
            }
            if s.by_id.is_empty() {
                None
            } else {
                s.refresh_shares();
                let dt = s
                    .by_id
                    .iter()
                    .map(|&slot| {
                        let t = s.transfer(slot);
                        if t.share <= 0.0 {
                            f64::INFINITY
                        } else {
                            t.remaining / t.share
                        }
                    })
                    .fold(f64::INFINITY, f64::min);
                assert!(dt.is_finite(), "transfer on link '{}' starved", s.name);
                Some(SimDuration::from_secs(dt))
            }
        };
        if let Some(dt) = next_completion {
            let link = self.clone();
            let h = sim.schedule_in(dt, move |sim| link.on_completion_tick(sim));
            self.inner.borrow_mut().completion_event = Some(h);
        }
    }

    fn on_completion_tick(&self, sim: &mut Simulation) {
        // Advance, detach finished transfers, run their callbacks, replan.
        let finished: Vec<DoneFn> = {
            let mut s = self.inner.borrow_mut();
            s.completion_event = None;
            s.advance(sim.now());
            let mut done_ids: Vec<u64> = s
                .by_id
                .iter()
                .map(|&slot| s.transfer(slot))
                .filter(|t| t.remaining <= EPS_BYTES)
                .map(|t| t.id)
                .collect();
            if done_ids.is_empty() && !s.by_id.is_empty() {
                // Ticks fire exactly at a planned completion, so if nothing
                // crossed the epsilon the residue is floating-point error
                // (advancing by `remaining/share` can round to a dt smaller
                // than one ulp of the clock, which would loop forever).
                // Force-finish the transfer closest to done (first minimum
                // in id order, as `Iterator::min_by` guarantees).
                let id = s
                    .by_id
                    .iter()
                    .map(|&slot| s.transfer(slot))
                    .min_by(|a, b| {
                        a.remaining
                            .partial_cmp(&b.remaining)
                            .expect("remaining is never NaN")
                    })
                    .expect("non-empty")
                    .id;
                let slot = s.by_id[s.find_by_id(id).expect("present")] as usize;
                let residue = {
                    let t = s.slab[slot].as_mut().expect("live slot");
                    let r = t.remaining;
                    t.remaining = 0.0;
                    r
                };
                s.bytes_delivered += residue;
                done_ids.push(id);
            }
            let mut callbacks = Vec::with_capacity(done_ids.len());
            for id in done_ids {
                if let Some(mut t) = s.remove(id) {
                    if let Some(cb) = t.on_done.take() {
                        callbacks.push(cb);
                    }
                    s.tracer
                        .emit_verbose(sim.now(), || TraceEvent::TransferEnd {
                            link: s.name.clone(),
                            id,
                        });
                }
            }
            s.record_utilization(sim.now());
            callbacks
        };
        for cb in finished {
            cb(sim);
        }
        self.replan(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_times(link: &SharedLink, jobs: &[(f64, Option<f64>, f64)]) -> Vec<f64> {
        // jobs: (bytes, cap, start_time) -> completion times in job order.
        let mut sim = Simulation::new();
        let out: Shared<Vec<(usize, f64)>> = shared(Vec::new());
        for (i, &(bytes, cap, start)) in jobs.iter().enumerate() {
            let link = link.clone();
            let out = out.clone();
            sim.schedule_at(SimTime::from_secs(start), move |sim| {
                link.start_transfer(sim, bytes, cap, move |sim| {
                    out.borrow_mut().push((i, sim.now().as_secs()));
                });
            });
        }
        sim.run();
        let mut v = out.borrow().clone();
        v.sort_by_key(|&(i, _)| i);
        v.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn single_transfer_uses_full_capacity() {
        let link = SharedLink::new("l", 100.0);
        let t = finish_times(&link, &[(1000.0, None, 0.0)]);
        assert!((t[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_transfers_share_evenly() {
        let link = SharedLink::new("l", 100.0);
        let t = finish_times(&link, &[(500.0, None, 0.0), (500.0, None, 0.0)]);
        // Each gets 50 B/s -> both complete at t=10.
        assert!((t[0] - 10.0).abs() < 1e-9);
        assert!((t[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn short_transfer_frees_bandwidth_for_long_one() {
        let link = SharedLink::new("l", 100.0);
        // A: 1000 bytes, B: 100 bytes. Until B is done both run at 50 B/s.
        // B finishes at t=2 (100/50). A then has 900 bytes left at 100 B/s,
        // finishing at 2 + 9 = 11.
        let t = finish_times(&link, &[(1000.0, None, 0.0), (100.0, None, 0.0)]);
        assert!((t[1] - 2.0).abs() < 1e-9, "B at {}", t[1]);
        assert!((t[0] - 11.0).abs() < 1e-9, "A at {}", t[0]);
    }

    #[test]
    fn per_flow_cap_limits_share() {
        let link = SharedLink::new("l", 100.0);
        // Capped at 10 B/s: 100 bytes takes 10 s even though link is idle.
        let t = finish_times(&link, &[(100.0, Some(10.0), 0.0)]);
        assert!((t[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_redistributes_capped_leftovers() {
        let link = SharedLink::new("l", 100.0);
        // One flow capped at 20 B/s, one uncapped: uncapped gets 80 B/s.
        // capped: 200/20 = 10 s; uncapped: 800/80 = 10 s.
        let t = finish_times(&link, &[(200.0, Some(20.0), 0.0), (800.0, None, 0.0)]);
        assert!((t[0] - 10.0).abs() < 1e-9);
        assert!((t[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_down_existing_transfer() {
        let link = SharedLink::new("l", 100.0);
        // A: 1000 bytes at t=0, alone until t=5 (500 done). B: 250 bytes at
        // t=5; both at 50 B/s. B done at t=10. A has 250 left at t=10, full
        // speed -> done at t=12.5.
        let t = finish_times(&link, &[(1000.0, None, 0.0), (250.0, None, 5.0)]);
        assert!((t[1] - 10.0).abs() < 1e-9, "B at {}", t[1]);
        assert!((t[0] - 12.5).abs() < 1e-9, "A at {}", t[0]);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let link = SharedLink::new("l", 100.0);
        let t = finish_times(&link, &[(0.0, None, 3.0)]);
        assert!((t[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_returns_outstanding_bytes_and_suppresses_callback() {
        let mut sim = Simulation::new();
        let link = SharedLink::new("l", 100.0);
        let fired = shared(false);
        let fired2 = fired.clone();
        let link2 = link.clone();
        let id = shared(None);
        let id2 = id.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| {
            let t = link2.start_transfer(sim, 1000.0, None, move |_| {
                *fired2.borrow_mut() = true;
            });
            *id2.borrow_mut() = Some(t);
        });
        let link3 = link.clone();
        let id3 = id.clone();
        sim.schedule_at(SimTime::from_secs(4.0), move |sim| {
            let remaining = link3.cancel_transfer(sim, id3.borrow().unwrap());
            // 4 s at 100 B/s -> 600 bytes left.
            assert!((remaining - 600.0).abs() < 1e-9);
        });
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(link.active_transfers(), 0);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let link = SharedLink::new("l", 100.0);
        let _ = finish_times(&link, &[(300.0, None, 0.0), (200.0, None, 1.0)]);
        let mut sim = Simulation::new();
        sim.run_until(Some(SimTime::from_secs(100.0)));
        assert!((link.bytes_delivered(sim.now()) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn many_concurrent_transfers_conserve_capacity() {
        // 10 transfers of 100 bytes each on a 100 B/s link: aggregate work is
        // 1000 bytes -> exactly 10 seconds regardless of sharing pattern.
        let link = SharedLink::new("l", 100.0);
        let jobs: Vec<(f64, Option<f64>, f64)> = (0..10).map(|_| (100.0, None, 0.0)).collect();
        let t = finish_times(&link, &jobs);
        for ti in t {
            assert!((ti - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn current_shares_water_fills_caps_then_splits_the_rest() {
        let mut sim = Simulation::new();
        let link = SharedLink::new("l", 100.0);
        let link2 = link.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| {
            link2.start_transfer(sim, 1.0e6, Some(10.0), |_| {});
            link2.start_transfer(sim, 1.0e6, None, |_| {});
            link2.start_transfer(sim, 1.0e6, None, |_| {});
        });
        sim.run_until(Some(SimTime::from_secs(0.0)));
        let shares = link.current_shares();
        assert_eq!(shares.len(), 3);
        // Capped flow saturates at 10; the remaining 90 splits 45/45.
        assert!((shares[0].1 - 10.0).abs() < 1e-12);
        assert!((shares[1].1 - 45.0).abs() < 1e-12);
        assert!((shares[2].1 - 45.0).abs() < 1e-12);
        let total: f64 = shares.iter().map(|&(_, s)| s).sum();
        assert!(total <= 100.0 + 1e-9);
    }

    #[test]
    fn slab_slots_are_reused_without_id_confusion() {
        // Drive enough arrival/completion churn that slots recycle, then
        // check ids remain unique and everything completes.
        let link = SharedLink::new("l", 1000.0);
        let jobs: Vec<(f64, Option<f64>, f64)> = (0..50)
            .map(|i| (100.0, None, (i % 7) as f64 * 0.5))
            .collect();
        let t = finish_times(&link, &jobs);
        assert_eq!(t.len(), 50);
        assert_eq!(link.active_transfers(), 0);
    }
}
