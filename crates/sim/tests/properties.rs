//! Property-based tests of the simulation engine invariants.

use mashup_sim::{shared, Shared};
use mashup_sim::{Resource, SharedLink, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    /// Events always fire in non-decreasing time order, and simultaneous
    /// events fire in scheduling order, regardless of insertion order.
    #[test]
    fn event_order_is_deterministic(times in proptest::collection::vec(0u32..1000, 1..64)) {
        let mut sim = Simulation::new();
        let log: Shared<Vec<(f64, usize)>> = shared(Vec::new());
        for (i, &t) in times.iter().enumerate() {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t as f64), move |sim| {
                log.borrow_mut().push((sim.now().as_secs(), i));
            });
        }
        sim.run();
        let fired = log.borrow();
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "same-instant order violated");
            }
        }
    }

    /// Wave scheduling: n identical jobs over c slots finish in
    /// ceil(n/c) * duration seconds.
    #[test]
    fn resource_wave_makespan(cap in 1usize..16, n in 1usize..64, dur in 1u32..100) {
        let dur = dur as f64;
        let mut sim = Simulation::new();
        let pool = Resource::new("slots", cap);
        for _ in 0..n {
            let pool2 = pool.clone();
            pool.acquire(&mut sim, move |sim| {
                sim.schedule_in(SimDuration::from_secs(dur), move |sim| pool2.release(sim));
            });
        }
        let end = sim.run();
        let waves = n.div_ceil(cap);
        prop_assert!((end.as_secs() - waves as f64 * dur).abs() < 1e-6,
            "makespan {} != {} waves * {}", end.as_secs(), waves, dur);
    }

    /// Work conservation on a fair-share link: total bytes over a saturated
    /// link take exactly sum(bytes)/capacity seconds when all transfers start
    /// together, no matter how the bytes are split.
    #[test]
    fn link_is_work_conserving(sizes in proptest::collection::vec(1u32..10_000, 1..20)) {
        let cap = 1000.0;
        let total: f64 = sizes.iter().map(|&b| b as f64).sum();
        let mut sim = Simulation::new();
        let link = SharedLink::new("l", cap);
        let done = shared(0usize);
        for &b in &sizes {
            let done = done.clone();
            let link2 = link.clone();
            sim.schedule_at(SimTime::ZERO, move |sim| {
                link2.start_transfer(sim, b as f64, None, move |_| {
                    *done.borrow_mut() += 1;
                });
            });
        }
        let end = sim.run();
        prop_assert_eq!(*done.borrow(), sizes.len());
        // The last completion is exactly when the aggregate work drains.
        prop_assert!((end.as_secs() - total / cap).abs() < 1e-6,
            "end {} != {}", end.as_secs(), total / cap);
    }

    /// Per-flow caps: with equal flows all capped below the fair share, each
    /// flow finishes at bytes/cap independent of the others.
    #[test]
    fn capped_flows_are_independent(n in 1usize..10, bytes in 100u32..5000) {
        let link_cap = 1_000_000.0;
        let flow_cap = 10.0;
        let bytes = bytes as f64;
        let mut sim = Simulation::new();
        let link = SharedLink::new("l", link_cap);
        let finishes: Shared<Vec<f64>> = shared(Vec::new());
        for _ in 0..n {
            let f = finishes.clone();
            let link2 = link.clone();
            sim.schedule_at(SimTime::ZERO, move |sim| {
                link2.start_transfer(sim, bytes, Some(flow_cap), move |sim| {
                    f.borrow_mut().push(sim.now().as_secs());
                });
            });
        }
        sim.run();
        for &t in finishes.borrow().iter() {
            prop_assert!((t - bytes / flow_cap).abs() < 1e-6);
        }
    }

    /// The cached share table kept by `SharedLink` is bit-for-bit identical
    /// to a from-scratch max-min water-fill recompute after every arrival,
    /// cancellation, and completion.
    #[test]
    fn cached_shares_match_reference_recompute(
        ops in proptest::collection::vec((0u8..4, 1u32..50_000, 0u8..2, 1u32..2_000), 1..40)
    ) {
        let capacity = 1000.0;
        let mut sim = Simulation::new();
        let link = SharedLink::new("prop", capacity);
        // Transfer ids are allocated sequentially per link, so the k-th
        // arrival gets id k; track each live flow's cap under that id.
        let active: Shared<std::collections::BTreeMap<u64, f64>> = shared(std::collections::BTreeMap::new());
        let mut tids: Vec<(u64, mashup_sim::TransferId)> = Vec::new();
        let mut next_arrival: u64 = 0;
        let mut t = 0.0f64;
        for &(kind, bytes, capped, cap) in &ops {
            t += 0.05;
            sim.run_until(Some(SimTime::from_secs(t)));
            if kind < 3 {
                // Arrival (weighted 3:1 over cancels to keep links busy).
                let cap = if capped == 1 { Some(cap as f64) } else { None };
                let id = next_arrival;
                next_arrival += 1;
                active.borrow_mut().insert(id, cap.unwrap_or(f64::INFINITY));
                let active2 = active.clone();
                let tid = link.start_transfer(&mut sim, bytes as f64, cap, move |_| {
                    active2.borrow_mut().remove(&id);
                });
                tids.push((id, tid));
            } else if let Some(&(id, tid)) = tids.get(bytes as usize % tids.len().max(1)) {
                if active.borrow().contains_key(&id) {
                    link.cancel_transfer(&mut sim, tid);
                    active.borrow_mut().remove(&id);
                }
            }
            // Reference recompute: stable sort by cap (ids break ties),
            // then water-fill — the exact operation order of the original
            // per-call share rebuild.
            let mut flows: Vec<(u64, f64)> =
                active.borrow().iter().map(|(&id, &cap)| (id, cap)).collect();
            flows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("caps are never NaN"));
            let mut remaining_cap = capacity;
            let mut expected: Vec<(u64, f64)> = Vec::new();
            for (i, &(id, cap)) in flows.iter().enumerate() {
                let n_left = (flows.len() - i) as f64;
                let fair = remaining_cap / n_left;
                let share = cap.min(fair);
                expected.push((id, share));
                remaining_cap -= share;
            }
            expected.sort_by_key(|&(id, _)| id);
            let got = link.current_shares();
            prop_assert_eq!(got.len(), expected.len());
            for (&(gid, gshare), &(eid, eshare)) in got.iter().zip(expected.iter()) {
                prop_assert_eq!(gid, eid);
                prop_assert_eq!(
                    gshare.to_bits(), eshare.to_bits(),
                    "share mismatch for id {}: cached {} vs reference {}",
                    gid, gshare, eshare
                );
            }
        }
        sim.run();
        prop_assert!(active.borrow().is_empty(), "all transfers complete or cancelled");
        prop_assert_eq!(link.active_transfers(), 0);
    }

    /// Two identical runs produce identical event traces (determinism).
    #[test]
    fn runs_are_reproducible(times in proptest::collection::vec(0u32..100, 1..32)) {
        let run = |times: &[u32]| -> Vec<(f64, usize)> {
            let mut sim = Simulation::new();
            let log: Shared<Vec<(f64, usize)>> = shared(Vec::new());
            for (i, &t) in times.iter().enumerate() {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(t as f64), move |sim| {
                    log.borrow_mut().push((sim.now().as_secs(), i));
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        };
        prop_assert_eq!(run(&times), run(&times));
    }
}
