//! Property-based tests of the simulation engine invariants.

use mashup_sim::{Resource, SharedLink, SimDuration, SimTime, Simulation};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always fire in non-decreasing time order, and simultaneous
    /// events fire in scheduling order, regardless of insertion order.
    #[test]
    fn event_order_is_deterministic(times in proptest::collection::vec(0u32..1000, 1..64)) {
        let mut sim = Simulation::new();
        let log: Rc<RefCell<Vec<(f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &t) in times.iter().enumerate() {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t as f64), move |sim| {
                log.borrow_mut().push((sim.now().as_secs(), i));
            });
        }
        sim.run();
        let fired = log.borrow();
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "same-instant order violated");
            }
        }
    }

    /// Wave scheduling: n identical jobs over c slots finish in
    /// ceil(n/c) * duration seconds.
    #[test]
    fn resource_wave_makespan(cap in 1usize..16, n in 1usize..64, dur in 1u32..100) {
        let dur = dur as f64;
        let mut sim = Simulation::new();
        let pool = Resource::new("slots", cap);
        for _ in 0..n {
            let pool2 = pool.clone();
            pool.acquire(&mut sim, move |sim| {
                sim.schedule_in(SimDuration::from_secs(dur), move |sim| pool2.release(sim));
            });
        }
        let end = sim.run();
        let waves = (n + cap - 1) / cap;
        prop_assert!((end.as_secs() - waves as f64 * dur).abs() < 1e-6,
            "makespan {} != {} waves * {}", end.as_secs(), waves, dur);
    }

    /// Work conservation on a fair-share link: total bytes over a saturated
    /// link take exactly sum(bytes)/capacity seconds when all transfers start
    /// together, no matter how the bytes are split.
    #[test]
    fn link_is_work_conserving(sizes in proptest::collection::vec(1u32..10_000, 1..20)) {
        let cap = 1000.0;
        let total: f64 = sizes.iter().map(|&b| b as f64).sum();
        let mut sim = Simulation::new();
        let link = SharedLink::new("l", cap);
        let done = Rc::new(RefCell::new(0usize));
        for &b in &sizes {
            let done = done.clone();
            let link2 = link.clone();
            sim.schedule_at(SimTime::ZERO, move |sim| {
                link2.start_transfer(sim, b as f64, None, move |_| {
                    *done.borrow_mut() += 1;
                });
            });
        }
        let end = sim.run();
        prop_assert_eq!(*done.borrow(), sizes.len());
        // The last completion is exactly when the aggregate work drains.
        prop_assert!((end.as_secs() - total / cap).abs() < 1e-6,
            "end {} != {}", end.as_secs(), total / cap);
    }

    /// Per-flow caps: with equal flows all capped below the fair share, each
    /// flow finishes at bytes/cap independent of the others.
    #[test]
    fn capped_flows_are_independent(n in 1usize..10, bytes in 100u32..5000) {
        let link_cap = 1_000_000.0;
        let flow_cap = 10.0;
        let bytes = bytes as f64;
        let mut sim = Simulation::new();
        let link = SharedLink::new("l", link_cap);
        let finishes: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..n {
            let f = finishes.clone();
            let link2 = link.clone();
            sim.schedule_at(SimTime::ZERO, move |sim| {
                link2.start_transfer(sim, bytes, Some(flow_cap), move |sim| {
                    f.borrow_mut().push(sim.now().as_secs());
                });
            });
        }
        sim.run();
        for &t in finishes.borrow().iter() {
            prop_assert!((t - bytes / flow_cap).abs() < 1e-6);
        }
    }

    /// Two identical runs produce identical event traces (determinism).
    #[test]
    fn runs_are_reproducible(times in proptest::collection::vec(0u32..100, 1..32)) {
        let run = |times: &[u32]| -> Vec<(f64, usize)> {
            let mut sim = Simulation::new();
            let log: Rc<RefCell<Vec<(f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &t) in times.iter().enumerate() {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(t as f64), move |sim| {
                    log.borrow_mut().push((sim.now().as_secs(), i));
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        };
        prop_assert_eq!(run(&times), run(&times));
    }
}
