//! The serverless-only baseline (paper §4).
//!
//! "All the tasks are executed by serverless functions and no VM clusters
//! are involved. Checkpointing is used for components that exceed the
//! run-time limit of serverless functions, and hence, remote storage
//! effects on execution time and cost are accounted for."
//!
//! Tasks whose memory footprint physically cannot fit a function are the
//! one exception — the paper's evaluation workflows fit 3 GB Lambdas, and
//! [`run_serverless_only`] asserts the same so an impossible configuration
//! fails loudly instead of silently falling back.

use mashup_core::{execute_traced, MashupConfig, PlacementPlan, Platform, Tracer, WorkflowReport};
use mashup_dag::Workflow;

/// Runs the workflow entirely on the serverless platform.
///
/// Panics if any task's memory footprint exceeds the function cap — such a
/// workflow has no serverless-only execution at all.
pub fn run_serverless_only(cfg: &MashupConfig, workflow: &Workflow) -> WorkflowReport {
    run_serverless_only_traced(cfg, workflow, &Tracer::off())
}

/// [`run_serverless_only`] with a flight recorder attached.
pub fn run_serverless_only_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    tracer: &Tracer,
) -> WorkflowReport {
    // Pre-warming is one of Mashup's §3 mitigations, not part of the naive
    // serverless-only baseline: functions here pay their cold starts.
    let mut cfg = cfg.clone();
    cfg.prewarm = false;
    let cfg = &cfg;
    for r in workflow.task_refs() {
        let t = workflow.task(r);
        assert!(
            t.profile.memory_gb <= cfg.provider.faas.memory_gb,
            "task '{}' cannot run serverless-only: {} GiB exceeds the {} GiB cap",
            t.name,
            t.profile.memory_gb,
            cfg.provider.faas.memory_gb
        );
    }
    let plan = PlacementPlan::uniform(workflow, Platform::Serverless);
    execute_traced(cfg, workflow, &plan, "serverless-only", tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, TaskRef, WorkflowBuilder};

    fn wf(long: bool) -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.initial_input_bytes(1e8);
        b.begin_phase();
        let compute = if long { 2000.0 } else { 5.0 };
        b.add_task(Task::new(
            "a",
            4,
            TaskProfile::trivial().compute(compute).checkpoint(1e6),
        ));
        b.begin_phase();
        let t = b.add_task(Task::new("b", 1, TaskProfile::trivial().compute(1.0)));
        b.depend(t, TaskRef::new(0, 0), DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    #[test]
    fn bills_only_faas_and_storage() {
        let r = run_serverless_only(&MashupConfig::aws(4), &wf(false));
        assert_eq!(r.expense.vm_dollars, 0.0);
        assert!(r.expense.faas_dollars > 0.0);
        assert!(r.expense.storage_dollars > 0.0);
        assert_eq!(r.cluster_nodes, 0);
    }

    #[test]
    fn over_cap_tasks_checkpoint() {
        let r = run_serverless_only(&MashupConfig::aws(4), &wf(true));
        let a = r.task("a").expect("exists");
        // 2000 s of compute per component crosses the 900 s cap at least
        // twice per component.
        assert!(a.checkpoints >= 8, "checkpoints {}", a.checkpoints);
    }

    #[test]
    #[should_panic(expected = "cannot run serverless-only")]
    fn oversized_memory_panics() {
        let mut w = wf(false);
        w.phases[0].tasks[0].profile.memory_gb = 32.0;
        run_serverless_only(&MashupConfig::aws(4), &w);
    }
}
