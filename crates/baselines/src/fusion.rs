//! The function-fusion baseline (Costless-style, cf. Elgamal et al.,
//! "Costless: Optimizing Cost of Serverless Computing").
//!
//! Fusion merges a producer with its sole one-to-one consumer so the
//! intermediate dataset stays in function memory instead of round-tripping
//! through the object store. This baseline applies the rewrite greedily to
//! a fixpoint — largest eliminated transfer first, chains collapse across
//! rounds — then runs the fused workflow entirely serverless, cold starts
//! and all (pre-warming is Mashup's mitigation, not part of this
//! baseline). It is the "fusion fixes serverless" counterpoint the Pareto
//! search measures hybrid placement against.

use mashup_core::{execute_traced, MashupConfig, PlacementPlan, Platform, Tracer, WorkflowReport};
use mashup_dag::{fusable_pairs, fuse, FusionCandidate, TaskRef, Workflow};

/// Applies fusion rewrites greedily until none remain: each round picks a
/// maximal disjoint set of fusable pairs (largest
/// [`eliminated_bytes`](FusionCandidate::eliminated_bytes) first, DAG
/// order on ties) and fuses them; pipelines collapse to a single task
/// across rounds. Deterministic for a given workflow.
pub fn maximal_fusion(workflow: &Workflow) -> Workflow {
    let mut w = workflow.clone();
    loop {
        let pairs = fusable_pairs(&w);
        if pairs.is_empty() {
            return w;
        }
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by(|&a, &b| {
            pairs[b]
                .eliminated_bytes(&w)
                .partial_cmp(&pairs[a].eliminated_bytes(&w))
                .expect("finite transfer volumes")
                .then(a.cmp(&b))
        });
        let mut chosen: Vec<FusionCandidate> = Vec::new();
        let mut used: Vec<TaskRef> = Vec::new();
        for i in order {
            let p = pairs[i];
            if used.contains(&p.producer) || used.contains(&p.consumer) {
                continue;
            }
            used.push(p.producer);
            used.push(p.consumer);
            chosen.push(p);
        }
        w = fuse(&w, &chosen).expect("disjoint pairs always fuse");
    }
}

/// Runs the maximally fused workflow entirely on the serverless platform.
///
/// Panics if any fused task's memory footprint exceeds the function cap —
/// such a workflow has no serverless fusion execution at all.
pub fn run_fusion(cfg: &MashupConfig, workflow: &Workflow) -> WorkflowReport {
    run_fusion_traced(cfg, workflow, &Tracer::off())
}

/// [`run_fusion`] with a flight recorder attached.
pub fn run_fusion_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    tracer: &Tracer,
) -> WorkflowReport {
    let mut cfg = cfg.clone();
    cfg.prewarm = false;
    let cfg = &cfg;
    let fused = maximal_fusion(workflow);
    for r in fused.task_refs() {
        let t = fused.task(r);
        assert!(
            t.profile.memory_gb <= cfg.provider.faas.memory_gb,
            "task '{}' cannot run the fusion baseline: {} GiB exceeds the {} GiB cap",
            t.name,
            t.profile.memory_gb,
            cfg.provider.faas.memory_gb
        );
    }
    let plan = PlacementPlan::uniform(&fused, Platform::Serverless);
    execute_traced(cfg, &fused, &plan, "fusion", tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};

    /// A→B→C pipeline (collapses to one task) plus a fan-out D that stays.
    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.initial_input_bytes(1e8);
        b.begin_phase();
        let a = b.add_task(Task::new(
            "A",
            8,
            TaskProfile::trivial().compute(4.0).io(1e7, 2e8),
        ));
        b.begin_phase();
        let t = b.add_task(Task::new(
            "B",
            8,
            TaskProfile::trivial().compute(3.0).io(2e8, 1e7),
        ));
        b.depend(t, a, DependencyPattern::OneToOne);
        b.begin_phase();
        let c = b.add_task(Task::new(
            "C",
            8,
            TaskProfile::trivial().compute(2.0).io(1e7, 1e7),
        ));
        b.depend(c, t, DependencyPattern::OneToOne);
        let d = b.add_task(Task::new("D", 4, TaskProfile::trivial().compute(1.0)));
        b.depend(d, t, DependencyPattern::FanInBlocks);
        b.build().expect("valid")
    }

    #[test]
    fn fixpoint_collapses_pipelines_only() {
        // B has two consumers (C and D), so only A→B fuses; C and D keep
        // their rewired dependency on the merged task.
        let fused = maximal_fusion(&wf());
        assert_eq!(fused.task_count(), 3);
        assert!(fused.arena().flat_by_name("A+B").is_some());
        // A straight pipeline collapses completely.
        let mut b = WorkflowBuilder::new("pipe");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        let a = b.add_task(Task::new("X", 4, TaskProfile::trivial().compute(1.0)));
        b.begin_phase();
        let y = b.add_task(Task::new("Y", 4, TaskProfile::trivial().compute(1.0)));
        b.depend(y, a, DependencyPattern::OneToOne);
        b.begin_phase();
        let z = b.add_task(Task::new("Z", 4, TaskProfile::trivial().compute(1.0)));
        b.depend(z, y, DependencyPattern::OneToOne);
        let pipe = b.build().expect("valid");
        let fused = maximal_fusion(&pipe);
        assert_eq!(fused.task_count(), 1);
        assert_eq!(fused.phases[0].tasks[0].name, "X+Y+Z");
    }

    #[test]
    fn fusion_run_bills_no_vm_and_beats_plain_serverless_io() {
        let cfg = MashupConfig::aws(4);
        let w = wf();
        let fused = run_fusion(&cfg, &w);
        assert_eq!(fused.expense.vm_dollars, 0.0);
        assert!(fused.expense.faas_dollars > 0.0);
        assert_eq!(fused.strategy, "fusion");
        // The fused run moves less data through the store than the plain
        // serverless run (A→B's 8 × 2e8 B intermediate never leaves
        // function memory), so it spends less wall time on I/O.
        let plain = crate::run_serverless_only(&cfg, &w);
        let io = |r: &WorkflowReport| r.tasks.iter().map(|t| t.io_secs).sum::<f64>();
        assert!(io(&fused) < io(&plain), "{} vs {}", io(&fused), io(&plain));
    }

    #[test]
    fn traced_run_matches_untraced() {
        let cfg = MashupConfig::aws(4);
        let tracer = Tracer::new();
        let traced = run_fusion_traced(&cfg, &wf(), &tracer);
        let untraced = run_fusion(&cfg, &wf());
        assert_eq!(traced, untraced);
        assert!(!tracer.take().is_empty());
    }
}
