//! # mashup-baselines
//!
//! The competing techniques of the paper's §4, implemented on the same
//! simulated substrates as Mashup:
//!
//! * [`run_traditional`] / [`run_traditional_tuned`] — the traditional
//!   VM-cluster execution (the latter with the paper's sub-cluster-split
//!   strengthening);
//! * [`run_serverless_only`] — everything on FaaS with checkpointing;
//! * [`run_pegasus`] — Pegasus-like: task clustering + data reuse on VMs;
//! * [`run_kepler`] — Kepler-like: dataflow-fired task pipelining on VMs;
//! * [`run_fusion`] — Costless-like: greedy function fusion to a fixpoint
//!   ([`maximal_fusion`]), then everything on FaaS.
//!
//! All of them return the same [`mashup_core::WorkflowReport`] as Mashup, so
//! the bench harness compares them uniformly. Every baseline also has a
//! `*_traced` variant that records the execution into a
//! [`mashup_core::Tracer`] flight recorder — the traced run is always
//! byte-identical to the untraced one.

#![warn(missing_docs)]

mod fusion;
mod kepler;
mod pegasus;
mod serverless_only;
mod traditional;

pub use fusion::{maximal_fusion, run_fusion, run_fusion_traced};
pub use kepler::{run_kepler, run_kepler_traced};
pub use pegasus::{cluster_tasks, run_pegasus, run_pegasus_traced};
pub use serverless_only::{run_serverless_only, run_serverless_only_traced};
pub use traditional::{
    run_traditional, run_traditional_traced, run_traditional_tuned, run_traditional_tuned_traced,
};
