//! A Kepler-like workflow manager baseline.
//!
//! Kepler (Altintas et al., SSDBM 2004) is a director/actor system: its
//! dataflow directors fire an actor as soon as its inputs are available
//! rather than waiting for a global phase barrier. On a VM cluster this
//! means **task-level pipelining**: a task starts the moment its producer
//! tasks finish, even while sibling tasks of the same phase are still
//! running — the scheduling optimization the paper credits the
//! state-of-the-art managers with. Everything runs on the cluster; no
//! serverless, no external storage.

use mashup_cloud::ClusterTaskSpec;
use mashup_core::{
    CloudEnv, MashupConfig, PlacementPlan, Platform, TaskReport, TraceEvent, Tracer, WorkflowReport,
};
use mashup_dag::{TaskRef, Workflow};
use mashup_sim::{shared, Shared};
// Keyed dependency counters only: inserted in deterministic task_refs
// order, then read/decremented by key — never order-iterated.
// lint: allow(hash-collections)
use std::collections::HashMap;

struct Driver {
    workflow: std::sync::Arc<Workflow>,
    /// Unfinished producer count per task.
    /// Keyed access only; lint: allow(hash-collections)
    pending_deps: HashMap<TaskRef, usize>,
    reports: Vec<TaskReport>,
    remaining: usize,
    finished_at: Option<mashup_sim::SimTime>,
    cluster: mashup_cloud::VmCluster,
    subclusters: usize,
    next_sub: usize,
    tracer: Tracer,
}

/// Runs the workflow with dataflow-fired task scheduling on the cluster.
pub fn run_kepler(cfg: &MashupConfig, workflow: &Workflow) -> WorkflowReport {
    run_kepler_traced(cfg, workflow, &Tracer::off())
}

/// [`run_kepler`] with a flight recorder attached to the environment and
/// the dataflow driver (task start/end events carry the firing order).
pub fn run_kepler_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    tracer: &Tracer,
) -> WorkflowReport {
    let mut env = CloudEnv::new(cfg);
    env.attach_tracer(tracer.clone());
    env.cluster.start_billing(env.sim.now());

    // Keyed access only; lint: allow(hash-collections)
    let mut pending_deps = HashMap::new();
    for r in workflow.task_refs() {
        pending_deps.insert(r, workflow.task(r).deps.len());
    }
    let driver = shared(Driver {
        workflow: std::sync::Arc::new(workflow.clone()),
        pending_deps,
        reports: Vec::new(),
        remaining: workflow.task_count(),
        finished_at: None,
        cluster: env.cluster.clone(),
        subclusters: cfg.cluster.subclusters,
        next_sub: 0,
        tracer: tracer.clone(),
    });

    // Fire every dependency-free task immediately.
    let ready: Vec<TaskRef> = workflow
        .task_refs()
        .filter(|r| workflow.task(*r).deps.is_empty())
        .collect();
    let d2 = driver.clone();
    env.sim.schedule_now(move |sim| {
        for r in ready {
            spawn(sim, d2.clone(), r);
        }
    });
    env.sim.run();

    let finished_at = driver.borrow().finished_at.expect("kepler run completed");
    env.cluster.stop_billing(finished_at);
    env.store.finalize(finished_at);

    let d = driver.borrow();
    WorkflowReport {
        workflow: workflow.name.clone(),
        strategy: "kepler".into(),
        cluster_nodes: cfg.cluster.nodes,
        makespan_secs: finished_at.as_secs(),
        expense: env.meter.expense(cfg.provider.storage.price_per_gb_month),
        plan: PlacementPlan::uniform(workflow, Platform::VmCluster),
        tasks: d.reports.clone(),
    }
}

fn spawn(sim: &mut mashup_sim::Simulation, driver: Shared<Driver>, r: TaskRef) {
    let (spec, cluster) = {
        let mut d = driver.borrow_mut();
        let sub = d.next_sub % d.subclusters;
        d.next_sub += 1;
        let t = d.workflow.task(r);
        let spec = ClusterTaskSpec {
            label: t.name.clone(),
            components: t.components,
            compute_secs: t.profile.compute_secs_vm,
            input_bytes: t.profile.input_bytes,
            output_bytes: t.profile.output_bytes,
            io_requests: 1,
            contention_coeff: t.profile.vm_local_contention,
            memory_gb: t.profile.memory_gb,
            jitter: t.profile.runtime_jitter,
            input: if t.deps.is_empty() {
                mashup_cloud::ClusterInput::Master
            } else {
                mashup_cloud::ClusterInput::Fabric
            },
            output: mashup_cloud::ClusterOutput::Fabric,
            subcluster: sub,
        };
        (spec, d.cluster.clone())
    };
    let driver2 = driver.clone();
    let name = driver.borrow().workflow.task(r).name.clone();
    {
        let d = driver.borrow();
        d.tracer.emit(
            sim.now(),
            TraceEvent::TaskStart {
                task: name.clone(),
                phase: r.phase,
                platform: "vm".into(),
                components: spec.components,
            },
        );
    }
    cluster.run_task(sim, None, spec, move |sim, stats| {
        let newly_ready: Vec<TaskRef> = {
            let mut d = driver2.borrow_mut();
            d.tracer
                .emit(sim.now(), TraceEvent::TaskEnd { task: name.clone() });
            let t_components = d.workflow.task(r).components;
            d.reports.push(TaskReport {
                name,
                platform: Platform::VmCluster,
                phase: r.phase,
                components: t_components,
                start_secs: stats.start.as_secs(),
                end_secs: stats.end.as_secs(),
                compute_secs: stats.compute_secs,
                io_secs: stats.io_secs,
                cold_start_secs: 0.0,
                scaling_secs: 0.0,
                checkpoints: 0,
                n_cold: 0,
                n_warm: 0,
            });
            d.remaining -= 1;
            if d.remaining == 0 {
                d.finished_at = Some(sim.now());
                Vec::new()
            } else {
                let consumers: Vec<TaskRef> =
                    d.workflow.consumers(r).iter().map(|&(c, _)| c).collect();
                consumers
                    .into_iter()
                    .filter(|c| {
                        let n = d
                            .pending_deps
                            .get_mut(c)
                            .expect("every task has a dep count");
                        *n -= 1;
                        *n == 0
                    })
                    .collect()
            }
        };
        for c in newly_ready {
            spawn(sim, driver2.clone(), c);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};

    /// Phase 1 has a fast task A and a slow task B; phase 2's C depends
    /// only on A. Kepler starts C when A finishes; the phase-barriered
    /// traditional engine waits for B too.
    fn pipelined_workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("pipeline");
        b.initial_input_bytes(1e6);
        b.begin_phase();
        let a = b.add_task(Task::new("fast", 1, TaskProfile::trivial().compute(5.0)));
        b.add_task(Task::new("slow", 1, TaskProfile::trivial().compute(100.0)));
        b.begin_phase();
        let c = b.add_task(Task::new(
            "after-fast",
            1,
            TaskProfile::trivial().compute(50.0),
        ));
        b.depend(c, a, DependencyPattern::OneToOne);
        b.build().expect("valid")
    }

    #[test]
    fn kepler_pipelines_across_phase_barriers() {
        let w = pipelined_workflow();
        let cfg = MashupConfig::aws(4);
        let kepler = run_kepler(&cfg, &w);
        let traditional = crate::traditional::run_traditional(&cfg, &w);
        // Kepler: after-fast starts at 5 s, everything done at 100 s.
        // Traditional: after-fast starts at 100 s, done at 150 s.
        assert!(
            kepler.makespan_secs < traditional.makespan_secs,
            "kepler {} vs traditional {}",
            kepler.makespan_secs,
            traditional.makespan_secs
        );
        let c = kepler.task("after-fast").expect("exists");
        assert!(c.start_secs < 10.0, "started at {}", c.start_secs);
    }

    #[test]
    fn kepler_respects_dependencies() {
        let w = pipelined_workflow();
        let r = run_kepler(&MashupConfig::aws(4), &w);
        let fast = r.task("fast").expect("exists");
        let after = r.task("after-fast").expect("exists");
        assert!(after.start_secs >= fast.end_secs - 1e-9);
        assert_eq!(r.tasks.len(), 3);
    }

    #[test]
    fn kepler_bills_vm_only() {
        let w = pipelined_workflow();
        let r = run_kepler(&MashupConfig::aws(4), &w);
        assert!(r.expense.vm_dollars > 0.0);
        assert_eq!(r.expense.faas_dollars, 0.0);
        assert_eq!(r.expense.storage_dollars, 0.0);
    }
}
