//! A Pegasus-like workflow manager baseline.
//!
//! Pegasus (Deelman et al., FGCS 2015/2019) executes workflows on VM
//! clusters after a profiling pass, applying the optimizations the paper
//! credits it with (§5: "data reuse, redundant computation elimination,
//! task grouping"). This baseline reproduces the two that matter on our
//! substrate:
//!
//! * **task clustering** — short components are grouped into longer jobs so
//!   scheduling and per-component I/O overhead amortizes (horizontal
//!   clustering in Pegasus terms); the group size is picked from the
//!   profiled per-component runtime against a target job length;
//! * **data reuse** — components grouped into one job read their shared
//!   input once instead of per component.
//!
//! Like the real system (and like Mashup), it needs a profiling run; the
//! paper notes both incur similar overhead, so reports exclude it for every
//! engine alike. It is serverless-agnostic: everything runs on the cluster.

use mashup_core::{execute_traced, MashupConfig, PlacementPlan, Platform, Tracer, WorkflowReport};
use mashup_dag::{DependencyPattern, Task, TaskDep, Workflow};

/// Target duration of a clustered job, seconds. Groups of short components
/// are sized so a job's compute is at least this long.
const TARGET_JOB_SECS: f64 = 45.0;

/// Fraction of a grouped job's repeated input that data-reuse elimination
/// saves (the shared slice read once instead of per component).
const DATA_REUSE_FRACTION: f64 = 0.5;

/// Transforms a workflow by Pegasus-style horizontal clustering: components
/// of short tasks are grouped into jobs of roughly [`TARGET_JOB_SECS`].
///
/// Grouping changes component counts, so dependency patterns are rewritten
/// to `AllToAll` (precedence-preserving; Pegasus tracks file-level
/// dependencies which our byte-flow model summarizes anyway).
pub fn cluster_tasks(workflow: &Workflow, max_parallel: usize) -> Workflow {
    let mut phases = Vec::with_capacity(workflow.phases.len());
    for phase in &workflow.phases {
        let tasks = phase
            .tasks
            .iter()
            .map(|t| {
                let group = group_size(t.profile.compute_secs_vm, t.components, max_parallel);
                if group <= 1 {
                    return t.clone();
                }
                let new_components = t.components.div_ceil(group);
                let actual_group = t.components as f64 / new_components as f64;
                let mut profile = t.profile.clone();
                profile.compute_secs_vm *= actual_group;
                // Shared input read once per job; unique slices still move.
                profile.input_bytes *= 1.0 + (actual_group - 1.0) * (1.0 - DATA_REUSE_FRACTION);
                profile.output_bytes *= actual_group;
                profile.checkpoint_bytes *= actual_group;
                Task {
                    name: t.name.clone(),
                    components: new_components,
                    profile,
                    deps: t
                        .deps
                        .iter()
                        .map(|d| TaskDep {
                            producer: d.producer,
                            pattern: DependencyPattern::AllToAll,
                        })
                        .collect(),
                }
            })
            .collect();
        phases.push(mashup_dag::Phase { tasks });
    }
    let mut clustered = Workflow::new(workflow.name.clone(), phases, workflow.initial_input_bytes);
    // Consumers of re-clustered producers must also drop incompatible
    // patterns (component counts changed).
    let refs: Vec<_> = clustered.task_refs().collect();
    for r in refs {
        let deps = clustered.phases[r.phase].tasks[r.task].deps.clone();
        for (i, d) in deps.iter().enumerate() {
            let pc = clustered.task(d.producer).components;
            let cc = clustered.task(r).components;
            if d.pattern.check(pc, cc).is_err() {
                clustered.phases[r.phase].tasks[r.task].deps[i].pattern =
                    DependencyPattern::AllToAll;
            }
        }
    }
    mashup_dag::validate(&clustered).expect("clustering preserves validity");
    clustered
}

/// Group size for a task: Pegasus picks it from profiled runtimes, so this
/// evaluates the predicted compute makespan (waves × job length) for job
/// counts that are multiples of the slot count and keeps the best — never
/// worse than not grouping at all.
fn group_size(compute_secs: f64, components: usize, max_parallel: usize) -> usize {
    if compute_secs >= TARGET_JOB_SECS || components <= 1 || max_parallel == 0 {
        return 1;
    }
    let waves = |jobs: usize| jobs.div_ceil(max_parallel);
    let mut best_g = 1usize;
    let mut best_cost = waves(components) as f64 * compute_secs;
    let mut m = 1usize;
    loop {
        let jobs_target = max_parallel * m;
        if jobs_target > components {
            break;
        }
        let g = components.div_ceil(jobs_target);
        let jobs = components.div_ceil(g);
        let cost = waves(jobs) as f64 * g as f64 * compute_secs;
        // Grouping also amortizes per-component I/O, so ties go to the group.
        if g > 1 && cost <= best_cost + 1e-9 {
            best_cost = cost;
            best_g = g;
        }
        if g as f64 * compute_secs >= TARGET_JOB_SECS {
            break;
        }
        m += 1;
    }
    best_g
}

/// Runs the Pegasus-like engine: clustering transform, then VM execution.
pub fn run_pegasus(cfg: &MashupConfig, workflow: &Workflow) -> WorkflowReport {
    run_pegasus_traced(cfg, workflow, &Tracer::off())
}

/// [`run_pegasus`] with a flight recorder attached. Clustered jobs keep
/// their task names, so the trace's task events line up with the original
/// workflow.
pub fn run_pegasus_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    tracer: &Tracer,
) -> WorkflowReport {
    let clustered = cluster_tasks(workflow, cfg.cluster.total_slots());
    let plan = PlacementPlan::uniform(&clustered, Platform::VmCluster);
    let mut report = execute_traced(cfg, &clustered, &plan, "pegasus", tracer);
    report.workflow = workflow.name.clone();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{TaskProfile, TaskRef, WorkflowBuilder};

    fn short_wide_workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        b.initial_input_bytes(1e8);
        b.begin_phase();
        let a = b.add_task(Task::new(
            "short-wide",
            256,
            // Contention matters: ungrouped, 64 components timeshare each
            // node and thrash; grouped jobs fit the cores.
            TaskProfile::trivial()
                .compute(2.0)
                .io(1e6, 1e6)
                .contention(0.15),
        ));
        b.begin_phase();
        let m = b.add_task(Task::new("merge", 1, TaskProfile::trivial().compute(5.0)));
        b.depend(m, a, DependencyPattern::AllToAll);
        b.build().expect("valid")
    }

    #[test]
    fn clustering_reduces_component_count_and_preserves_work() {
        let w = short_wide_workflow();
        let c = cluster_tasks(&w, 8);
        let (_, orig) = w.task_by_name("short-wide").expect("exists");
        let (_, grouped) = c.task_by_name("short-wide").expect("exists");
        assert!(grouped.components < orig.components);
        // Total compute is preserved (within grouping rounding).
        let orig_work = orig.profile.compute_secs_vm * orig.components as f64;
        let new_work = grouped.profile.compute_secs_vm * grouped.components as f64;
        assert!((orig_work - new_work).abs() / orig_work < 1e-9);
    }

    #[test]
    fn long_tasks_are_not_grouped() {
        let mut b = WorkflowBuilder::new("w");
        b.begin_phase();
        b.add_task(Task::new("long", 16, TaskProfile::trivial().compute(300.0)));
        let w = b.build().expect("valid");
        let c = cluster_tasks(&w, 8);
        assert_eq!(c.task(TaskRef::new(0, 0)).components, 16);
    }

    #[test]
    fn grouping_keeps_enough_parallelism() {
        // 256 comps of 2 s with 64 slots: grouping must leave >= 64 jobs.
        let g = group_size(2.0, 256, 64);
        assert!(256_usize.div_ceil(g) >= 64, "group {g}");
    }

    #[test]
    fn pegasus_beats_plain_traditional_on_short_wide_tasks() {
        let w = short_wide_workflow();
        let cfg = MashupConfig::aws(4);
        let plain = crate::traditional::run_traditional(&cfg, &w);
        let pegasus = run_pegasus(&cfg, &w);
        assert!(
            pegasus.makespan_secs <= plain.makespan_secs + 1e-9,
            "pegasus {} vs plain {}",
            pegasus.makespan_secs,
            plain.makespan_secs
        );
        assert_eq!(pegasus.workflow, "w");
        assert_eq!(pegasus.strategy, "pegasus");
    }

    #[test]
    fn clustered_workflows_still_validate() {
        for seed in 0..10 {
            let w = mashup_workflows::generate(&mashup_workflows::SyntheticConfig::default(), seed);
            let c = cluster_tasks(&w, 16);
            mashup_dag::validate(&c).expect("valid after clustering");
        }
    }
}
