//! The traditional VM-cluster baseline (paper §4).
//!
//! "A cluster of VMs on multiple nodes is reserved... tasks in each of the
//! phases are spawned in parallel, and consecutive phases are spawned
//! sequentially." Since the whole computation stays inside the cluster, no
//! external storage is used or billed.
//!
//! The paper strengthens this baseline with insider knowledge: "two
//! clusters each of half-size might yield better execution time results...
//! we utilized this information to make the traditional VM-based cluster
//! approach more competitive." [`run_traditional_tuned`] reproduces that by
//! searching over sub-cluster splits and keeping the best.

use mashup_core::{execute_traced, MashupConfig, PlacementPlan, Platform, Tracer, WorkflowReport};
use mashup_dag::Workflow;

/// Runs the workflow entirely on the configured VM cluster.
pub fn run_traditional(cfg: &MashupConfig, workflow: &Workflow) -> WorkflowReport {
    run_traditional_traced(cfg, workflow, &Tracer::off())
}

/// [`run_traditional`] with a flight recorder attached to the execution.
pub fn run_traditional_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    tracer: &Tracer,
) -> WorkflowReport {
    let plan = PlacementPlan::uniform(workflow, Platform::VmCluster);
    execute_traced(cfg, workflow, &plan, "traditional", tracer)
}

/// Runs the traditional baseline under each sub-cluster split in `splits`
/// (clamped to the node count) and returns the best-makespan report — the
/// paper's strengthened baseline.
pub fn run_traditional_tuned(cfg: &MashupConfig, workflow: &Workflow) -> WorkflowReport {
    run_traditional_tuned_traced(cfg, workflow, &Tracer::off())
}

/// [`run_traditional_tuned`] with a flight recorder. The split search runs
/// unrecorded (its rejected candidates are not part of the chosen
/// execution); the winning split is re-run traced, which — execution being
/// deterministic — reproduces the winning report exactly.
pub fn run_traditional_tuned_traced(
    cfg: &MashupConfig,
    workflow: &Workflow,
    tracer: &Tracer,
) -> WorkflowReport {
    let mut best: Option<(usize, WorkflowReport)> = None;
    for k in [1usize, 2, 4] {
        if k > cfg.cluster.nodes {
            continue;
        }
        let tuned = cfg.clone().with_subclusters(k);
        let report = run_traditional(&tuned, workflow);
        // Same hysteresis as the PDC: a finer split must clearly win.
        let better = match &best {
            None => true,
            Some((_, b)) => report.makespan_secs < b.makespan_secs * 0.95,
        };
        if better {
            best = Some((k, report));
        }
    }
    let (k, report) = best.expect("at least the single-cluster split always runs");
    if !tracer.is_on() {
        return report;
    }
    run_traditional_traced(&cfg.clone().with_subclusters(k), workflow, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashup_dag::{Task, TaskProfile, WorkflowBuilder};

    fn contended_workflow() -> Workflow {
        // Two parallel ingest-heavy phase-0 tasks that fight over one
        // master ingest NIC: a two-sub-cluster split gives each its own
        // master and should win.
        let mut b = WorkflowBuilder::new("contended");
        b.initial_input_bytes(2e10);
        b.begin_phase();
        for name in ["left", "right"] {
            b.add_task(Task::new(
                name,
                2,
                TaskProfile::trivial().compute(5.0).io(2.5e9, 0.0),
            ));
        }
        b.build().expect("valid")
    }

    #[test]
    fn traditional_never_touches_serverless() {
        let w = contended_workflow();
        let r = run_traditional(&MashupConfig::aws(4), &w);
        assert_eq!(r.expense.faas_dollars, 0.0);
        assert_eq!(r.expense.storage_dollars, 0.0);
        assert_eq!(r.plan.count(Platform::Serverless), 0);
    }

    #[test]
    fn tuned_baseline_is_at_least_as_good() {
        let w = contended_workflow();
        let cfg = MashupConfig::aws(4);
        let plain = run_traditional(&cfg, &w);
        let tuned = run_traditional_tuned(&cfg, &w);
        assert!(tuned.makespan_secs <= plain.makespan_secs + 1e-9);
    }

    #[test]
    fn split_helps_master_contended_workflows() {
        let w = contended_workflow();
        let cfg = MashupConfig::aws(4);
        let single = run_traditional(&cfg, &w);
        let split = run_traditional(&cfg.clone().with_subclusters(2), &w);
        assert!(
            split.makespan_secs < single.makespan_secs,
            "split {} vs single {}",
            split.makespan_secs,
            single.makespan_secs
        );
    }
}
